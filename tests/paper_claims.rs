//! The paper's headline claims, asserted against the full reproduction.
//!
//! One test per table/figure, each running the corresponding experiment at
//! reduced (but still meaningful) scale and checking the *shape* the paper
//! reports — who wins, by roughly what factor, where crossovers fall.

use spamward::core::experiments::{
    ablations, dataset, deployment, efficacy, kelihos, mta_schedules, nolisting_adoption, summary,
    webmail,
};
use spamward::core::harness::{HarnessConfig, Scale};
use spamward::scanner::DomainClass;
use spamward::sim::SimDuration;

#[test]
fn table_i_dataset_inventory() {
    let t = dataset::run();
    assert_eq!(t.rows.iter().map(|r| r.2).sum::<u32>(), 11);
    assert!((t.total_botnet_pct - 93.02).abs() < 1e-9);
    assert!((t.total_global_pct - 70.69).abs() < 0.01);
}

#[test]
fn figure_2_adoption_survey() {
    let r = nolisting_adoption::run(&nolisting_adoption::AdoptionConfig {
        domains: 8_000,
        ..Default::default()
    });
    // The four slices of the pie, within tolerance of the paper's values.
    assert!((r.stats.pct(DomainClass::OneMx) - 47.73).abs() < 2.5);
    assert!((r.stats.pct(DomainClass::MultiMxNoNolisting) - 45.97).abs() < 2.5);
    assert!((r.stats.pct(DomainClass::DnsMisconfigured) - 5.78).abs() < 1.5);
    let nolisting = r.stats.pct(DomainClass::Nolisting);
    assert!(nolisting > 0.1 && nolisting < 1.5, "nolisting share {nolisting}");
    // Nolisting is small but NOT negligible, and popular domains use it.
    let top1000 = r.top_k.iter().find(|(k, _)| *k == 1000).unwrap().1;
    assert!(top1000 > 0, "expected some popular adopters");
}

#[test]
fn table_ii_efficacy_matrix() {
    let r = efficacy::run(&efficacy::EfficacyConfig { recipients: 5, ..Default::default() });
    // Kelihos: nolisting ✓, greylisting ✗; everyone else the reverse.
    for row in &r.rows {
        let kelihos = row.family.name() == "Kelihos";
        assert_eq!(row.nolisting_blocked, kelihos, "{:?}", row);
        assert_eq!(row.greylisting_blocked, !kelihos, "{:?}", row);
    }
}

#[test]
fn figure_3_threshold_insensitivity() {
    let r = kelihos::run(&kelihos::KelihosConfig { recipients: 50, ..Default::default() });
    // Both thresholds: everything delivered on the first retry, ≥300 s.
    assert_eq!(r.fast.delivery_rate, 1.0);
    assert_eq!(r.default.delivery_rate, 1.0);
    assert!(r.fast.cdf.min() >= 300.0);
    assert!(r.fig3_ks_distance < 0.3, "curves must nearly coincide: KS {}", r.fig3_ks_distance);
}

#[test]
fn figure_4_peaks_and_late_delivery() {
    let r = kelihos::run(&kelihos::KelihosConfig { recipients: 50, ..Default::default() });
    assert_eq!(r.extreme.delivery_rate, 1.0);
    // Deliveries strictly above the 21 600 s threshold (red dots).
    for p in r.extreme.attempts.iter().filter(|p| p.delivered) {
        assert!(p.delay_secs > 21_600.0);
    }
    // The documented peaks.
    let peaks = r.fig4_peaks();
    assert!(peaks.len() >= 3, "{peaks:?}");
    // The one-spam-task control the paper used to rule out botmaster
    // re-sends.
    assert!(r.single_task_confirmed);
}

#[test]
fn figure_5_benign_mail_pays() {
    let r = deployment::run(&deployment::DeploymentConfig { messages: 600, ..Default::default() });
    // "only half of the messages get delivered in less than 10 minutes".
    assert!((0.3..=0.8).contains(&r.within_10min), "{}", r.within_10min);
    // "some messages are delivered with over 50 minutes of delay".
    assert!(r.beyond_50min > 0.0);
    // And some legitimate mail is lost outright.
    assert!(r.abandonment_rate > 0.0);
}

#[test]
fn figure_5_cdf_rises_slower_than_figure_3() {
    let benign =
        deployment::run(&deployment::DeploymentConfig { messages: 400, ..Default::default() });
    let bots = kelihos::run(&kelihos::KelihosConfig { recipients: 40, ..Default::default() });
    // The paper's "surprising, and quite negative, result": at 600 s the
    // malware curve is essentially done while the benign one is ~half way.
    let benign_at_600 = benign.cdf.fraction_at_or_below(600.0);
    let kelihos_at_600 = bots.default.cdf.fraction_at_or_below(600.0);
    assert!(
        kelihos_at_600 > benign_at_600 + 0.2,
        "kelihos {kelihos_at_600} vs benign {benign_at_600}"
    );
}

#[test]
fn table_iii_webmail_behaviour() {
    let r = webmail::run(&webmail::WebmailConfig::default());
    // Deliver column matches the paper for all ten providers.
    assert_eq!(r.verdict_matches(), 10);
    // aol loses mail; hotmail hammers; gmail is efficient.
    let get = |name: &str| r.rows.iter().find(|x| x.provider == name).unwrap();
    assert!(!get("aol.com").delivered);
    assert!(get("hotmail.com").attempts > 90);
    assert!(get("gmail.com").attempts < 12);
    // Five of ten rotate source addresses.
    assert_eq!(r.rows.iter().filter(|x| !x.same_ip).count(), 5);
}

#[test]
fn table_iv_schedules() {
    let r = mta_schedules::run();
    assert_eq!(r.rows.len(), 6);
    // Exchange is the only one below RFC's 4–5 day guidance.
    let below: Vec<&str> = r.below_rfc_queue_time().iter().map(|x| x.mta.as_str()).collect();
    assert_eq!(below, vec!["exchange"]);
    // qmail and courier keep messages a full week.
    for name in ["qmail", "courier"] {
        assert_eq!(r.rows.iter().find(|x| x.mta == name).unwrap().max_queue_days, 7.0);
    }
}

#[test]
fn section_vi_headline() {
    // The summary consumes Table II through the harness registry.
    let s = summary::run(&HarnessConfig { scale: Scale::Quick, ..Default::default() })
        .expect("unbudgeted summary completes");
    assert!(s.either_global_pct > 70.0, "\"over 70% of the world spam is prevented\"");
    assert!(s.greylisting_botnet_pct > s.nolisting_botnet_pct);
}

#[test]
fn section_vi_short_threshold_recommendation() {
    let points = ablations::threshold_sweep(99);
    let at_5s = &points[0];
    let at_6h = points.iter().find(|p| p.threshold == SimDuration::from_hours(6)).unwrap();
    // Same spam blocked...
    assert_eq!(at_5s.spam_blocked_pct, at_6h.spam_blocked_pct);
    // ...wildly different benign cost.
    assert!(at_6h.benign_delay > at_5s.benign_delay * 10);
}
