//! Determinism and schema of the virtual-time telemetry layer.
//!
//! The time-series and timeline a run captures are pure functions of
//! (seed, config): the executor width (`--shards`) must not change a
//! byte of either export. The timeline export is Chrome trace-event
//! JSON, so its structure is pinned here too, along with the acceptance
//! property the layer exists for: a greylist-deferred message's full
//! lifecycle (emit → defer → retry → pass → deliver) is visible on one
//! track.

use spamward::core::harness::{
    self, HarnessConfig, Scale, TelemetryConfig, DEFAULT_SAMPLE_INTERVAL,
};

/// A quick-scale run with both telemetry captures on.
fn run_telemetry(id: &str, shards: usize) -> harness::Report {
    let exp = harness::find(id).expect("experiment is registered");
    let config = HarnessConfig {
        scale: Scale::Quick,
        shards,
        telemetry: TelemetryConfig {
            sample_interval: Some(DEFAULT_SAMPLE_INTERVAL),
            timeline: true,
        },
        ..Default::default()
    };
    exp.run(&config).expect("quick-scale run completes")
}

#[test]
fn telemetry_bytes_are_shard_count_invariant() {
    for id in ["table2", "fig2"] {
        let serial = run_telemetry(id, 1);
        let wide = run_telemetry(id, 4);
        assert!(!serial.timeseries().is_empty(), "{id}: sampled series must not be empty");
        assert_eq!(
            serial.timeseries().to_csv(),
            wide.timeseries().to_csv(),
            "{id}: timeseries CSV must not depend on --shards"
        );
        assert_eq!(
            serial.timeseries().to_json(),
            wide.timeseries().to_json(),
            "{id}: timeseries JSON must not depend on --shards"
        );
        assert_eq!(
            serial.timeline().to_chrome_trace(),
            wide.timeline().to_chrome_trace(),
            "{id}: timeline trace must not depend on --shards"
        );
        // Telemetry never leaks into the canonical report bytes, which
        // stay shard-count invariant as before.
        assert_eq!(serial.to_json(), wide.to_json(), "{id}: canonical JSON must stay invariant");
    }
}

#[test]
fn table2_timeseries_covers_the_declared_sample_series() {
    let report = run_telemetry("table2", 2);
    let csv = report.timeseries().to_csv();
    assert!(csv.starts_with("series,t_us,value\n"), "pinned CSV header: {csv:?}");
    for series in [
        "obs.sample.engine.events",
        "obs.sample.engine.queue_high_water",
        "obs.sample.greylist.deferred",
        "obs.sample.greylist.passed",
        "obs.sample.recv.accepted",
        "obs.sample.recv.mailbox_size",
        "obs.sample.shard.0.events",
    ] {
        assert!(csv.contains(series), "table2 timeseries is missing {series}:\n{csv}");
    }
}

#[test]
fn timeline_exports_valid_chrome_trace_json() {
    let report = run_telemetry("table2", 1);
    let trace = report.timeline().to_chrome_trace();
    // Top-level schema: a trace-event object with the displayTimeUnit
    // hint and the traceEvents array, closed exactly once.
    assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), "{trace:?}");
    assert!(trace.ends_with("]}"), "{trace:?}");
    // Per-event schema: thread_name metadata records then instant events
    // carrying the Chrome trace mandatory fields.
    assert!(trace.contains("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"));
    assert!(trace.contains("\"cat\":\"spamward\",\"ph\":\"i\",\"ts\":"));
    assert!(trace.contains("\"s\":\"t\",\"args\":{\"detail\":"));
    // Every buffered event renders: one "i" record per event, one "M"
    // record per distinct track.
    let instants = trace.matches("\"ph\":\"i\"").count();
    let threads = trace.matches("\"ph\":\"M\"").count();
    assert_eq!(instants, report.timeline().len());
    let tracks: std::collections::BTreeSet<&str> =
        report.timeline().events().map(|e| e.track.as_str()).collect();
    assert_eq!(threads, tracks.len());
}

#[test]
fn a_greylist_deferred_message_shows_its_full_lifecycle() {
    let report = run_telemetry("table2", 2);
    // Kelihos retries through greylisting, so at least one track must
    // show the complete deferred-delivery arc, in causal order.
    let lifecycle = [
        "timeline.emit",
        "timeline.greylist.defer",
        "timeline.retry",
        "timeline.greylist.pass",
        "timeline.deliver",
    ];
    let mut tracks: std::collections::BTreeMap<&str, Vec<&str>> = std::collections::BTreeMap::new();
    for event in report.timeline().events() {
        tracks.entry(event.track.as_str()).or_default().push(event.name.as_str());
    }
    let full = tracks.iter().find(|(_, names)| {
        let mut want = lifecycle.iter();
        let mut next = want.next();
        for name in names.iter() {
            if next.is_some_and(|n| n == name) {
                next = want.next();
            }
        }
        next.is_none()
    });
    let (track, _) = full.unwrap_or_else(|| {
        panic!("no track shows the full greylist lifecycle; tracks: {tracks:?}")
    });
    assert!(track.starts_with("greylist/"), "lifecycle track is scoped: {track:?}");
}
