//! Round-trip properties of the anonymized MTA log format.
//!
//! `spamward-mta` renders entries (`mta::log::MtaLogEntry::to_line`) and
//! `spamward-analysis` re-parses them independently (`analysis::log`), so
//! the two crates can drift apart silently. These properties pin the wire
//! format across every [`LogEvent`] variant and both parsers.

use proptest::prelude::*;
use spamward::analysis::log::{parse_log_line_strict, GreylistLogAnalysis, LogKind};
use spamward::mta::{LogEvent, MtaLogEntry};
use spamward::sim::SimTime;

const ALL_EVENTS: [LogEvent; 5] = [
    LogEvent::Greylisted,
    LogEvent::PassedGreylist,
    LogEvent::Whitelisted,
    LogEvent::UnknownRecipient,
    LogEvent::Accepted,
];

/// The kind the analysis crate should assign to each MTA event.
fn expected_kind(event: LogEvent) -> LogKind {
    match event {
        LogEvent::Greylisted => LogKind::Deferred,
        LogEvent::PassedGreylist => LogKind::Passed,
        LogEvent::Accepted => LogKind::Accepted,
        LogEvent::Whitelisted | LogEvent::UnknownRecipient => LogKind::Other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// render → mta parse is the identity, and render → analysis parse
    /// preserves timestamp, key and the event-kind mapping, for every
    /// variant and arbitrary timestamps/keys.
    #[test]
    fn prop_log_line_roundtrips_through_both_parsers(
        micros in 0u64..=u64::MAX / 2,
        hash in any::<u64>(),
        event_idx in 0usize..5,
    ) {
        let entry = MtaLogEntry {
            at: SimTime::from_micros(micros),
            event: ALL_EVENTS[event_idx],
            triplet_hash: hash,
        };
        let line = entry.to_line();

        // The MTA's own parser is the exact inverse of its renderer.
        prop_assert_eq!(MtaLogEntry::parse_line(&line).as_ref(), Some(&entry));

        // The independent analysis parser agrees on every field.
        let rec = parse_log_line_strict(&line)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(rec.at, entry.at);
        prop_assert_eq!(rec.key, entry.triplet_hash);
        prop_assert_eq!(rec.kind, expected_kind(entry.event));
    }

    /// Damaging any single field of a rendered line makes the strict
    /// analysis parser reject it with a typed error (never a silent skip).
    #[test]
    fn prop_damaged_lines_are_rejected_typed(
        micros in 0u64..=u64::MAX / 2,
        hash in any::<u64>(),
        event_idx in 0usize..5,
    ) {
        let entry = MtaLogEntry {
            at: SimTime::from_micros(micros),
            event: ALL_EVENTS[event_idx],
            triplet_hash: hash,
        };
        let line = entry.to_line();
        let mut fields: Vec<&str> = line.split(' ').collect();
        prop_assert_eq!(fields.len(), 3);

        // Break the timestamp.
        let ts = fields[0].replace('.', "x");
        fields[0] = &ts;
        prop_assert!(parse_log_line_strict(&fields.join(" ")).is_err());
        fields[0] = &line[..line.find(' ').unwrap()];

        // Break the key.
        let damaged = line.replace("key=", "key=zz");
        prop_assert!(parse_log_line_strict(&damaged).is_err());

        // Drop the key field entirely.
        let truncated = fields[..2].join(" ");
        prop_assert!(parse_log_line_strict(&truncated).is_err());
        prop_assert!(GreylistLogAnalysis::from_lines(truncated.lines()).is_err());
    }
}

/// Non-property cross-check: a multi-line log carrying every variant feeds
/// the analyzer and reconstructs the expected timeline.
#[test]
fn full_event_log_feeds_analyzer() {
    let lines: Vec<String> = ALL_EVENTS
        .iter()
        .enumerate()
        .map(|(i, &event)| {
            MtaLogEntry { at: SimTime::from_secs(100 * (i as u64 + 1)), event, triplet_hash: 1 }
                .to_line()
        })
        .collect();
    let text = lines.join("\n");
    let analysis = GreylistLogAnalysis::from_lines(text.lines()).expect("all variants parse");
    assert_eq!(analysis.len(), 1);
    let delivered: Vec<_> = analysis.delivered().collect();
    assert_eq!(delivered.len(), 1);
    // Greylisted (t=100) then accepted (t=500): a 400 s delivery delay.
    assert_eq!(delivered[0].delivery_delay().map(|d| d.as_secs()), Some(400));
}
