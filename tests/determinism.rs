//! Reproducibility: every experiment is a pure function of its seed.
//!
//! The whole point of replacing the paper's physical testbed with a
//! simulator is that runs can be repeated bit-for-bit; these tests pin
//! that property at the highest level, across crate boundaries.

use spamward::core::experiments::{
    costs, deployment, efficacy, future_threats, kelihos, nolisting_adoption, webmail,
};
use spamward::core::harness::{self, HarnessConfig, Scale};
use spamward::core::run_seeds;
use spamward::scanner::DomainClass;

#[test]
fn efficacy_is_deterministic() {
    let cfg = efficacy::EfficacyConfig { recipients: 4, ..Default::default() };
    assert_eq!(efficacy::run(&cfg), efficacy::run(&cfg));
}

#[test]
fn kelihos_runs_are_deterministic() {
    let cfg = kelihos::KelihosConfig { recipients: 30, ..Default::default() };
    let a = kelihos::run(&cfg);
    let b = kelihos::run(&cfg);
    assert_eq!(a.fast.cdf, b.fast.cdf);
    assert_eq!(a.extreme.attempts.len(), b.extreme.attempts.len());
    assert_eq!(a.fig3_ks_distance, b.fig3_ks_distance);
    for (x, y) in a.extreme.attempts.iter().zip(b.extreme.attempts.iter()) {
        assert_eq!(x.delay_secs, y.delay_secs);
        assert_eq!(x.delivered, y.delivered);
    }
}

#[test]
fn adoption_survey_is_deterministic_and_seed_sensitive() {
    let cfg = nolisting_adoption::AdoptionConfig { domains: 2_000, ..Default::default() };
    let a = nolisting_adoption::run(&cfg);
    let b = nolisting_adoption::run(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.top_k, b.top_k);

    let other_seed = nolisting_adoption::AdoptionConfig { seed: 999, ..cfg };
    let c = nolisting_adoption::run(&other_seed);
    // Different seed → different population → (almost surely) different
    // counts somewhere.
    assert_ne!(
        (a.stats.counts.clone(), a.top_k.clone()),
        (c.stats.counts.clone(), c.top_k.clone()),
        "seed change had no observable effect"
    );
}

#[test]
fn webmail_table_is_deterministic() {
    let cfg = webmail::WebmailConfig::default();
    assert_eq!(webmail::run(&cfg), webmail::run(&cfg));
}

#[test]
fn deployment_replay_is_deterministic() {
    let cfg = deployment::DeploymentConfig { messages: 120, ..Default::default() };
    let a = deployment::run(&cfg);
    let b = deployment::run(&cfg);
    assert_eq!(a.cdf, b.cdf);
    assert_eq!(a.within_10min, b.within_10min);
}

#[test]
fn extension_experiments_are_deterministic() {
    let ft = future_threats::FutureThreatsConfig { recipients: 3, ..Default::default() };
    assert_eq!(future_threats::run(&ft), future_threats::run(&ft));
    let cc = costs::CostsConfig { messages: 40, ..Default::default() };
    assert_eq!(costs::run(&cc), costs::run(&cc));
}

#[test]
fn parallel_seed_runner_is_order_independent() {
    // Running the same experiment under the crossbeam fan-out must give
    // the same per-seed results as serial execution.
    let seeds: Vec<u64> = (0..6).collect();
    let serial = run_seeds(&seeds, 1, |seed| {
        let cfg = nolisting_adoption::AdoptionConfig { domains: 800, seed, ..Default::default() };
        nolisting_adoption::run(&cfg).stats.pct(DomainClass::Nolisting)
    });
    let parallel = run_seeds(&seeds, 4, |seed| {
        let cfg = nolisting_adoption::AdoptionConfig { domains: 800, seed, ..Default::default() };
        nolisting_adoption::run(&cfg).stats.pct(DomainClass::Nolisting)
    });
    assert_eq!(serial, parallel);
}

/// Every registered experiment's canonical report must be byte-stable
/// under a fixed seed: same config in, same text/CSV/JSON bytes out. This
/// is the harness-level pin the CI golden snapshot builds on.
#[test]
fn every_registered_report_is_byte_stable() {
    let config = HarnessConfig { seed: Some(77), scale: Scale::Quick, ..Default::default() };
    for exp in harness::registry() {
        let a = exp.run(&config).unwrap();
        let b = exp.run(&config).unwrap();
        assert_eq!(a.to_text(), b.to_text(), "{}: text bytes differ across runs", exp.id());
        assert_eq!(a.to_csv(), b.to_csv(), "{}: CSV bytes differ across runs", exp.id());
        assert_eq!(a.to_json(), b.to_json(), "{}: JSON bytes differ across runs", exp.id());
    }
}

/// `repro all --jobs N` must be byte-identical to the serial run: each
/// report renders independently and results come back in registry order
/// regardless of worker count.
#[test]
fn parallel_registry_run_matches_serial_bytes() {
    let config = HarnessConfig { seed: None, scale: Scale::Quick, ..Default::default() };
    let indices: Vec<u64> = (0..harness::registry().len() as u64).collect();
    let render = |i: u64| harness::registry()[i as usize].run(&config).unwrap().to_json();
    let serial = run_seeds(&indices, 1, render);
    let parallel = run_seeds(&indices, 4, render);
    assert_eq!(serial, parallel, "worker count changed the rendered bytes");
}

/// The exact composition `repro all --json --metrics` prints — every
/// registered report rendered to canonical JSON (metrics embedded) and
/// joined into one array — must be byte-identical across two runs with the
/// same seed AND between a serial and a four-worker run. This is the
/// CI golden-snapshot contract.
#[test]
fn repro_all_json_metrics_composition_is_byte_identical() {
    let config = HarnessConfig { seed: Some(42), scale: Scale::Quick, ..Default::default() };
    let compose = |jobs: usize| -> String {
        let indices: Vec<u64> = (0..harness::registry().len() as u64).collect();
        let runs = run_seeds(&indices, jobs, |i| {
            harness::registry()[i as usize].run(&config).unwrap().to_json()
        });
        let bodies: Vec<String> = runs.into_iter().map(|r| r.output).collect();
        format!("[{}]\n", bodies.join(","))
    };
    let first = compose(1);
    let second = compose(1);
    assert_eq!(first, second, "same seed must give byte-identical output across runs");
    let parallel = compose(4);
    assert_eq!(first, parallel, "--jobs 4 must not change a single byte");
    // The contract includes the metrics: every report in the array embeds
    // a populated metrics section.
    assert_eq!(
        first.matches("\"metrics\":[{").count(),
        harness::registry().len(),
        "every report must embed a non-empty metrics section"
    );
}

/// `Simulation<S>` is the only execution substrate: every world-driven
/// experiment must report engine activity through the `sim.engine.*`
/// metrics (proving deliveries went through scheduled engine events, not a
/// manual loop), and the engine-driven report bytes must be seed-stable.
#[test]
fn world_driven_experiments_run_on_the_engine() {
    let config = HarnessConfig { seed: Some(5), scale: Scale::Quick, ..Default::default() };
    for id in ["table2", "table3", "fig3", "fig4", "fig5", "costs", "longterm", "future"] {
        let exp = harness::find(id).expect("registered");
        let a = exp.run(&config).unwrap();
        let events = a.metrics().counter("sim.engine.events").unwrap_or(0);
        assert!(events > 0, "{id}: no engine events recorded — not running on Simulation<S>?");
        let b = exp.run(&config).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "{id}: engine-driven bytes differ across runs");
    }
}

/// A compiled fault plan is part of the reproducibility contract: the
/// same (profile, seed) must yield identical window timelines whether
/// plans are compiled serially or across the crossbeam pool — this is
/// what lets serial and `--jobs N` runs see the same fault sequence.
#[test]
fn fault_plans_compile_identically_serial_and_parallel() {
    use spamward::net::{FaultPlan, FaultProfile};
    let seeds: Vec<u64> = (0..6).collect();
    let compile_all = |jobs: usize| {
        run_seeds(&seeds, jobs, |seed| {
            FaultProfile::catalog()
                .iter()
                .map(|p| format!("{:?}", FaultPlan::compile(p, seed)))
                .collect::<Vec<String>>()
        })
    };
    let serial = compile_all(1);
    let parallel = compile_all(4);
    assert_eq!(serial, parallel, "worker count changed a compiled fault plan");
    // And the plans are seed-sensitive: the chaos is seeded, not fixed.
    assert_ne!(serial[0].output, serial[1].output, "seed change had no effect on any plan");
}

/// The resilience sweep drives every fault profile — including
/// `all_faults`, where outages, link loss, DNS failures, SMTP aborts and
/// greylist-store downtime all overlap — and must complete without a
/// panic at any seed, byte-stable between serial and parallel execution.
#[test]
fn resilience_sweep_survives_all_faults_at_any_seed() {
    let exp = harness::find("resilience").expect("registered");
    for seed in [1, 2, 3] {
        let config = HarnessConfig { seed: Some(seed), scale: Scale::Quick, ..Default::default() };
        let render = |_: u64| exp.run(&config).unwrap().to_json();
        let serial = run_seeds(&[0], 1, render);
        let parallel = run_seeds(&[0, 1], 4, |_| exp.run(&config).unwrap().to_json());
        assert_eq!(serial[0].output, parallel[0].output, "seed {seed}: parallel bytes differ");
        let report = exp.run(&config).unwrap();
        for counter in
            ["net.fault.link_dropped", "mta.breaker.trips", "greylist.degraded.fail_open"]
        {
            assert!(
                report.metrics().counter(counter).unwrap_or(0) > 0,
                "seed {seed}: {counter} not exercised"
            );
        }
    }
}

/// Re-running the same traced scenario with the same seed must replay the
/// *exact* same event trace — not just the same aggregate numbers. This
/// pins the rendered trace (timestamps, categories, details) byte for
/// byte, so any nondeterminism that sneaks into the event loop shows up
/// as a diff here even when it does not move a statistic.
#[test]
fn event_trace_is_byte_identical_across_same_seed_runs() {
    let a = traced_delivery_story(7);
    let b = traced_delivery_story(7);
    assert!(!a.is_empty(), "the scenario must actually produce events");
    assert_eq!(a, b, "same seed must replay a byte-identical event trace");

    let c = traced_delivery_story(8);
    assert_ne!(a, c, "seed change had no observable effect on the trace");
}

/// A greylist + nolisting delivery story with tracing on: the primary MX
/// is dead (port 25 closed), the secondary greylists, senders pick MX
/// order at random and retry past the greylist delay at seed-derived
/// times. Returns the whole trace rendered to one string.
#[allow(clippy::unwrap_used)] // test helper; literals are known-good
fn traced_delivery_story(seed: u64) -> String {
    use spamward::mta::MxStrategy;
    use spamward::net::{PortState, SMTP_PORT};
    use spamward::prelude::*;
    use spamward::smtp::EmailAddress;
    use std::net::Ipv4Addr;

    let mut world = MailWorld::new(seed).with_tracing();
    let dead = Ipv4Addr::new(192, 0, 2, 1);
    let live = Ipv4Addr::new(192, 0, 2, 2);
    world.network.host("smtp.foo.net").ip(dead).port(SMTP_PORT, PortState::Closed).build();
    world.install_server(
        ReceivingMta::new("smtp1.foo.net", live)
            .with_greylist(Greylist::new(GreylistConfig::default())),
    );
    world.dns.publish(Zone::nolisting("foo.net".parse().unwrap(), dead, live));

    let envelope = Envelope::builder()
        .client_ip(Ipv4Addr::new(203, 0, 113, 9))
        .helo("client.example")
        .mail_from("a@relay.example".parse::<EmailAddress>().unwrap())
        .rcpt("u@foo.net".parse().unwrap())
        .build();
    let message = Message::builder().header("Subject", "s").body("b").build();
    let dialect = Dialect::compliant_mta("relay.example");
    let mut rng = DetRng::seed(seed).fork("trace-regression");

    // First pass gets greylisted; the retries land past the 300 s delay.
    let mut at = SimTime::from_secs(rng.below(60));
    for _ in 0..4 {
        world.attempt_delivery(
            at,
            &dialect,
            MxStrategy::AllRandom,
            &"foo.net".parse().unwrap(),
            envelope.clone(),
            message.clone(),
        );
        at += SimDuration::from_secs(300 + rng.below(120));
    }

    let mut story = String::new();
    for event in world.trace.events() {
        story.push_str(&event.to_string());
        story.push('\n');
    }
    story
}
