//! Reproducibility: every experiment is a pure function of its seed.
//!
//! The whole point of replacing the paper's physical testbed with a
//! simulator is that runs can be repeated bit-for-bit; these tests pin
//! that property at the highest level, across crate boundaries.

use spamward::core::experiments::{
    costs, deployment, efficacy, future_threats, kelihos, nolisting_adoption, webmail,
};
use spamward::core::run_seeds;
use spamward::scanner::DomainClass;

#[test]
fn efficacy_is_deterministic() {
    let cfg = efficacy::EfficacyConfig { recipients: 4, ..Default::default() };
    assert_eq!(efficacy::run(&cfg), efficacy::run(&cfg));
}

#[test]
fn kelihos_runs_are_deterministic() {
    let cfg = kelihos::KelihosConfig { recipients: 30, ..Default::default() };
    let a = kelihos::run(&cfg);
    let b = kelihos::run(&cfg);
    assert_eq!(a.fast.cdf, b.fast.cdf);
    assert_eq!(a.extreme.attempts.len(), b.extreme.attempts.len());
    assert_eq!(a.fig3_ks_distance, b.fig3_ks_distance);
    for (x, y) in a.extreme.attempts.iter().zip(b.extreme.attempts.iter()) {
        assert_eq!(x.delay_secs, y.delay_secs);
        assert_eq!(x.delivered, y.delivered);
    }
}

#[test]
fn adoption_survey_is_deterministic_and_seed_sensitive() {
    let cfg = nolisting_adoption::AdoptionConfig { domains: 2_000, ..Default::default() };
    let a = nolisting_adoption::run(&cfg);
    let b = nolisting_adoption::run(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.top_k, b.top_k);

    let other_seed = nolisting_adoption::AdoptionConfig { seed: 999, ..cfg };
    let c = nolisting_adoption::run(&other_seed);
    // Different seed → different population → (almost surely) different
    // counts somewhere.
    assert_ne!(
        (a.stats.counts.clone(), a.top_k.clone()),
        (c.stats.counts.clone(), c.top_k.clone()),
        "seed change had no observable effect"
    );
}

#[test]
fn webmail_table_is_deterministic() {
    let cfg = webmail::WebmailConfig::default();
    assert_eq!(webmail::run(&cfg), webmail::run(&cfg));
}

#[test]
fn deployment_replay_is_deterministic() {
    let cfg = deployment::DeploymentConfig { messages: 120, ..Default::default() };
    let a = deployment::run(&cfg);
    let b = deployment::run(&cfg);
    assert_eq!(a.cdf, b.cdf);
    assert_eq!(a.within_10min, b.within_10min);
}

#[test]
fn extension_experiments_are_deterministic() {
    let ft = future_threats::FutureThreatsConfig { recipients: 3, ..Default::default() };
    assert_eq!(future_threats::run(&ft), future_threats::run(&ft));
    let cc = costs::CostsConfig { messages: 40, ..Default::default() };
    assert_eq!(costs::run(&cc), costs::run(&cc));
}

#[test]
fn parallel_seed_runner_is_order_independent() {
    // Running the same experiment under the crossbeam fan-out must give
    // the same per-seed results as serial execution.
    let seeds: Vec<u64> = (0..6).collect();
    let serial = run_seeds(&seeds, 1, |seed| {
        let cfg = nolisting_adoption::AdoptionConfig { domains: 800, seed, ..Default::default() };
        nolisting_adoption::run(&cfg).stats.pct(DomainClass::Nolisting)
    });
    let parallel = run_seeds(&seeds, 4, |seed| {
        let cfg = nolisting_adoption::AdoptionConfig { domains: 800, seed, ..Default::default() };
        nolisting_adoption::run(&cfg).stats.pct(DomainClass::Nolisting)
    });
    assert_eq!(serial, parallel);
}
