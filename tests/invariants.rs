//! Property-based invariants spanning crate boundaries.

use proptest::prelude::*;
use spamward::core::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use spamward::prelude::*;
use spamward::sim::SimTime;
use spamward::smtp::ReversePath;
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A compliant sender ALWAYS eventually delivers through any greylist
    /// threshold its queue lifetime can out-wait, and never before the
    /// threshold elapses.
    #[test]
    fn prop_compliant_sender_beats_any_outwaitable_threshold(
        seed in 0u64..1_000,
        threshold_mins in 1u64..300,
    ) {
        let threshold = SimDuration::from_mins(threshold_mins);
        let mut world = worlds::greylist_world(seed, threshold);
        let mut sender = SendingMta::new(
            "relay.example",
            vec![Ipv4Addr::new(198, 51, 100, 3)],
            MtaProfile::postfix(), // 5-day queue life >> 300 min
        );
        sender.submit(
            VICTIM_DOMAIN.parse().unwrap(),
            ReversePath::Address("a@relay.example".parse().unwrap()),
            vec![format!("u@{VICTIM_DOMAIN}").parse().unwrap()],
            Message::builder().body("x").build(),
            SimTime::ZERO,
        );
        sender.drain(SimTime::ZERO, &mut world);
        let delivered = sender.records().iter().find(|r| r.delivered);
        prop_assert!(delivered.is_some(), "postfix must out-wait {threshold}");
        prop_assert!(delivered.unwrap().since_enqueue >= threshold);
    }

    /// Fire-and-forget families never deliver through ANY greylist, and
    /// always deliver without one.
    #[test]
    fn prop_fire_and_forget_dichotomy(seed in 0u64..500, threshold_secs in 1u64..10_000) {
        for family in [MalwareFamily::Cutwail, MalwareFamily::Darkmailer] {
            let mut rng = DetRng::seed(seed).fork("prop");
            let campaign = Campaign::synthetic(VICTIM_DOMAIN, 2, &mut rng);
            let horizon = SimTime::from_secs(100_000);

            let mut world = worlds::greylist_world(seed, SimDuration::from_secs(threshold_secs));
            let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 8));
            let blocked = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, horizon);
            prop_assert!(!blocked.any_delivered(), "{family} through greylist@{threshold_secs}s");

            let mut world = worlds::plain_world(seed);
            let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 8));
            let open = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, horizon);
            prop_assert!(open.any_delivered(), "{family} blocked by nothing");
        }
    }

    /// The victim's mailbox count always equals the count of `Accepted`
    /// events in its anonymized log — the log never lies.
    #[test]
    fn prop_log_matches_mailbox(seed in 0u64..500, n_msgs in 1usize..6) {
        let mut world = worlds::greylist_world(seed, SimDuration::from_secs(300));
        for i in 0..n_msgs {
            let mut sender = SendingMta::new(
                "relay.example",
                vec![Ipv4Addr::new(198, 51, 100, (10 + i) as u8)],
                MtaProfile::sendmail(),
            );
            sender.submit(
                VICTIM_DOMAIN.parse().unwrap(),
                ReversePath::Address(format!("s{i}@relay.example").parse().unwrap()),
                vec![format!("r{i}@{VICTIM_DOMAIN}").parse().unwrap()],
                Message::builder().body("x").build(),
                SimTime::from_secs(i as u64 * 7),
            );
            sender.drain(SimTime::from_secs(i as u64 * 7), &mut world);
        }
        let server = world.server(VICTIM_MX_IP).unwrap();
        let accepted_in_log = server
            .log()
            .iter()
            .filter(|e| matches!(e.event, spamward::mta::LogEvent::Accepted))
            .count();
        prop_assert_eq!(server.mailbox().len(), accepted_in_log);
        prop_assert_eq!(server.mailbox().len(), n_msgs);
    }

    /// Nolisting never affects which MESSAGES a compliant sender delivers —
    /// only bots notice it.
    #[test]
    fn prop_nolisting_transparent_to_compliant_senders(seed in 0u64..500) {
        let run = |mut world: MailWorld| {
            let mut sender = SendingMta::new(
                "relay.example",
                vec![Ipv4Addr::new(198, 51, 100, 21)],
                MtaProfile::exim(),
            );
            sender.submit(
                VICTIM_DOMAIN.parse().unwrap(),
                ReversePath::Address("a@relay.example".parse().unwrap()),
                vec![format!("u@{VICTIM_DOMAIN}").parse().unwrap()],
                Message::builder().body("x").build(),
                SimTime::ZERO,
            );
            sender.drain(SimTime::ZERO, &mut world);
            sender.records().iter().filter(|r| r.delivered).count()
        };
        prop_assert_eq!(run(worlds::plain_world(seed)), 1);
        prop_assert_eq!(run(worlds::nolisting_world(seed)), 1);
    }

    /// Protocol equivalence: the pipelined exchange and the lock-step
    /// exchange agree on every outcome, for any recipient multiset and
    /// either sender personality.
    #[test]
    fn prop_pipelining_never_changes_outcomes(
        n_rcpts in 1usize..5,
        bot in proptest::bool::ANY,
        greylisted in proptest::bool::ANY,
    ) {
        use spamward::smtp::{
            exchange, exchange_pipelined, AcceptAll, ClientSession, EmailAddress, Envelope,
            Message, PolicyDecision, Reply, ServerPolicy, ServerSession, Transaction,
        };
        struct GreylistAll;
        impl ServerPolicy for GreylistAll {
            fn on_rcpt(&mut self, _: SimTime, _: &Transaction, _: &EmailAddress) -> PolicyDecision {
                PolicyDecision::TempFail(Reply::greylisted(300))
            }
        }
        let dialect = if bot {
            Dialect::minimal_bot("bot")
        } else {
            Dialect::compliant_mta("relay.example")
        };
        let mut b = Envelope::builder()
            .client_ip(Ipv4Addr::new(203, 0, 113, 9))
            .mail_from(ReversePath::Address("s@relay.example".parse().unwrap()));
        for i in 0..n_rcpts {
            b = b.rcpt(format!("u{i}@foo.net").parse().unwrap());
        }
        let env = b.build();
        let msg = Message::builder().header("Subject", "p").body("x").build();

        let run = |pipelined: bool| {
            let mut client = ClientSession::new(dialect.clone(), env.clone(), msg.clone());
            let mut server = ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9));
            let outcome = if greylisted {
                let mut p = GreylistAll;
                if pipelined {
                    exchange_pipelined(&mut client, &mut server, &mut p, SimTime::ZERO).0
                } else {
                    exchange(&mut client, &mut server, &mut p, SimTime::ZERO).0
                }
            } else {
                let mut p = AcceptAll;
                if pipelined {
                    exchange_pipelined(&mut client, &mut server, &mut p, SimTime::ZERO).0
                } else {
                    exchange(&mut client, &mut server, &mut p, SimTime::ZERO).0
                }
            };
            (outcome, server.accepted().len())
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// The metric registry never disagrees with the greylist's own stats:
    /// collecting any post-campaign world reproduces the decision counters
    /// exactly, and the deferred/passed split is internally consistent.
    #[test]
    fn prop_metrics_mirror_greylist_stats(seed in 0u64..200, n in 1usize..6) {
        let mut world = worlds::greylist_world(seed, SimDuration::from_secs(300));
        let mut rng = DetRng::seed(seed).fork("obs");
        let campaign = Campaign::synthetic(VICTIM_DOMAIN, n, &mut rng);
        let mut bot = BotSample::new(MalwareFamily::Kelihos, 0, Ipv4Addr::new(203, 0, 113, 4));
        bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(100_000));

        let mut reg = spamward::obs::Registry::new();
        spamward::mta::metrics::collect_world(&world, &mut reg);
        let stats = world.server(VICTIM_MX_IP).unwrap().greylist().unwrap().stats();
        let c = |name: &str| reg.counter(name).unwrap_or(0);
        prop_assert_eq!(c("greylist.deferred.total"), stats.total_greylisted());
        prop_assert_eq!(c("greylist.passed.total"), stats.total_passed());
        prop_assert_eq!(
            c("greylist.deferred.total"),
            c("greylist.deferred.new")
                + c("greylist.deferred.early")
                + c("greylist.deferred.restarted"),
        );
        prop_assert_eq!(c("mta.receive.rcpt_greylisted"), c("greylist.deferred.total"));
    }

    /// Triplet accounting: after any bot campaign against a greylisted
    /// victim, greylist stats add up (total = passed + greylisted).
    #[test]
    fn prop_greylist_stats_add_up(seed in 0u64..500, n in 1usize..8) {
        let mut world = worlds::greylist_world(seed, SimDuration::from_secs(300));
        let mut rng = DetRng::seed(seed).fork("stats");
        let campaign = Campaign::synthetic(VICTIM_DOMAIN, n, &mut rng);
        let mut bot = BotSample::new(MalwareFamily::Kelihos, 0, Ipv4Addr::new(203, 0, 113, 3));
        bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(100_000));
        let gl = world.server(VICTIM_MX_IP).unwrap().greylist().unwrap();
        let stats = gl.stats();
        prop_assert_eq!(stats.total(), stats.total_passed() + stats.total_greylisted());
        prop_assert!(stats.total() >= n as u64);
    }
}

/// Every registered experiment exports a non-empty metric registry, and
/// the canonical JSON rendering always embeds it.
#[test]
fn every_registered_report_has_metrics() {
    use spamward::core::harness::{self, HarnessConfig, Scale};
    let config = HarnessConfig { seed: Some(9), scale: Scale::Quick, ..Default::default() };
    for exp in harness::registry() {
        let report = exp.run(&config).expect("unbudgeted run completes");
        assert!(!report.metrics().is_empty(), "{}: empty metric registry", exp.id());
        assert!(
            report.to_json().contains("\"metrics\":[{"),
            "{}: JSON rendering lacks a populated metrics section",
            exp.id()
        );
    }
}

/// Table II's metric registry agrees with its table: the bots that beat
/// greylisting in the table are exactly the ones that show up as passed
/// triplets, and the defer/pass split stays internally consistent.
#[test]
fn efficacy_metrics_consistent_with_table() {
    use spamward::core::experiments::efficacy;
    let config = efficacy::EfficacyConfig { recipients: 4, ..Default::default() };
    let mut reg = spamward::obs::Registry::new();
    let result = efficacy::run_with_obs(&config, false, &mut reg, &mut Vec::new());

    let c = |name: &str| reg.counter(name).unwrap_or(0);
    // Every sample's first contact with the greylisted victim is deferred.
    assert!(c("greylist.deferred.new") >= result.rows.len() as u64);
    assert_eq!(c("greylist.deferred.total"), c("mta.receive.rcpt_greylisted"));
    assert_eq!(
        c("greylist.deferred.total"),
        c("greylist.deferred.new")
            + c("greylist.deferred.early")
            + c("greylist.deferred.restarted"),
    );
    // The table's "greylisting blocked" column and the pass counters tell
    // the same story: passes happen iff some family out-waits the delay.
    let unblocked = result.rows.iter().filter(|r| !r.greylisting_blocked).count();
    if unblocked > 0 {
        assert!(
            c("greylist.passed.after_delay") >= unblocked as u64,
            "families that beat greylisting must have passed triplets"
        );
    } else {
        assert_eq!(c("greylist.passed.total"), 0, "nothing passed, nothing may count as passed");
    }
}

/// The §VI cost table and the metric registry are two views of the same
/// run: delivered counts, store sizes and greylist defer/pass counters
/// must line up across the three setups.
#[test]
fn costs_metrics_consistent_with_table() {
    use spamward::core::experiments::costs;
    let config = costs::CostsConfig { messages: 60, ..Default::default() };
    let mut reg = spamward::obs::Registry::new();
    let result = costs::run_with_obs(&config, false, &mut reg, &mut Vec::new());

    let c = |name: &str| reg.counter(name).unwrap_or(0);
    let delivered_total: usize = result.rows.iter().map(|r| r.delivered).sum();
    assert_eq!(c("mta.send.delivered"), delivered_total as u64);
    assert_eq!(c("mta.receive.accepted"), delivered_total as u64);

    // Only the greylisting setup owns a triplet store; its table column is
    // the same number the registry reports as the store-size gauge.
    let grey = result.row("greylisting").expect("greylisting row exists");
    assert_eq!(reg.gauge("greylist.store.size"), Some(grey.store_entries as i64));
    // Each benign message is a fresh triplet: deferred once on first
    // contact, passed after out-waiting the delay.
    assert_eq!(c("greylist.deferred.new"), config.messages as u64);
    assert_eq!(c("greylist.passed.after_delay"), grey.delivered as u64);
    assert_eq!(c("greylist.deferred.total"), c("mta.receive.rcpt_greylisted"));
}
