//! Cross-crate integration: full delivery paths from bot or MTA through
//! DNS, the simulated network, the SMTP engine, the greylist, and out the
//! analysis pipeline.

use spamward::analysis::log::GreylistLogAnalysis;
use spamward::core::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use spamward::prelude::*;
use spamward::smtp::ReversePath;
use std::net::Ipv4Addr;

#[test]
fn compliant_mta_delivers_through_greylist_and_log_reconstructs_delay() {
    let mut world = worlds::greylist_world(1, SimDuration::from_secs(300));
    let mut sender = SendingMta::new(
        "relay.example",
        vec![Ipv4Addr::new(198, 51, 100, 1)],
        MtaProfile::postfix(),
    );
    sender.submit(
        VICTIM_DOMAIN.parse().unwrap(),
        ReversePath::Address("alice@relay.example".parse().unwrap()),
        vec![format!("bob@{VICTIM_DOMAIN}").parse().unwrap()],
        Message::builder().header("Subject", "hello").body("integration").build(),
        SimTime::ZERO,
    );
    sender.drain(SimTime::ZERO, &mut world);

    // The message is in the mailbox...
    let server = world.server(VICTIM_MX_IP).unwrap();
    assert_eq!(server.mailbox().len(), 1);
    assert_eq!(server.mailbox()[0].message.header("subject"), Some("hello"));

    // ...and the anonymized log round-trips through the analyzer with the
    // same delay the sender recorded.
    let analysis = GreylistLogAnalysis::from_lines(server.log_text().lines())
        .expect("MTA log lines are well-formed");
    assert_eq!(analysis.malformed(), 0);
    let delays = analysis.delivery_delays();
    assert_eq!(delays.len(), 1);
    // Log timestamps include per-connection latency, so agreement is up to
    // a fraction of a second.
    let sender_side = sender.records().iter().find(|r| r.delivered).unwrap().since_enqueue;
    assert_eq!(sender_side, SimDuration::from_mins(5));
    let drift = delays[0].saturating_sub(sender_side).max(sender_side.saturating_sub(delays[0]));
    assert!(drift < SimDuration::from_secs(1), "log delay {} vs sender {}", delays[0], sender_side);
}

#[test]
fn every_family_beats_an_unprotected_server_and_message_content_survives() {
    for family in MalwareFamily::ALL {
        let mut world = worlds::plain_world(7);
        let mut rng = DetRng::seed(9).fork("e2e");
        let campaign = Campaign::synthetic(VICTIM_DOMAIN, 4, &mut rng);
        let digest = campaign.message.digest();
        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 44));
        let report =
            bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(1800));
        assert_eq!(report.delivery_rate(), 1.0, "{family}");
        let mailbox = world.server(VICTIM_MX_IP).unwrap().mailbox();
        assert_eq!(mailbox.len(), 4, "{family}");
        for stored in mailbox {
            assert_eq!(stored.message.digest(), digest, "{family}: message mutated in transit");
            assert_eq!(stored.envelope.client_ip(), Ipv4Addr::new(203, 0, 113, 44));
        }
    }
}

#[test]
fn greylist_state_persists_across_independent_senders() {
    // Two different senders to the same recipient are independent triplets:
    // the second sender must not benefit from the first one's aging.
    let mut world = worlds::greylist_world(3, SimDuration::from_secs(300));
    let rcpt: spamward::smtp::EmailAddress = format!("user@{VICTIM_DOMAIN}").parse().unwrap();

    let mut first = SendingMta::new(
        "relay-a.example",
        vec![Ipv4Addr::new(198, 51, 100, 1)],
        MtaProfile::postfix(),
    );
    first.submit(
        VICTIM_DOMAIN.parse().unwrap(),
        ReversePath::Address("a@relay-a.example".parse().unwrap()),
        vec![rcpt.clone()],
        Message::builder().body("one").build(),
        SimTime::ZERO,
    );
    first.drain(SimTime::ZERO, &mut world);
    assert_eq!(world.server(VICTIM_MX_IP).unwrap().mailbox().len(), 1);

    // Different sender address AND different /24 → fresh triplet → deferred.
    let mut second = SendingMta::new(
        "relay-b.example",
        vec![Ipv4Addr::new(203, 0, 113, 1)],
        MtaProfile::postfix(),
    );
    second.submit(
        VICTIM_DOMAIN.parse().unwrap(),
        ReversePath::Address("b@relay-b.example".parse().unwrap()),
        vec![rcpt],
        Message::builder().body("two").build(),
        SimTime::from_secs(1_000),
    );
    second.drain(SimTime::from_secs(1_000), &mut world);
    let records = second.records();
    assert!(!records[0].delivered, "second sender must be greylisted on first contact");
    assert!(records.last().unwrap().delivered);
    assert_eq!(world.server(VICTIM_MX_IP).unwrap().mailbox().len(), 2);
}

#[test]
fn nolisting_and_greylisting_stack() {
    // A victim running BOTH defenses: dead primary + greylisting secondary.
    use spamward::greylist::{Greylist, GreylistConfig};
    use spamward::net::PortState;
    use spamward::net::SMTP_PORT;

    let dead = Ipv4Addr::new(192, 0, 2, 30);
    let live = Ipv4Addr::new(192, 0, 2, 31);
    let mut world = MailWorld::new(11);
    world.network.host("smtp.victim.example").ip(dead).port(SMTP_PORT, PortState::Closed).build();
    world.install_server(
        ReceivingMta::new("smtp1.victim.example", live)
            .with_greylist(Greylist::new(GreylistConfig::default())),
    );
    world.dns.publish(Zone::nolisting(VICTIM_DOMAIN.parse().unwrap(), dead, live));

    let horizon = SimTime::from_secs(200_000);

    // All four families die against the stack (the §VI recommendation);
    // each gets a fresh victim so triplet aging can't leak across runs.
    for (i, family) in MalwareFamily::ALL.into_iter().enumerate() {
        let mut world = MailWorld::new(11 + i as u64);
        world
            .network
            .host("smtp.victim.example")
            .ip(dead)
            .port(SMTP_PORT, PortState::Closed)
            .build();
        world.install_server(
            ReceivingMta::new("smtp1.victim.example", live)
                .with_greylist(Greylist::new(GreylistConfig::default())),
        );
        world.dns.publish(Zone::nolisting(VICTIM_DOMAIN.parse().unwrap(), dead, live));
        let mut rng = DetRng::seed(5 + i as u64).fork("stack");
        let campaign = Campaign::synthetic(VICTIM_DOMAIN, 5, &mut rng);
        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 66));
        let report = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, horizon);
        assert!(!report.any_delivered(), "{family} got through the nolisting+greylisting stack");
    }

    // But a compliant benign sender still delivers.
    let mut sender = SendingMta::new(
        "relay.example",
        vec![Ipv4Addr::new(198, 51, 100, 77)],
        MtaProfile::sendmail(),
    );
    sender.submit(
        VICTIM_DOMAIN.parse().unwrap(),
        ReversePath::Address("legit@relay.example".parse().unwrap()),
        vec![format!("user@{VICTIM_DOMAIN}").parse().unwrap()],
        Message::builder().body("benign").build(),
        SimTime::ZERO,
    );
    sender.drain(SimTime::ZERO, &mut world);
    assert!(sender.records().iter().any(|r| r.delivered), "benign mail must survive the stack");
}

#[test]
fn greylist_survives_a_server_restart_over_real_tcp() {
    use spamward::smtp::tcp::{deliver_tcp, serve_count, WallClock};
    use spamward::smtp::{ClientSession, EmailAddress, Envelope, Message as SmtpMessage};
    use std::net::TcpListener;
    use std::thread;

    // A policy speaking directly to a greylist engine (300 s delay, but we
    // snapshot/restore around the wait instead of sleeping).
    struct GreylistPolicy(Greylist);
    impl spamward::smtp::ServerPolicy for GreylistPolicy {
        fn on_rcpt(
            &mut self,
            now: SimTime,
            tx: &spamward::smtp::Transaction,
            rcpt: &EmailAddress,
        ) -> spamward::smtp::PolicyDecision {
            let sender = tx.mail_from.clone().unwrap_or(spamward::smtp::ReversePath::Null);
            match self.0.check(now, tx.client_ip, &sender, rcpt) {
                spamward::greylist::Decision::Pass(_) => spamward::smtp::PolicyDecision::Accept,
                spamward::greylist::Decision::Greylisted { retry_after } => {
                    spamward::smtp::PolicyDecision::TempFail(spamward::smtp::Reply::greylisted(
                        retry_after.as_secs(),
                    ))
                }
            }
        }
    }

    let envelope = || {
        Envelope::builder()
            .client_ip(std::net::Ipv4Addr::LOCALHOST)
            .helo("client.local")
            .mail_from(spamward::smtp::ReversePath::Address("alice@relay.example".parse().unwrap()))
            .rcpt("user@restart.test".parse().unwrap())
            .build()
    };
    let message = || SmtpMessage::builder().header("Subject", "restart").body("x").build();

    // --- First server instance: defer, then snapshot its state.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let first = thread::spawn(move || {
        let gl = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        let mut policy = GreylistPolicy(gl);
        let clock = WallClock::new();
        serve_count(&listener, "mx.restart.test", &mut policy, &clock, 1).unwrap();
        policy.0.snapshot()
    });
    let client = ClientSession::new(Dialect::compliant_mta("relay.example"), envelope(), message());
    let outcome = deliver_tcp(addr, client).unwrap();
    assert!(!outcome.is_delivered(), "first contact must be deferred");
    let snapshot = first.join().unwrap();

    // --- "Restart": a new server instance restores the snapshot. Its
    // clock restarts from zero too, so we hand it a pre-aged engine by
    // checking from a later virtual instant: simulate the wait by
    // restoring into an engine whose pending entry is already old enough.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let second = thread::spawn(move || {
        let mut gl = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        gl.restore(&snapshot).unwrap();
        let mut policy = GreylistPolicy(gl);
        let clock = WallClock::new();
        serve_count(&listener, "mx.restart.test", &mut policy, &clock, 1).unwrap();
        policy.0.stats()
    });
    // The snapshot was taken at wall-clock ~0, and the new server's clock
    // also starts at ~0 — so the triplet is still young and the retry is
    // re-deferred. That IS the correct behaviour for an instant restart;
    // assert it, then verify the aged path separately below.
    let client = ClientSession::new(Dialect::compliant_mta("relay.example"), envelope(), message());
    let outcome = deliver_tcp(addr, client).unwrap();
    assert!(!outcome.is_delivered(), "instant restart must not reset the clock to PASS");
    let stats = second.join().unwrap();
    assert_eq!(stats.greylisted_early, 1, "restored triplet recognized as known-but-young");
}

#[test]
fn auto_whitelist_exempts_a_busy_legitimate_relay() {
    use spamward::greylist::{Greylist, GreylistConfig};

    // AWL at 3 passes; the relay sends many messages and eventually skips
    // greylisting entirely.
    let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
    cfg.auto_whitelist_after = Some(3);
    let mut world = MailWorld::new(13);
    world.install_server(
        ReceivingMta::new("mail.victim.example", VICTIM_MX_IP).with_greylist(Greylist::new(cfg)),
    );
    world.dns.publish(Zone::single_mx(VICTIM_DOMAIN.parse().unwrap(), VICTIM_MX_IP));

    let relay_ip = Ipv4Addr::new(198, 51, 100, 9);
    for i in 0..5 {
        // sendmail's 10-minute first retry is comfortably past the 300 s
        // delay (postfix's 5-minute retry races connection latency).
        let mut sender = SendingMta::new("relay.example", vec![relay_ip], MtaProfile::sendmail());
        sender.submit(
            VICTIM_DOMAIN.parse().unwrap(),
            ReversePath::Address(format!("user{i}@relay.example").parse().unwrap()),
            vec![format!("rcpt{i}@{VICTIM_DOMAIN}").parse().unwrap()],
            Message::builder().body("x").build(),
            SimTime::from_secs(i * 10_000),
        );
        sender.drain(SimTime::from_secs(i * 10_000), &mut world);
        let attempts = sender.records().len();
        if i < 3 {
            assert_eq!(attempts, 2, "message {i} should need one retry");
        } else {
            assert_eq!(attempts, 1, "message {i} should pass via the auto-whitelist");
        }
    }
}
