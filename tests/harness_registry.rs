//! Registry completeness: every experiment module is registered exactly
//! once, ids are unique, and the CLI listing covers every row. (Registry ↔
//! DESIGN.md index sync is enforced by lint rule `R1`, which resolves each
//! registry entry to the id its `impl Experiment` returns.)

use spamward::core::harness;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn every_experiment_module_is_registered_exactly_once() {
    let dir = repo_path("crates/core/src/experiments");
    let mut impls_per_module: BTreeMap<String, usize> = BTreeMap::new();
    for entry in fs::read_dir(&dir).expect("experiments dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let module = path.file_stem().expect("file stem").to_string_lossy().to_string();
        // mod.rs declares the modules; worlds.rs hosts shared builders.
        if module == "mod" || module == "worlds" {
            continue;
        }
        let source = fs::read_to_string(&path).expect("readable module source");
        impls_per_module.insert(module, source.matches("impl Experiment for").count());
    }

    // kelihos hosts two experiments (fig3 + fig4 share one run); every
    // other module contributes exactly one registry entry.
    for (module, count) in &impls_per_module {
        let expected = if module == "kelihos" { 2 } else { 1 };
        assert_eq!(
            *count, expected,
            "{module}.rs: expected {expected} `impl Experiment` block(s), found {count}"
        );
    }
    let total: usize = impls_per_module.values().sum();
    assert_eq!(
        total,
        harness::registry().len(),
        "experiment impls vs registry entries: {impls_per_module:?}"
    );
}

#[test]
fn registry_ids_are_unique_and_stable() {
    let ids: Vec<&str> = harness::registry().iter().map(|e| e.id()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment id: {ids:?}");
    // The canonical `repro all` order.
    assert_eq!(
        ids,
        vec![
            "table1",
            "fig2",
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "table3",
            "table4",
            "summary",
            "ablations",
            "future",
            "dialects",
            "costs",
            "longterm",
            "variance",
            "resilience",
            "policy_backend",
            "recovery",
        ]
    );
}

#[test]
fn list_text_covers_every_registry_row() {
    // `repro --list` prints exactly this rendering.
    let listing = harness::list_text();
    for exp in harness::registry() {
        assert!(listing.contains(exp.id()), "--list missing id {}", exp.id());
        assert!(
            listing.contains(exp.paper_artifact()),
            "--list missing artifact {}",
            exp.paper_artifact()
        );
        assert!(listing.contains(exp.title()), "--list missing title {}", exp.title());
    }
}
