//! Shard-count invariance of the sharded experiments.
//!
//! The shard *partition* of fig2, table2 and fig5 is fixed per experiment;
//! `HarnessConfig::shards` (the CLI's `--shards`) only selects how many
//! shards run concurrently. These tests pin the consequence: every
//! rendering, metrics included, is byte-identical across executor widths,
//! and the per-shard metric set is always complete.

use spamward::core::harness::{self, HarnessConfig, Scale};

/// The experiments converted to the sharded execution path.
const SHARDED_IDS: [&str; 3] = ["fig2", "table2", "fig5"];

fn run(id: &str, seed: Option<u64>, shards: usize) -> harness::Report {
    let exp = harness::find(id).expect("sharded experiment is registered");
    let config = HarnessConfig { seed, scale: Scale::Quick, shards, ..Default::default() };
    exp.run(&config).expect("quick-scale run completes")
}

#[test]
fn sharded_experiments_are_shard_count_invariant() {
    for id in SHARDED_IDS {
        for seed in [None, Some(7), Some(2026)] {
            let serial = run(id, seed, 1);
            let wide = run(id, seed, 4);
            assert_eq!(
                serial.to_json(),
                wide.to_json(),
                "{id} seed {seed:?}: JSON bytes must not depend on --shards"
            );
            assert_eq!(
                serial.to_text_with_metrics(),
                wide.to_text_with_metrics(),
                "{id} seed {seed:?}: text+metrics bytes must not depend on --shards"
            );
        }
    }
}

#[test]
fn sharded_runs_record_every_fixed_shard() {
    for id in SHARDED_IDS {
        let report = run(id, None, 2);
        let mut total = 0;
        for shard in 0..8u32 {
            let name = format!("sim.engine.shard.{shard}.events");
            total += report
                .metrics()
                .counter(&name)
                .unwrap_or_else(|| panic!("{id} is missing the {name} counter"));
        }
        assert!(total > 0, "{id}: aggregate shard event count should be nonzero");
    }
}
