//! # spamward
//!
//! A measurement toolkit for **greylisting** and **nolisting**, the two
//! SMTP-level anti-spam defenses studied in *"Measuring the Role of
//! Greylisting and Nolisting in Fighting Spam"* (Pagani, De Astis,
//! Graziano, Lanzi, Balzarotti — DSN 2016). The workspace rebuilds the
//! paper's entire apparatus — SMTP stack, DNS substrate, greylisting
//! engine, MTA fleet, botnet behaviour models, webmail retry policies, and
//! an internet-scale scan simulator — and re-runs every table and figure.
//!
//! This crate is the facade: it re-exports each subsystem under a short
//! name. Start with [`experiments`](core::experiments) for the paper
//! reproductions, or with the quickstart example:
//!
//! ```
//! use spamward::prelude::*;
//!
//! // A victim server greylisting at the Postgrey default...
//! let mut world = MailWorld::new(7);
//! let mx = std::net::Ipv4Addr::new(192, 0, 2, 10);
//! world.install_server(
//!     ReceivingMta::new("mx.foo.net", mx)
//!         .with_greylist(Greylist::new(GreylistConfig::default())),
//! );
//! world.dns.publish(Zone::single_mx("foo.net".parse()?, mx));
//!
//! // ...stops a fire-and-forget bot cold.
//! let mut bot = BotSample::new(MalwareFamily::Cutwail, 0, std::net::Ipv4Addr::new(203, 0, 113, 5));
//! let mut rng = DetRng::seed(1).fork("demo");
//! let campaign = Campaign::synthetic("foo.net", 3, &mut rng);
//! let report = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(1800));
//! assert!(!report.any_delivered());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Discrete-event simulation engine (virtual time, deterministic RNG).
pub use spamward_sim as sim;

/// Deterministic metrics and span instrumentation (counters, gauges,
/// histograms, spans — all keyed off injected virtual time).
pub use spamward_obs as obs;

/// Simulated IPv4 internet (hosts, ports, probes, latency).
pub use spamward_net as net;

/// DNS substrate (zones, MX resolution, nolisting configurations).
pub use spamward_dns as dns;

/// SMTP protocol engine (commands, replies, client/server state machines).
pub use spamward_smtp as smtp;

/// Postgrey-compatible greylisting engine.
pub use spamward_greylist as greylist;

/// Mail transfer agents (receiving filter chain, sending retry queues).
pub use spamward_mta as mta;

/// Behavioral models of the spam malware families.
pub use spamward_botnet as botnet;

/// Webmail provider retry-policy models (Table III).
pub use spamward_webmail as webmail;

/// Internet-wide scan simulation and the nolisting detector (Fig. 2).
pub use spamward_scanner as scanner;

/// Metrics, CDFs, tables and log analysis.
pub use spamward_analysis as analysis;

/// The study itself: one module per paper table/figure.
pub use spamward_core as core;

/// The most common imports in one place.
pub mod prelude {
    pub use spamward_botnet::{BotSample, Campaign, MalwareFamily};
    pub use spamward_dns::Zone;
    pub use spamward_greylist::{Greylist, GreylistConfig};
    pub use spamward_mta::{MailWorld, MtaProfile, ReceivingMta, SendingMta};
    pub use spamward_sim::{DetRng, SimDuration, SimTime};
    pub use spamward_smtp::{Dialect, Envelope, Message};
    pub use spamward_webmail::WebmailProvider;
}
