//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as forward-looking
//! annotations — nothing in-tree serializes through serde yet (there is no
//! `serde_json` or similar). These derives therefore emit no code; they exist
//! so the annotations keep compiling in the offline build. The `serde` helper
//! attribute (e.g. `#[serde(transparent)]`) is accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
