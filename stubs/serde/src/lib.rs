//! Offline stand-in for the `serde` facade.
//!
//! The workspace annotates data types with `#[derive(Serialize, Deserialize)]`
//! so snapshots and experiment outputs *can* be serialized once a real format
//! crate is wired up, but nothing in-tree calls serde's data-model methods.
//! This stub provides the two marker traits plus the no-op derives from
//! [`serde_derive`] so those annotations compile in the offline build.
//!
//! When network access (or a vendored registry) becomes available, deleting
//! `stubs/` and restoring the crates.io versions in `[workspace.dependencies]`
//! is the whole migration.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// The real trait is parameterized over the deserializer lifetime; the
/// workspace only ever names the trait in derives, so the stub drops the
/// parameter.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
