//! A regex-subset string generator.
//!
//! Supports the pattern language the workspace's property tests use:
//! literals, escapes (`\.`, `\\`, `\r`, `\n`, `\t`), the Unicode-category
//! negation `\PC` (sampled from printable ASCII), character classes with
//! ranges (`[a-z0-9. ]`), groups, alternation, and the quantifiers `?`, `*`,
//! `+`, `{n}`, `{m,n}`. Unsupported syntax panics loudly rather than
//! generating the wrong distribution silently.

use crate::test_runner::TestRng;

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let ast = parse_alternation(&chars, &mut pos);
    assert!(pos == chars.len(), "unsupported regex tail in {pattern:?} at offset {pos}");
    let mut out = String::new();
    sample_alternation(&ast, rng, &mut out);
    out
}

/// Unbounded quantifiers (`*`, `+`) cap their repetition here.
const UNBOUNDED_CAP: u32 = 8;

enum Atom {
    Literal(char),
    /// Inclusive character ranges to sample uniformly (by range, then point).
    Class(Vec<(char, char)>),
    Group(Alternation),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

type Sequence = Vec<Piece>;

struct Alternation {
    branches: Vec<Sequence>,
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Alternation {
    let mut branches = vec![parse_sequence(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        branches.push(parse_sequence(chars, pos));
    }
    Alternation { branches }
}

fn parse_sequence(chars: &[char], pos: &mut usize) -> Sequence {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos);
        let (min, max) = parse_quantifier(chars, pos);
        seq.push(Piece { atom, min, max });
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Atom {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '(' => {
            let inner = parse_alternation(chars, pos);
            assert!(*pos < chars.len() && chars[*pos] == ')', "unterminated group in pattern");
            *pos += 1;
            Atom::Group(inner)
        }
        '[' => parse_class(chars, pos),
        '\\' => parse_escape(chars, pos),
        // Any printable ASCII except newline, like `.` with unicode off.
        '.' => Atom::Class(vec![(' ', '~')]),
        _ => Atom::Literal(c),
    }
}

fn parse_escape(chars: &[char], pos: &mut usize) -> Atom {
    let c = *chars.get(*pos).expect("dangling backslash in pattern");
    *pos += 1;
    match c {
        'r' => Atom::Literal('\r'),
        'n' => Atom::Literal('\n'),
        't' => Atom::Literal('\t'),
        'd' => Atom::Class(vec![('0', '9')]),
        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
        'P' => {
            // Only `\PC` ("not in category Other") is supported; sample it
            // from printable ASCII, a faithful subset.
            let cat = *chars.get(*pos).expect("\\P needs a category");
            *pos += 1;
            assert!(cat == 'C', "unsupported unicode category \\P{cat}");
            Atom::Class(vec![(' ', '~')])
        }
        '.' | '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*' | '+' | '-' | '^'
        | '$' => Atom::Literal(c),
        _ => panic!("unsupported escape \\{c} in pattern"),
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Atom {
    assert!(*pos < chars.len() && chars[*pos] != '^', "negated classes are not supported");
    let mut ranges = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut lo = chars[*pos];
        *pos += 1;
        if lo == '\\' {
            lo = *chars.get(*pos).expect("dangling backslash in class");
            *pos += 1;
            lo = match lo {
                'r' => '\r',
                'n' => '\n',
                't' => '\t',
                other => other,
            };
        }
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = chars[*pos];
            *pos += 1;
            assert!(lo <= hi, "inverted class range {lo}-{hi}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(*pos < chars.len(), "unterminated character class");
    *pos += 1; // consume ']'
    assert!(!ranges.is_empty(), "empty character class");
    Atom::Class(ranges)
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (u32, u32) {
    if *pos >= chars.len() {
        return (1, 1);
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            (0, 1)
        }
        '*' => {
            *pos += 1;
            (0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            (1, UNBOUNDED_CAP)
        }
        '{' => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = if chars[*pos] == ',' {
                *pos += 1;
                parse_number(chars, pos)
            } else {
                min
            };
            assert!(chars[*pos] == '}', "unterminated quantifier");
            *pos += 1;
            assert!(min <= max, "inverted quantifier {{{min},{max}}}");
            (min, max)
        }
        _ => (1, 1),
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    assert!(*pos > start, "expected a number in quantifier");
    chars[start..*pos].iter().collect::<String>().parse().expect("quantifier number")
}

fn sample_alternation(alt: &Alternation, rng: &mut TestRng, out: &mut String) {
    let branch = &alt.branches[rng.below(alt.branches.len() as u64) as usize];
    for piece in branch {
        let span = u64::from(piece.max - piece.min + 1);
        let n = piece.min + rng.below(span) as u32;
        for _ in 0..n {
            sample_atom(&piece.atom, rng, out);
        }
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
            let mut idx = rng.below(total);
            for (lo, hi) in ranges {
                let len = *hi as u64 - *lo as u64 + 1;
                if idx < len {
                    out.push(char::from_u32(*lo as u32 + idx as u32).expect("class range char"));
                    return;
                }
                idx -= len;
            }
            unreachable!("class sampling index out of bounds");
        }
        Atom::Group(inner) => sample_alternation(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string::tests", 0)
    }

    #[test]
    fn class_and_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut r);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dotted_domain_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z0-9]{1,10}(\\.[a-z0-9]{1,10}){0,3}", &mut r);
            for label in s.split('.') {
                assert!(!label.is_empty(), "{s:?}");
                assert!(label.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            }
        }
    }

    #[test]
    fn printable_escape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("\\PC{0,60}", &mut r);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn group_with_crlf_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("(\\.?[a-z ]{0,10}\r\n){0,5}", &mut r);
            assert!(s.is_empty() || s.ends_with("\r\n"), "{s:?}");
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,40}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn alternation_picks_both_branches() {
        let mut r = rng();
        let mut seen = [false, false];
        for _ in 0..64 {
            match generate("a|b", &mut r).as_str() {
                "a" => seen[0] = true,
                "b" => seen[1] = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}
