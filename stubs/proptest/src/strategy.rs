//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; the stub has no shrinking, so a strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`", returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    /// Const-constructible instance (used by e.g. `proptest::bool::ANY`).
    pub const NEW: Any<T> = Any { _marker: PhantomData };
}

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T>() -> Any<T> {
    Any { _marker: PhantomData }
}

macro_rules! any_uint {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_uint {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_sint {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*
    };
}

range_sint!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// String strategies are regex-subset patterns; see [`crate::string`].
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("strategy::tests", 0);
        for _ in 0..1_000 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let w = (0u8..=32).sample(&mut rng);
            assert!(w <= 32);
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let q = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic("strategy::tests", 1);
        let (a, b) = (0u8..8, 0u64..100_000).sample(&mut rng);
        assert!(a < 8 && b < 100_000);
    }
}
