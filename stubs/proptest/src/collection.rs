//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_tuples_respects_bounds() {
        let mut rng = TestRng::deterministic("collection::tests", 0);
        for _ in 0..100 {
            let v = vec((0u8..8, 0u64..100_000), 1..30).sample(&mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 8 && b < 100_000));
        }
    }

    #[test]
    fn vec_of_strings() {
        let mut rng = TestRng::deterministic("collection::tests", 1);
        let v = vec("[ -~]{0,40}", 1..25).sample(&mut rng);
        assert!((1..25).contains(&v.len()));
    }
}
