//! Offline, deterministic mini-proptest.
//!
//! Implements the slice of the `proptest` API this workspace uses — the
//! `proptest!` macro, `prop_assert*`, integer/float range strategies,
//! `any::<T>()`, tuple strategies, `collection::vec`, and a regex-subset
//! string strategy — so the property tests *actually run* in the offline
//! build rather than being compiled out.
//!
//! Unlike upstream proptest (whose default seed source is the OS RNG), every
//! case here derives from a fixed per-test seed, so the whole suite is
//! bit-for-bit reproducible — the same discipline `spamward-lint` enforces on
//! the simulator itself. There is no shrinking: a failing case reports its
//! case number, and re-running reproduces it exactly.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    /// Either boolean with equal probability.
    pub const ANY: crate::Any<::core::primitive::bool> = crate::Any::NEW;
}

pub use strategy::{any, Any, Strategy};

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carried by `prop_assert*` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Declares deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(__case),
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $crate::__proptest_bind!(__rng, $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (deterministic; rerun reproduces): {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident $(,)? ) => {};
    ( $rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)? ) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}
