//! The deterministic random source behind every strategy.

/// A SplitMix64 stream seeded from the test's module path and case number.
///
/// SplitMix64 passes BigCrush at this usage scale and needs no warm-up, so a
/// short, fully deterministic derivation (FNV-1a of the test name, XORed with
/// the case index) gives every property its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the stream for one `(test, case)` pair.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn case_and_name_change_stream() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 4);
        let mut c = TestRng::deterministic("x::z", 3);
        let first = a.next_u64();
        assert_ne!(first, b.next_u64());
        assert_ne!(first, c.next_u64());
    }
}
