//! Offline stand-in for `crossbeam`: multi-consumer channels and scoped
//! threads over `std` primitives.
//!
//! The workspace uses exactly two crossbeam features — `channel::unbounded`
//! work queues with cloneable receivers, and `crossbeam::scope` worker pools.
//! Both map cleanly onto `std`: the channel is a `Mutex<VecDeque>` +
//! `Condvar`, and scoped threads are `std::thread::scope` (stable since Rust
//! 1.63). Semantics relevant to the callers are preserved: `recv` blocks
//! until an item arrives or every sender is dropped, cloned receivers steal
//! work from one shared queue, and a panicking worker propagates out of
//! `scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel; clones share one queue.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// The stub never reports disconnection on send (the queue lives as long
    /// as any endpoint), matching how the workspace uses the API: sends are
    /// `expect`ed to succeed while the scope holds receivers alive.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, printable without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Creates an unbounded multi-producer multi-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders += 1;
            drop(state);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking until one arrives or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock");
            }
        }

        /// A blocking iterator over received items, ending when the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

/// Handle passed to closures spawned inside a [`scope`]; allows nested
/// spawns, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker thread. The closure receives a scope handle it
    /// can use for nested spawns (the workspace's workers ignore it).
    pub fn spawn<F, T>(&self, f: F)
    where
        F: for<'s> FnOnce(&Scope<'s, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. A panicking worker re-panics here (so callers' `.expect(..)` on
/// the result still aborts the test), hence the `Ok` is unconditional.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_fan_in() {
        let (job_tx, job_rx) = channel::unbounded::<u32>();
        let (res_tx, res_rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            job_tx.send(i).unwrap();
        }
        drop(job_tx);
        scope(|s| {
            for _ in 0..4 {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                s.spawn(move |_| {
                    while let Ok(job) = job_rx.recv() {
                        res_tx.send(job * 2).unwrap();
                    }
                });
            }
            drop(res_tx);
        })
        .unwrap();
        let mut out: Vec<u32> = res_rx.iter().collect();
        out.sort_unstable();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }
}
