//! Offline stand-in for `criterion`: enough of the API surface for the
//! workspace's benches to compile and produce useful (if unsophisticated)
//! per-iteration timings with `cargo bench`.
//!
//! No statistics, no plots, no outlier rejection — each bench runs a short
//! calibration pass then reports the median of a handful of timed batches.
//! This is deliberately the only place in the repository (outside the
//! sanctioned `spamward-sim` wall-clock module) that reads the host clock:
//! benches measure real time by definition and are never simulation input.

use std::time::Instant;

/// Measurement harness handed to each bench target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group; benches inside it report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of benches sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload; the stub prints it alongside the
    /// timing but does not scale results.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Workload descriptor mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint mirroring `criterion::BatchSize`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` with a fresh un-timed `setup` value per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Opaque value sink preventing the optimizer from deleting the benched
/// computation (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F>(name: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one batch takes >= 1 ms, so
    // sub-microsecond routines still get a stable reading.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed_ns: 0 };
        f(&mut b);
        if b.elapsed_ns >= 1_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples.min(20) {
        let mut b = Bencher { iters, elapsed_ns: 0 };
        f(&mut b);
        per_iter.push(b.elapsed_ns / u128::from(iters.max(1)));
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    println!("bench {name:<48} {median:>12} ns/iter ({iters} iters/sample)");
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
