//! The Kelihos long run (paper Figs. 3 and 4), narrated.
//!
//! Runs Kelihos against three greylisting thresholds and prints the retry
//! timeline: the 300–600 s / ~5 ks / 80–90 ks attempt peaks, and at which
//! threshold the spam finally dies.
//!
//! ```sh
//! cargo run --example botnet_vs_greylist
//! ```

use spamward::analysis::Series;
use spamward::core::experiments::kelihos::{run, KelihosConfig};

fn main() {
    let config = KelihosConfig { recipients: 100, ..Default::default() };
    println!("running Kelihos against greylisting thresholds of 5 s, 300 s and 21600 s...");
    println!("(virtual horizon {} — instantaneous in simulated time)\n", { config.horizon });

    let result = run(&config);
    print!("{result}");

    println!("\nFig. 3 CDF points (CSV):");
    let csv = Series::to_csv(&result.fig3_series());
    for line in csv.lines().take(12) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", csv.lines().count());

    println!("\nWhat to notice:");
    println!(" * the 5 s and 300 s curves coincide — Kelihos never retries before ~300 s,");
    println!("   so shortening the threshold below 300 s costs nothing;");
    println!(" * at 21600 s the malware still wins, but only after ~23 hours — time enough");
    println!("   for the sender to land on every DNS blacklist (the paper's consolation).");
}
