//! Quickstart: greylisting and nolisting in thirty lines.
//!
//! Builds a victim mail server behind each defense, throws the four
//! malware families of the paper at it, and prints who got through.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use spamward::net::{PortState, SMTP_PORT};
use spamward::prelude::*;
use std::net::Ipv4Addr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let victim_domain = "victim.example";
    let live = Ipv4Addr::new(192, 0, 2, 10);
    let dead = Ipv4Addr::new(192, 0, 2, 11);

    println!("defense      family          spam delivered?");
    println!("---------------------------------------------");

    for family in MalwareFamily::ALL {
        // --- Greylisting world: one MX, Postgrey defaults (300 s). ---
        let mut world = MailWorld::new(1);
        world.install_server(
            ReceivingMta::new("mail.victim.example", live)
                .with_greylist(Greylist::new(GreylistConfig::default())),
        );
        world.dns.publish(Zone::single_mx(victim_domain.parse()?, live));

        let mut rng = DetRng::seed(42).fork("quickstart");
        let campaign = Campaign::synthetic(victim_domain, 10, &mut rng);
        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 7));
        let report =
            bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(30 * 60));
        println!(
            "greylisting  {:<15} {}",
            family.to_string(),
            if report.any_delivered() { "yes (defense failed)" } else { "no  (blocked)" }
        );

        // --- Nolisting world: dead primary MX, live secondary. ---
        let mut world = MailWorld::new(2);
        world
            .network
            .host("smtp.victim.example")
            .ip(dead)
            .port(SMTP_PORT, PortState::Closed)
            .build();
        world.install_server(ReceivingMta::new("smtp1.victim.example", live));
        world.dns.publish(Zone::nolisting(victim_domain.parse()?, dead, live));

        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 7));
        let report =
            bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(30 * 60));
        println!(
            "nolisting    {:<15} {}",
            family.to_string(),
            if report.any_delivered() { "yes (defense failed)" } else { "no  (blocked)" }
        );
    }

    println!();
    println!("Together the two defenses block all four families — over 70% of 2014's spam.");
    Ok(())
}
