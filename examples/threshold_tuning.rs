//! The §VI tuning question: which greylisting threshold should you run?
//!
//! Sweeps the threshold from 5 seconds to 30 hours and prints both sides
//! of the trade-off — botnet spam blocked vs. delay inflicted on benign
//! mail — ending at the paper's recommendation.
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use spamward::analysis::AsciiTable;
use spamward::core::experiments::ablations::threshold_sweep;

fn main() {
    println!("sweeping greylisting thresholds (four malware families + a postfix sender)...\n");
    let points = threshold_sweep(2015);

    let mut t = AsciiTable::new(vec!["Threshold", "Botnet spam blocked", "Benign delivery delay"])
        .with_title("Greylisting threshold trade-off");
    for p in &points {
        t.row(vec![
            p.threshold.to_string(),
            format!("{:.2}%", p.spam_blocked_pct),
            p.benign_delay.to_string(),
        ]);
    }
    print!("{t}");

    println!();
    println!("Reading the table the paper's way (§VI):");
    println!(" * blocking is FLAT from 5 s to 6 h — the bots that retry wait ≥300 s anyway,");
    println!("   and the ones that don't never retry at all;");
    println!(" * benign delay GROWS with the threshold — senders must out-wait it;");
    println!(" * so \"the use of a very short threshold is probably the best way to");
    println!("   maximize both aspects\". Only a >25 h threshold also stops Kelihos,");
    println!("   at a delay no mail admin would accept.");
}
