//! `greylistd` — a working greylisting SMTP server on a real socket.
//!
//! The same engine the experiments drive in virtual time, bound to
//! 127.0.0.1 and speaking genuine SMTP. Point any client at it:
//!
//! ```sh
//! cargo run --release --example greylistd            # serve 2 sessions on an ephemeral port
//! cargo run --release --example greylistd 2525 10    # port 2525, 10 sessions
//! ```
//!
//! Then, e.g. with netcat:
//!
//! ```text
//! $ nc 127.0.0.1 2525
//! 220 greylistd.spamward.example ESMTP spamward
//! EHLO me.example
//! MAIL FROM:<a@me.example>
//! RCPT TO:<user@spamward.example>
//! 450 4.2.0 Greylisted, see http://postgrey.schweikert.ch/ (retry in 300s)
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use spamward::greylist::{Greylist, GreylistConfig};
use spamward::mta::ReceivingMta;
use spamward::smtp::tcp::{serve_count, WallClock};
use std::net::{Ipv4Addr, TcpListener};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let sessions: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    println!("greylistd listening on {addr} for {sessions} session(s)");
    println!("config: delay 300 s, /24 triplet keying, postmaster whitelisted, pregreet filter on");

    let mut cfg = GreylistConfig::default();
    cfg.whitelist_recipients.add_local_part("postmaster");
    let mut mta = ReceivingMta::new("greylistd.spamward.example", Ipv4Addr::LOCALHOST)
        .with_greylist(Greylist::new(cfg))
        .with_pregreet_rejection();

    let clock = WallClock::new();
    serve_count(&listener, "greylistd.spamward.example", &mut mta, &clock, sessions)?;

    println!("\nserved {sessions} session(s); final state:");
    println!("  {}", mta.greylist().expect("greylist enabled").stats());
    println!("  messages accepted: {}", mta.stats().messages_accepted);
    println!("  pregreet rejections: {}", mta.stats().pregreet_rejected);
    println!("\nanonymized log:");
    for line in mta.log_text().lines() {
        println!("  {line}");
    }
    println!("\ngreylist snapshot (restorable with Greylist::restore):");
    for line in mta.greylist().expect("greylist enabled").snapshot().lines().take(10) {
        println!("  {line}");
    }
    Ok(())
}
