//! The arms race: what happens when the malware adapts (§VI outlook).
//!
//! Runs today's lazy bots and tomorrow's hypothetical adaptations against
//! every defense configuration, then prints the survival matrix and the
//! dialect fingerprints defenders could fall back on.
//!
//! ```sh
//! cargo run --release --example arms_race
//! ```

use spamward::core::experiments::{dialects, future_threats};

fn main() {
    println!("running the hypothetical-adaptation matrix...\n");
    let threats = future_threats::run(&future_threats::FutureThreatsConfig::default());
    print!("{threats}");

    println!("\nAnd if protocol-level defenses die, what's left? Behavioural fingerprints:");
    println!();
    let fingerprints = dialects::run();
    print!("{fingerprints}");

    println!("\nTakeaways:");
    println!(" * a bot that is simply *patient and polite* beats nolisting, greylisting,");
    println!("   their stack, AND the dialect classifier — the paper's warning that these");
    println!("   defenses work only 'until it is not worth paying the price anymore';");
    println!(" * the /24-keyed greylist default trades webmail friendliness for a");
    println!("   subnet-botnet hole; exact keying closes it at the webmail's expense;");
    println!(" * the Darkmailers already sit in the blind spot of dialect fingerprinting,");
    println!("   yet still die to greylisting — layered defenses cover each other.");
}
