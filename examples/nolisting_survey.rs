//! The Fig. 2 adoption survey, end to end.
//!
//! Generates a synthetic internet with the paper's topology mix, runs the
//! zmap-style DNS + banner scans twice, re-resolves missing MX glue with a
//! parallel worker pool, applies the three-step nolisting detector with
//! the double-scan cross-check, and prints the resulting pie — plus the
//! detector's accuracy, which the paper could never know.
//!
//! ```sh
//! cargo run --release --example nolisting_survey [domains]
//! ```

use spamward::core::experiments::nolisting_adoption::{run, AdoptionConfig};

fn main() {
    let domains: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);

    println!("surveying a synthetic internet of {domains} domains (two scans, cross-checked)...\n");
    let config = AdoptionConfig { domains, ..Default::default() };
    let result = run(&config);
    print!("{result}");

    println!("\npaper's Fig. 2 for comparison: one MX 47.73%, no nolisting 45.97%,");
    println!("nolisting 0.52%, DNS misconfiguration 5.78% — and nolisting adopters");
    println!("included 1 domain in Alexa's top-15, 2 in the top-500, 2 in the top-1000.");
}
