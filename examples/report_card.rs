//! Report card: every registered experiment's headline scalars on one
//! screen.
//!
//! Walks the `spamward_core::harness` registry at `Quick` scale — the same
//! code path as the paper-scale `repro all`, just smaller populations — and
//! prints each experiment's identity plus its named headline numbers. A
//! ten-second sanity pass over the whole reproduction.
//!
//! ```sh
//! cargo run --release --example report_card [seed]
//! ```

use spamward::core::harness::{fmt_scalar, registry, HarnessConfig, Scale};

fn main() {
    let seed: Option<u64> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let config = HarnessConfig { seed, scale: Scale::Quick, ..Default::default() };

    for exp in registry() {
        let report = exp.run(&config).expect("unbudgeted run completes");
        print!("[{}] {} ({})", exp.id(), exp.title(), exp.paper_artifact());
        match report.seed() {
            Some(s) => println!(" [seed {s}]"),
            None => println!(),
        }
        for scalar in report.scalars().iter().take(6) {
            println!("    {}: {}", scalar.name, fmt_scalar(scalar.value));
        }
        let hidden = report.scalars().len().saturating_sub(6);
        if hidden > 0 {
            println!("    ... and {hidden} more (see `repro {} --json`)", exp.id());
        }
        println!();
    }
    println!("Full tables and figures: cargo run --release -p spamward-bench --bin repro -- all");
}
