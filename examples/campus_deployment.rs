//! The Fig. 5 deployment replay: what greylisting costs benign mail.
//!
//! Replays a campus-like inbound mix — the Table IV MTA fleet, the ten
//! Table III webmail tiers, and the notification scripts that retry hourly
//! or never — through a 300 s greylist, then analyzes the server's
//! anonymized log exactly as the paper analyzed the University of Milan's.
//!
//! ```sh
//! cargo run --release --example campus_deployment [messages]
//! ```

use spamward::core::experiments::deployment::{run, DeploymentConfig};

fn main() {
    let messages: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    println!("replaying {messages} benign messages through a 300 s greylist...\n");
    let result = run(&DeploymentConfig { messages, ..Default::default() });
    print!("{result}");

    println!("\nbenign delivery-delay CDF (x = seconds since first attempt):");
    print!("{}", spamward::analysis::plot::ascii_cdf(&result.cdf, 60, 10));

    println!("\nThe paper's reading: even at the default 5-minute threshold only about");
    println!("half of greylisted legitimate mail arrives within 10 minutes, and a tail");
    println!("drags past 50 — the cost side of the greylisting trade-off.");
}
