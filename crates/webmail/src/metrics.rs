//! Metric names and collectors for the webmail crate.
//!
//! All `webmail.*` registry names live here (the O1 lint rule). A provider
//! experiment drives a [`SendingMta`] built from a [`WebmailProvider`]
//! profile; collection reads the sender's recorded attempt history, keyed
//! per provider — the raw material of Table III.

use crate::provider::WebmailProvider;
use spamward_mta::SendingMta;
use spamward_obs::Registry;

/// Providers measured in this run.
pub const PROVIDERS: &str = "webmail.providers";
/// Delivery attempts across all providers.
pub const ATTEMPTS: &str = "webmail.attempts";
/// Messages delivered across all providers.
pub const DELIVERED: &str = "webmail.delivered";
/// Name prefix for per-provider attempt counters.
pub const PREFIX_PROVIDER: &str = "webmail.provider";

/// Canonical metric-name segment for a provider: lowercase alphanumerics,
/// runs of anything else collapsed to `_` ("mail.ru" → `mail_ru`).
pub fn provider_slug(provider: &WebmailProvider) -> String {
    let mut slug = String::new();
    for c in provider.name.chars() {
        if c.is_ascii_alphanumeric() {
            slug.push(c.to_ascii_lowercase());
        } else if !slug.ends_with('_') && !slug.is_empty() {
            slug.push('_');
        }
    }
    slug.trim_end_matches('_').to_owned()
}

/// Exports one provider's finished run:
/// `webmail.provider.<slug>.attempts` / `.delivered` / `.distinct_ips`,
/// plus the cross-provider totals.
pub fn collect_provider(provider: &WebmailProvider, sender: &SendingMta, reg: &mut Registry) {
    let slug = provider_slug(provider);
    let attempts = sender.records().len() as u64;
    let delivered = sender.records().iter().filter(|r| r.delivered).count() as u64;
    reg.record_counter(PROVIDERS, 1);
    reg.record_counter(ATTEMPTS, attempts);
    reg.record_counter(DELIVERED, delivered);
    reg.record_counter(&format!("{PREFIX_PROVIDER}.{slug}.attempts"), attempts);
    reg.record_counter(&format!("{PREFIX_PROVIDER}.{slug}.delivered"), delivered);
    reg.record_counter(
        &format!("{PREFIX_PROVIDER}.{slug}.distinct_ips"),
        provider.distinct_ips as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_slugs_are_name_safe() {
        assert_eq!(provider_slug(&WebmailProvider::mail_ru()), "mail_ru");
        assert_eq!(provider_slug(&WebmailProvider::gmail()), "gmail_com");
    }

    #[test]
    fn collect_reads_the_sender_history() {
        let provider = WebmailProvider::gmail();
        let sender = provider.build_sender(std::net::Ipv4Addr::new(198, 51, 100, 1), 9);
        let mut reg = Registry::new();
        collect_provider(&provider, &sender, &mut reg);
        assert_eq!(reg.counter(PROVIDERS), Some(1));
        assert_eq!(reg.counter(ATTEMPTS), Some(0), "no campaign has run yet");
        assert_eq!(
            reg.counter("webmail.provider.gmail_com.distinct_ips"),
            Some(provider.distinct_ips as u64)
        );
    }
}
