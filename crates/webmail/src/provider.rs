//! The ten providers and their observed retry ladders.

use serde::{Deserialize, Serialize};
use spamward_mta::{IpSelection, MtaProfile, RetrySchedule, SendingMta};
use spamward_net::IpPool;
use spamward_sim::SimDuration;
use std::net::Ipv4Addr;

/// The greylisting threshold the paper used for the webmail experiment
/// (360 minutes).
pub const GREYLIST_EXPERIMENT_THRESHOLD: SimDuration = SimDuration::from_mins(360);

/// One webmail provider's outbound behaviour, as measured in Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebmailProvider {
    /// Provider domain as listed ("gmail.com", ...).
    pub name: String,
    /// Number of distinct source addresses observed. 1 ⇒ the table's
    /// "same IP" checkmark.
    pub distinct_ips: usize,
    /// The observed retry ladder (delays of retries 1..n since the first
    /// attempt).
    pub schedule: RetrySchedule,
    /// Whether the provider delivered within the paper's 6-hour window.
    pub delivered_in_paper: bool,
    /// Attempt count the paper reports in the 6-hour window.
    pub attempts_in_paper: u32,
}

fn ms(minutes: u64, seconds: u64) -> SimDuration {
    SimDuration::from_secs(minutes * 60 + seconds)
}

fn ladder(times: &[(u64, u64)], tail: Option<SimDuration>) -> RetrySchedule {
    RetrySchedule::Explicit {
        times: times.iter().map(|&(m, s)| ms(m, s)).collect(),
        tail_interval: tail,
    }
}

impl WebmailProvider {
    /// Whether every attempt came from one source address.
    pub fn same_ip(&self) -> bool {
        self.distinct_ips == 1
    }

    /// gmail.com — 7 addresses, 9 attempts, ~×1.7 backoff, delivered.
    pub fn gmail() -> Self {
        WebmailProvider {
            name: "gmail.com".into(),
            distinct_ips: 7,
            schedule: ladder(
                &[(6, 2), (29, 2), (56, 36), (98, 44), (162, 3), (229, 44), (309, 5), (434, 46)],
                Some(SimDuration::from_mins(126)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 9,
        }
    }

    /// yahoo.co.uk — 1 address, 9 attempts, doubling backoff, delivered.
    pub fn yahoo() -> Self {
        WebmailProvider {
            name: "yahoo.co.uk".into(),
            distinct_ips: 1,
            schedule: ladder(
                &[(2, 7), (5, 39), (12, 58), (27, 16), (55, 13), (109, 35), (216, 47), (430, 36)],
                Some(SimDuration::from_mins(214)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 9,
        }
    }

    /// hotmail.com — 1 address, 94 attempts (every 4 minutes), delivered.
    pub fn hotmail() -> Self {
        WebmailProvider {
            name: "hotmail.com".into(),
            distinct_ips: 1,
            schedule: ladder(
                &[(1, 1), (2, 3), (3, 4), (5, 6), (8, 7), (12, 8), (16, 10)],
                Some(SimDuration::from_mins(4)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 94,
        }
    }

    /// qq.com — 2 addresses, 12 attempts, delivered.
    pub fn qq() -> Self {
        WebmailProvider {
            name: "qq.com".into(),
            distinct_ips: 2,
            schedule: ladder(
                &[
                    (5, 5),
                    (5, 11),
                    (5, 17),
                    (6, 19),
                    (8, 22),
                    (12, 25),
                    (20, 29),
                    (52, 31),
                    (84, 35),
                    (144, 42),
                    (204, 56),
                ],
                Some(SimDuration::from_mins(120)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 12,
        }
    }

    /// mail.ru — 7 addresses, 13 attempts, roughly linear, delivered.
    pub fn mail_ru() -> Self {
        WebmailProvider {
            name: "mail.ru".into(),
            distinct_ips: 7,
            schedule: ladder(
                &[
                    (1, 18),
                    (19, 15),
                    (49, 14),
                    (79, 49),
                    (113, 20),
                    (154, 18),
                    (187, 53),
                    (235, 20),
                    (271, 3),
                    (305, 50),
                    (340, 38),
                    (373, 45),
                ],
                Some(SimDuration::from_mins(34)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 13,
        }
    }

    /// yandex.com — 1 address, 28 attempts (every 15:30 after warm-up),
    /// delivered.
    pub fn yandex() -> Self {
        WebmailProvider {
            name: "yandex.com".into(),
            distinct_ips: 1,
            // The paper rounds the steady-state spacing to "every 15:30";
            // the exact value that reproduces both the 28-attempt count and
            // the 369:21 delivery is 15:25 (925 s).
            schedule: ladder(
                &[(1, 5), (2, 58), (6, 53), (14, 55), (30, 28), (45, 41), (61, 1)],
                Some(ms(15, 25)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 28,
        }
    }

    /// mail.com — 2 addresses, 10 attempts, delivered.
    pub fn mail_com() -> Self {
        WebmailProvider {
            name: "mail.com".into(),
            distinct_ips: 2,
            schedule: ladder(
                &[
                    (5, 2),
                    (12, 37),
                    (23, 59),
                    (41, 3),
                    (66, 38),
                    (105, 1),
                    (162, 35),
                    (248, 56),
                    (378, 28),
                ],
                Some(SimDuration::from_mins(130)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 10,
        }
    }

    /// gmx.com — 3 addresses, 10 attempts, delivered (same software family
    /// as mail.com, nearly identical ladder).
    pub fn gmx() -> Self {
        WebmailProvider {
            name: "gmx.com".into(),
            distinct_ips: 3,
            schedule: ladder(
                &[
                    (5, 1),
                    (12, 33),
                    (23, 50),
                    (40, 46),
                    (66, 9),
                    (104, 14),
                    (161, 22),
                    (247, 4),
                    (375, 36),
                ],
                Some(SimDuration::from_mins(128)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 10,
        }
    }

    /// aol.com — 1 address, 5 attempts, **gives up after ~31 minutes** and
    /// never delivers against a 6-hour threshold.
    pub fn aol() -> Self {
        WebmailProvider {
            name: "aol.com".into(),
            distinct_ips: 1,
            schedule: ladder(&[(5, 32), (11, 32), (21, 32), (31, 32)], None),
            delivered_in_paper: false,
            attempts_in_paper: 5,
        }
    }

    /// india.com — 1 address, 10 attempts, linear then 70-minute spacing,
    /// delivered.
    pub fn india() -> Self {
        WebmailProvider {
            name: "india.com".into(),
            distinct_ips: 1,
            schedule: ladder(
                &[
                    (6, 21),
                    (16, 21),
                    (36, 21),
                    (76, 21),
                    (146, 22),
                    (216, 21),
                    (286, 21),
                    (356, 21),
                    (426, 21),
                ],
                Some(SimDuration::from_mins(70)),
            ),
            delivered_in_paper: true,
            attempts_in_paper: 10,
        }
    }

    /// All ten providers, in Table III row order.
    pub fn table_iii() -> Vec<WebmailProvider> {
        vec![
            Self::gmail(),
            Self::yahoo(),
            Self::hotmail(),
            Self::qq(),
            Self::mail_ru(),
            Self::yandex(),
            Self::mail_com(),
            Self::gmx(),
            Self::aol(),
            Self::india(),
        ]
    }

    /// Builds the provider's outbound tier as a [`SendingMta`]: a
    /// round-robin pool of `distinct_ips` addresses *within one /24* (the
    /// configuration consistent with Table III — Postgrey keys on /24, and
    /// the measured delivery times show the address rotation did not reset
    /// the greylist clock), using the provider's ladder with an
    /// effectively unlimited queue life (the ladder itself encodes
    /// give-up).
    ///
    /// See [`WebmailProvider::build_sender_spread`] for the
    /// pool-across-subnets ablation.
    pub fn build_sender(&self, pool_base: Ipv4Addr, seed: u64) -> SendingMta {
        let mut pool = IpPool::new(pool_base);
        let ips = pool.take(self.distinct_ips);
        self.sender_from_ips(ips, seed)
    }

    /// The ablation variant of [`WebmailProvider::build_sender`]: every
    /// pool address in a *different* /24, so each attempt from a new
    /// address restarts its own greylist clock.
    pub fn build_sender_spread(&self, pool_base: Ipv4Addr, seed: u64) -> SendingMta {
        let mut pool = IpPool::new(pool_base);
        let mut ips = Vec::with_capacity(self.distinct_ips);
        for _ in 0..self.distinct_ips {
            let ip = pool.next_ip();
            ips.push(ip);
            // Jump to the next /24.
            pool = IpPool::new(Ipv4Addr::from((u32::from(ip) | 0xFF) + 2));
        }
        self.sender_from_ips(ips, seed)
    }

    fn sender_from_ips(&self, ips: Vec<Ipv4Addr>, seed: u64) -> SendingMta {
        let profile = MtaProfile {
            name: self.name.clone(),
            schedule: self.schedule.clone(),
            max_queue_time: SimDuration::from_days(14),
        };
        SendingMta::new(&format!("mta.{}", self.name), ips, profile)
            .with_ip_selection(if self.distinct_ips > 1 {
                IpSelection::RoundRobin
            } else {
                IpSelection::Fixed
            })
            .with_seed(seed)
    }

    /// The retry delays within the paper's 6-hour observation window
    /// (renders the table's DELAYS column; delivery can add one attempt
    /// past the window edge, as gmail's 434:46 shows).
    pub fn delays_within_window(&self) -> Vec<SimDuration> {
        self.schedule.retries_within(SimDuration::from_mins(440))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_providers_in_order() {
        let all = WebmailProvider::table_iii();
        assert_eq!(all.len(), 10);
        let names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "gmail.com",
                "yahoo.co.uk",
                "hotmail.com",
                "qq.com",
                "mail.ru",
                "yandex.com",
                "mail.com",
                "gmx.com",
                "aol.com",
                "india.com"
            ]
        );
    }

    #[test]
    fn same_ip_column_matches_paper() {
        // ✓ for yahoo, hotmail, yandex, aol, india; ✗ for the rest.
        let expect: &[(&str, bool)] = &[
            ("gmail.com", false),
            ("yahoo.co.uk", true),
            ("hotmail.com", true),
            ("qq.com", false),
            ("mail.ru", false),
            ("yandex.com", true),
            ("mail.com", false),
            ("gmx.com", false),
            ("aol.com", true),
            ("india.com", true),
        ];
        for (p, want) in expect {
            let provider = WebmailProvider::table_iii().into_iter().find(|x| x.name == *p).unwrap();
            assert_eq!(provider.same_ip(), *want, "{p}");
        }
    }

    #[test]
    fn aol_gives_up_after_31_minutes() {
        let aol = WebmailProvider::aol();
        assert_eq!(aol.schedule.nth_retry_at(4), Some(SimDuration::from_secs(31 * 60 + 32)));
        assert_eq!(aol.schedule.nth_retry_at(5), None);
        assert!(!aol.delivered_in_paper);
    }

    #[test]
    fn hotmail_attempt_count_matches() {
        // 1 initial + retries up to just past the 6 h threshold ⇒ 94.
        let hotmail = WebmailProvider::hotmail();
        let retries = hotmail.schedule.retries_within(SimDuration::from_secs(362 * 60 + 11));
        assert_eq!(1 + retries.len() as u32, 94);
    }

    #[test]
    fn yandex_attempt_count_matches() {
        let yandex = WebmailProvider::yandex();
        let retries = yandex.schedule.retries_within(SimDuration::from_secs(369 * 60 + 21));
        assert_eq!(1 + retries.len() as u32, 28);
    }

    #[test]
    fn delivering_providers_cross_the_threshold() {
        // A provider delivers iff its ladder ever reaches the 6 h
        // threshold before giving up. Only aol (no tail, last retry at
        // 31:32) fails this — exactly the paper's DELIVER column.
        for p in WebmailProvider::table_iii() {
            let crosses = p
                .schedule
                .retries_within(SimDuration::from_days(2))
                .iter()
                .any(|&d| d >= GREYLIST_EXPERIMENT_THRESHOLD);
            assert_eq!(
                crosses, p.delivered_in_paper,
                "{}: ladder crossing 6 h must equal the paper's DELIVER column",
                p.name
            );
        }
    }

    #[test]
    fn build_sender_variants() {
        let gmail = WebmailProvider::gmail();
        let sender = gmail.build_sender(Ipv4Addr::new(64, 233, 160, 1), 1);
        assert_eq!(sender.fqdn(), "mta.gmail.com");
        assert_eq!(sender.profile().name, "gmail.com");
        let spread = gmail.build_sender_spread(Ipv4Addr::new(64, 233, 160, 1), 1);
        assert_eq!(spread.profile().name, "gmail.com");
    }

    #[test]
    fn ladders_match_the_papers_literal_delay_strings() {
        // Guard against transcription typos: the exact DELAYS cells of
        // Table III, parsed with the shared min:sec parser, must equal the
        // leading schedule entries.
        let published: &[(&str, &[&str])] = &[
            (
                "gmail.com",
                &["6:02", "29:02", "56:36", "98:44", "162:03", "229:44", "309:05", "434:46"],
            ),
            (
                "yahoo.co.uk",
                &["2:07", "5:39", "12:58", "27:16", "55:13", "109:35", "216:47", "430:36"],
            ),
            ("hotmail.com", &["1:01", "2:03", "3:04", "5:06", "8:07", "12:08", "16:10"]),
            (
                "qq.com",
                &[
                    "5:05", "5:11", "5:17", "6:19", "8:22", "12:25", "20:29", "52:31", "84:35",
                    "144:42", "204:56",
                ],
            ),
            (
                "mail.ru",
                &[
                    "1:18", "19:15", "49:14", "79:49", "113:20", "154:18", "187:53", "235:20",
                    "271:03", "305:50", "340:38", "373:45",
                ],
            ),
            ("yandex.com", &["1:05", "2:58", "6:53", "14:55", "30:28", "45:41", "61:01"]),
            (
                "mail.com",
                &[
                    "5:02", "12:37", "23:59", "41:03", "66:38", "105:01", "162:35", "248:56",
                    "378:28",
                ],
            ),
            (
                "gmx.com",
                &[
                    "5:01", "12:33", "23:50", "40:46", "66:09", "104:14", "161:22", "247:04",
                    "375:36",
                ],
            ),
            ("aol.com", &["5:32", "11:32", "21:32", "31:32"]),
            (
                "india.com",
                &[
                    "6:21", "16:21", "36:21", "76:21", "146:22", "216:21", "286:21", "356:21",
                    "426:21",
                ],
            ),
        ];
        for (name, delays) in published {
            let provider =
                WebmailProvider::table_iii().into_iter().find(|p| p.name == *name).unwrap();
            for (i, cell) in delays.iter().enumerate() {
                let expected = spamward_analysis::parse_min_sec(cell)
                    .unwrap_or_else(|| panic!("{name}: bad cell {cell}"));
                let got = provider.schedule.nth_retry_at(i as u32 + 1).unwrap();
                assert_eq!(got, expected, "{name} retry {}: {got} != {cell}", i + 1);
            }
        }
    }

    #[test]
    fn ladders_strictly_increase() {
        for p in WebmailProvider::table_iii() {
            let retries = p.delays_within_window();
            for w in retries.windows(2) {
                assert!(w[1] > w[0], "{}: ladder not increasing", p.name);
            }
        }
    }
}
