//! Retry-policy models of the ten webmail providers of Table III.
//!
//! The paper created accounts on the top ten webmail providers, sent mail
//! to a server greylisting at an "excessively large" six-hour threshold,
//! and recorded every delivery attempt: its timing, whether the same source
//! IP was reused, and whether the message eventually got through. Table III
//! *is* that measured policy; this crate transcribes each provider's
//! observed ladder into an executable [`WebmailProvider`] so the experiment
//! can be re-run (closing the loop: running the models against a 6-hour
//! greylist must regenerate the table).
//!
//! Notable shapes the models preserve:
//!
//! * **gmail** backs off roughly ×2 and needs only 9 attempts in 6 hours,
//!   from 7 distinct addresses.
//! * **hotmail** hammers every 4 minutes — 94 attempts — from one address.
//! * **aol** gives up after ~31 minutes, violating RFC 5321's 4–5 day
//!   give-up guidance, and consequently *loses the message*.
//! * five of ten providers rotate source addresses between attempts, the
//!   behaviour that makes client whitelists "fundamental" (§VI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
mod provider;

pub use provider::{WebmailProvider, GREYLIST_EXPERIMENT_THRESHOLD};
