//! CLI contract of the `repro` binary: failure paths must exit nonzero
//! with the typed error on stderr, and flag validation must stay stable.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn exhausted_budget_exits_one_with_typed_error_on_stderr() {
    let out = repro().args(["table2", "--budget", "1"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(1), "a failed experiment must exit 1");
    assert!(out.stdout.is_empty(), "no partial report on failure");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.starts_with("error: experiment table2: event budget exhausted"),
        "stderr must carry the typed HarnessError, got: {stderr:?}"
    );
    assert!(stderr.contains("engine events"), "error must state the event count: {stderr:?}");
}

#[test]
fn exhausted_budget_under_all_reports_first_failure_in_registry_order() {
    // With a one-event budget every world-driven experiment fails; the
    // CLI must surface the *first* one in registry order, exactly once.
    let out = repro().args(["all", "--budget", "1", "--jobs", "2"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "no partial output when any experiment fails");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert_eq!(stderr.lines().count(), 1, "exactly one error line: {stderr:?}");
    assert!(stderr.starts_with("error: experiment table2:"), "first failing id: {stderr:?}");
}

#[test]
fn generous_budget_changes_nothing() {
    let ok = repro().args(["table2", "--json"]).output().expect("repro runs");
    let budgeted =
        repro().args(["table2", "--json", "--budget", "100000000"]).output().expect("repro runs");
    assert_eq!(ok.status.code(), Some(0));
    assert_eq!(budgeted.status.code(), Some(0));
    assert_eq!(ok.stdout, budgeted.stdout, "an unexhausted budget must not perturb bytes");
}

#[test]
fn single_artifact_accepts_jobs_and_matches_serial_bytes() {
    let serial = repro().args(["resilience", "--json", "--metrics"]).output().expect("repro runs");
    let parallel = repro()
        .args(["resilience", "--json", "--metrics", "--jobs", "4"])
        .output()
        .expect("repro runs");
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    assert_eq!(serial.stdout, parallel.stdout, "--jobs must be byte-invariant");
}

#[test]
fn flag_validation_still_exits_two() {
    let out = repro().args(["table2", "--budget", "0"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "usage errors keep exit code 2");
    let out = repro().args(["--budget", "nope", "table2"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let out = repro().args(["nonsense-artifact"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn shards_flag_validation_exits_two() {
    let out = repro().args(["fig2", "--shards", "0"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "--shards 0 is a usage error");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("error: --shards needs at least one shard worker"), "{stderr:?}");

    let out = repro().args(["fig2", "--shards", "four"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "non-numeric --shards is a usage error");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("error: --shards needs a positive integer"), "{stderr:?}");

    let out = repro().args(["fig2", "--shards"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "valueless --shards is a usage error");
}

#[test]
fn shards_are_byte_invariant_on_a_sharded_artifact() {
    let serial = repro()
        .args(["fig2", "--json", "--metrics", "--shards", "1"])
        .output()
        .expect("repro runs");
    let sharded = repro()
        .args(["fig2", "--json", "--metrics", "--shards", "4"])
        .output()
        .expect("repro runs");
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(sharded.status.code(), Some(0));
    assert_eq!(serial.stdout, sharded.stdout, "--shards must be byte-invariant");
    let body = String::from_utf8(sharded.stdout).expect("utf-8 report");
    assert!(body.contains("sim.engine.shard.0.events"), "per-shard metrics must be present");
    assert!(body.contains("sim.engine.shard.7.events"), "all fixed shards must be recorded");
}
