//! CLI contract of the `repro` binary: failure paths must exit nonzero
//! with the typed error on stderr, and flag validation must stay stable.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn exhausted_budget_exits_one_with_typed_error_on_stderr() {
    let out = repro().args(["table2", "--budget", "1"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(1), "a failed experiment must exit 1");
    assert!(out.stdout.is_empty(), "no partial report on failure");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.starts_with("error: experiment table2: event budget exhausted"),
        "stderr must carry the typed HarnessError, got: {stderr:?}"
    );
    assert!(stderr.contains("engine events"), "error must state the event count: {stderr:?}");
}

#[test]
fn exhausted_budget_under_all_reports_first_failure_in_registry_order() {
    // With a one-event budget every world-driven experiment fails; the
    // CLI must surface the *first* one in registry order, exactly once.
    let out = repro().args(["all", "--budget", "1", "--jobs", "2"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "no partial output when any experiment fails");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert_eq!(stderr.lines().count(), 1, "exactly one error line: {stderr:?}");
    assert!(stderr.starts_with("error: experiment table2:"), "first failing id: {stderr:?}");
}

#[test]
fn generous_budget_changes_nothing() {
    let ok = repro().args(["table2", "--json"]).output().expect("repro runs");
    let budgeted =
        repro().args(["table2", "--json", "--budget", "100000000"]).output().expect("repro runs");
    assert_eq!(ok.status.code(), Some(0));
    assert_eq!(budgeted.status.code(), Some(0));
    assert_eq!(ok.stdout, budgeted.stdout, "an unexhausted budget must not perturb bytes");
}

#[test]
fn single_artifact_accepts_jobs_and_matches_serial_bytes() {
    let serial = repro().args(["resilience", "--json", "--metrics"]).output().expect("repro runs");
    let parallel = repro()
        .args(["resilience", "--json", "--metrics", "--jobs", "4"])
        .output()
        .expect("repro runs");
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    assert_eq!(serial.stdout, parallel.stdout, "--jobs must be byte-invariant");
}

#[test]
fn flag_validation_still_exits_two() {
    let out = repro().args(["table2", "--budget", "0"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "usage errors keep exit code 2");
    let out = repro().args(["--budget", "nope", "table2"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let out = repro().args(["nonsense-artifact"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn shards_flag_validation_exits_two() {
    let out = repro().args(["fig2", "--shards", "0"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "--shards 0 is a usage error");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("error: --shards needs at least one shard worker"), "{stderr:?}");

    let out = repro().args(["fig2", "--shards", "four"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "non-numeric --shards is a usage error");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("error: --shards needs a positive integer"), "{stderr:?}");

    let out = repro().args(["fig2", "--shards"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "valueless --shards is a usage error");
}

#[test]
fn trace_accepts_comma_separated_prefixes() {
    let both = repro().args(["table2", "--trace", "smtp,dns"]).output().expect("repro runs");
    assert_eq!(both.status.code(), Some(0));
    let stderr = String::from_utf8(both.stderr).expect("utf-8 stderr");
    assert!(stderr.lines().any(|l| l.contains("] smtp")), "smtp lines selected: {stderr:?}");
    assert!(stderr.lines().any(|l| l.contains("] dns")), "dns lines selected: {stderr:?}");
    // The union never selects fewer lines than either prefix alone.
    let smtp_only = repro().args(["table2", "--trace", "smtp"]).output().expect("repro runs");
    let smtp_lines = String::from_utf8(smtp_only.stderr).expect("utf-8 stderr").lines().count();
    assert!(stderr.lines().count() > smtp_lines, "comma union must add the dns stream");
}

#[test]
fn telemetry_flag_validation_exits_two() {
    // Missing values are usage errors.
    let out = repro().args(["table2", "--timeseries"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "valueless --timeseries is a usage error");
    let out = repro().args(["table2", "--timeline"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "valueless --timeline is a usage error");
    // --export only knows the OpenMetrics exposition.
    let out = repro().args(["table2", "--export", "prometheus"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "unknown --export format is a usage error");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("error: --export supports only \"openmetrics\""), "{stderr:?}");
    // The exposition replaces the body, so a second format is a conflict.
    let out =
        repro().args(["table2", "--export", "openmetrics", "--json"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "--export with --json is a usage error");
    // Telemetry exports are single-artifact.
    for flags in [
        &["all", "--timeseries", "/dev/null"][..],
        &["all", "--timeline", "/dev/null"][..],
        &["all", "--export", "openmetrics"][..],
        &["all", "--profile"][..],
    ] {
        let out = repro().args(flags).output().expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "{flags:?} must be a usage error");
    }
}

#[test]
fn export_openmetrics_prints_an_exposition() {
    let out = repro().args(["table2", "--export", "openmetrics"]).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(0));
    let body = String::from_utf8(out.stdout).expect("utf-8 exposition");
    assert!(body.starts_with("# TYPE "), "exposition starts with a TYPE line: {body:?}");
    assert!(body.ends_with("# EOF\n"), "exposition ends with the mandatory EOF");
    assert!(body.contains("sim_engine_events_total "), "engine counter family present");
}

#[test]
fn timeseries_and_timeline_exports_are_shard_invariant_files() {
    let dir = std::env::temp_dir();
    let stem = format!("repro-cli-{}", std::process::id());
    let path = |name: &str| dir.join(format!("{stem}-{name}")).display().to_string();

    let mut outputs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for shards in ["1", "4"] {
        let ts = path(&format!("ts-{shards}.csv"));
        let tl = path(&format!("tl-{shards}.json"));
        let out = repro()
            .args(["table2", "--timeseries", &ts, "--timeline", &tl, "--shards", shards])
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(0));
        let ts_bytes = std::fs::read(&ts).expect("timeseries file written");
        let tl_bytes = std::fs::read(&tl).expect("timeline file written");
        std::fs::remove_file(&ts).ok();
        std::fs::remove_file(&tl).ok();
        outputs.push((ts_bytes, tl_bytes));
    }
    assert_eq!(outputs[0].0, outputs[1].0, "--timeseries bytes must not depend on --shards");
    assert_eq!(outputs[0].1, outputs[1].1, "--timeline bytes must not depend on --shards");

    let ts = String::from_utf8(outputs[0].0.clone()).expect("utf-8 series CSV");
    assert!(ts.starts_with("series,t_us,value\n"), "pinned CSV header: {ts:?}");
    let tl = String::from_utf8(outputs[0].1.clone()).expect("utf-8 trace JSON");
    assert!(tl.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), "{tl:?}");
    assert!(tl.ends_with("]}\n"), "trace file ends with a newline: {tl:?}");
}

#[test]
fn profile_goes_to_stderr_and_leaves_stdout_canonical() {
    let plain = repro().args(["table2", "--json"]).output().expect("repro runs");
    let profiled = repro().args(["table2", "--json", "--profile"]).output().expect("repro runs");
    assert_eq!(profiled.status.code(), Some(0));
    assert_eq!(plain.stdout, profiled.stdout, "--profile must not perturb stdout bytes");
    let stderr = String::from_utf8(profiled.stderr).expect("utf-8 stderr");
    assert!(stderr.starts_with("-- profile [table2] --\n"), "{stderr:?}");
    assert!(stderr.contains("shard 0: "), "per-shard breakdown present: {stderr:?}");
    assert!(stderr.contains("episodes drained: "), "per-phase outcomes present: {stderr:?}");
    assert!(stderr.contains("wall-clock: "), "wall-clock confined to stderr: {stderr:?}");
}

#[test]
fn shards_are_byte_invariant_on_a_sharded_artifact() {
    let serial = repro()
        .args(["fig2", "--json", "--metrics", "--shards", "1"])
        .output()
        .expect("repro runs");
    let sharded = repro()
        .args(["fig2", "--json", "--metrics", "--shards", "4"])
        .output()
        .expect("repro runs");
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(sharded.status.code(), Some(0));
    assert_eq!(serial.stdout, sharded.stdout, "--shards must be byte-invariant");
    let body = String::from_utf8(sharded.stdout).expect("utf-8 report");
    assert!(body.contains("sim.engine.shard.0.events"), "per-shard metrics must be present");
    assert!(body.contains("sim.engine.shard.7.events"), "all fixed shards must be recorded");
}
