//! Wall-time budget for the two-pass lint over the full workspace.
//!
//! The linter runs on every CI push and locally as a tier-1 gate, so its
//! cost is a tax on every iteration. Baseline numbers are recorded in
//! `crates/bench/BENCH_lint.json`; re-run with
//! `cargo bench -p spamward-bench --bench lint` after touching
//! `crates/lint/src/{lexer,model,rules,rules_xfile}.rs`. CI builds this
//! bench (`cargo bench --no-run`) so the harness cannot rot.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    spamward_lint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench runs inside the workspace")
}

/// End-to-end lint of the real workspace: walk, read, build the model,
/// run per-file and cross-file rules, apply the allowlist.
fn bench_full_workspace(c: &mut Criterion) {
    let root = workspace_root();
    let files = spamward_lint::walk::workspace_files(&root).expect("walk").len() as u64;
    let mut g = c.benchmark_group("lint");
    g.sample_size(10);
    g.throughput(Throughput::Elements(files));
    g.bench_function("full_workspace", |b| {
        b.iter(|| {
            let report = spamward_lint::lint_workspace(&root).expect("lint runs");
            assert!(report.files_scanned > 50);
            report
        })
    });
    g.finish();
}

/// Pass-1 model construction alone (sources pre-loaded): the marginal
/// cost the semantic model added on top of the per-file scan.
fn bench_model_build(c: &mut Criterion) {
    let root = workspace_root();
    let sources: Vec<(String, String)> = spamward_lint::walk::workspace_files(&root)
        .expect("walk")
        .iter()
        .map(|rel| {
            let text = std::fs::read_to_string(root.join(rel)).expect("readable source");
            (spamward_lint::walk::rel_str(rel), text)
        })
        .collect();
    let mut g = c.benchmark_group("lint");
    g.throughput(Throughput::Elements(sources.len() as u64));
    g.bench_function("model_build", |b| {
        b.iter(|| {
            let model =
                spamward_lint::WorkspaceModel::from_sources(sources.clone(), Vec::new(), None);
            assert!(model.files.len() > 50);
            model
        })
    });
    g.finish();
}

/// Pass-2 cross-file rules alone against a pre-built model.
fn bench_xfile_rules(c: &mut Criterion) {
    let root = workspace_root();
    let sources: Vec<(String, String)> = spamward_lint::walk::workspace_files(&root)
        .expect("walk")
        .iter()
        .map(|rel| {
            let text = std::fs::read_to_string(root.join(rel)).expect("readable source");
            (spamward_lint::walk::rel_str(rel), text)
        })
        .collect();
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let model = spamward_lint::WorkspaceModel::from_sources(sources, Vec::new(), design);
    let mut g = c.benchmark_group("lint");
    g.bench_function("xfile_rules", |b| {
        b.iter(|| spamward_lint::rules_xfile::check_workspace(&model))
    });
    g.finish();
}

criterion_group!(benches, bench_full_workspace, bench_model_build, bench_xfile_rules);
criterion_main!(benches);
