//! Micro-benchmarks of the discrete-event engine — the single execution
//! substrate every world-driven experiment now runs on. Baseline numbers
//! are recorded in `crates/bench/BENCH_engine.json`; re-run with
//! `cargo bench -p spamward-bench --bench engine` after touching
//! `crates/sim/src/event.rs` or `actor.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spamward_sim::{Actor, ActorSim, SimDuration, SimTime, Simulation, Wake};

/// Drain throughput: how many scheduled events per second the engine
/// executes once the queue is primed (the dominant cost of every
/// world-driven experiment).
fn bench_drain_throughput(c: &mut Criterion) {
    const EVENTS: u64 = 10_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("drain_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(0u64);
                for i in 0..EVENTS {
                    sim.schedule_at(SimTime::from_secs(i), |ctx| *ctx.state += 1);
                }
                sim
            },
            |mut sim| {
                sim.run();
                assert_eq!(*sim.state(), EVENTS);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Cost of one schedule + pop round-trip through the heap, including the
/// FIFO tie-break bookkeeping — the per-event overhead an actor pays on
/// top of its own work.
fn bench_schedule_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("schedule_pop_single", |b| {
        b.iter_batched(
            || Simulation::new(0u64),
            |mut sim| {
                sim.schedule_at(SimTime::ZERO, |ctx| *ctx.state += 1);
                sim.run();
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

struct Countdown {
    remaining: u64,
}

impl Actor<u64> for Countdown {
    fn name(&self) -> &str {
        "bench.countdown"
    }

    fn wake(&mut self, _now: SimTime, state: &mut u64) -> Wake {
        *state += 1;
        if self.remaining == 0 {
            return Wake::Idle;
        }
        self.remaining -= 1;
        Wake::In(SimDuration::from_secs(1))
    }
}

/// Actor wake-up overhead: the closure-trampoline + per-actor accounting
/// the actor layer adds over raw scheduled events.
fn bench_actor_wakeups(c: &mut Criterion) {
    const WAKEUPS: u64 = 10_000;
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.throughput(Throughput::Elements(WAKEUPS));
    g.bench_function("actor_10k_wakeups", |b| {
        b.iter_batched(
            || {
                let mut sim = ActorSim::new(0u64);
                sim.add_actor(Countdown { remaining: WAKEUPS - 1 }, SimTime::ZERO);
                sim
            },
            |mut sim| {
                sim.run();
                assert_eq!(*sim.state(), WAKEUPS);
                sim
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(engine, bench_drain_throughput, bench_schedule_pop, bench_actor_wakeups);
criterion_main!(engine);
