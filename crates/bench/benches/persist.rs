//! Benchmarks of greylist durability: snapshot serialization and restore,
//! and write-ahead-log append and replay, at 10k and 100k triplets — the
//! costs a [`spamward_mta::CheckpointActor`] tick and a crash–restart
//! recovery pay. Baseline numbers are recorded in
//! `crates/bench/BENCH_persist.json`; re-run with
//! `cargo bench -p spamward-bench --bench persist` after touching
//! `crates/greylist/src/persist.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{EmailAddress, ReversePath};
use std::net::Ipv4Addr;

const DELAY: SimDuration = SimDuration::from_secs(300);
const SIZES: [u64; 2] = [10_000, 100_000];

fn engine() -> Greylist {
    Greylist::new(GreylistConfig::with_delay(DELAY).without_auto_whitelist())
}

fn envelope(i: u64) -> (Ipv4Addr, ReversePath, EmailAddress) {
    let ip = Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
    let sender: EmailAddress = format!("sender{i}@origin.example").parse().unwrap();
    let rcpt: EmailAddress = format!("user{}@victim.example", i % 64).parse().unwrap();
    (ip, ReversePath::Address(sender), rcpt)
}

/// An engine holding `n` matured triplets (two checks each: the defer
/// that creates the entry and the pass that matures it).
fn populated(n: u64, wal: bool) -> Greylist {
    let mut gl = engine();
    if wal {
        gl.enable_wal();
    }
    for i in 0..n {
        let (ip, sender, rcpt) = envelope(i);
        let first = SimTime::ZERO + SimDuration::from_secs(i);
        let _ = gl.check(first, ip, &sender, &rcpt);
        let _ = gl.check(first + DELAY + DELAY, ip, &sender, &rcpt);
    }
    gl
}

fn label(n: u64) -> String {
    format!("{}k", n / 1000)
}

/// Serializing a populated store — the cost of one checkpoint tick.
fn bench_snapshot_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist");
    g.sample_size(20);
    for n in SIZES {
        let gl = populated(n, false);
        assert_eq!(gl.store().len() as u64, n);
        g.throughput(Throughput::Elements(n));
        g.bench_function(&format!("snapshot_serialize_{}", label(n)), |b| {
            b.iter(|| gl.snapshot().len())
        });
    }
    g.finish();
}

/// Parsing a checkpoint back into a fresh engine — the restart path's
/// first half.
fn bench_snapshot_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist");
    g.sample_size(20);
    for n in SIZES {
        let text = populated(n, false).snapshot();
        g.throughput(Throughput::Elements(n));
        g.bench_function(&format!("snapshot_restore_{}", label(n)), |b| {
            b.iter(|| {
                let mut fresh = engine();
                fresh.restore(&text).unwrap();
                fresh.store().len()
            })
        });
    }
    g.finish();
}

/// The decision path with the WAL on versus off — what enabling
/// durability costs every check (10k triplets, two checks each).
fn bench_wal_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist");
    g.sample_size(20);
    let n = SIZES[0];
    g.throughput(Throughput::Elements(n * 2));
    g.bench_function("wal_append_10k", |b| b.iter(|| populated(n, true).wal().unwrap().records()));
    g.bench_function("wal_off_10k", |b| b.iter(|| populated(n, false).store().len()));
    g.finish();
}

/// Replaying a WAL tail over an empty engine — the restart path's second
/// half (each matured triplet logged two touch records).
fn bench_wal_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist");
    g.sample_size(20);
    for n in SIZES {
        let wal_text = populated(n, true).wal().unwrap().text().to_owned();
        g.throughput(Throughput::Elements(n * 2));
        g.bench_function(&format!("wal_replay_{}", label(n)), |b| {
            b.iter(|| {
                let mut fresh = engine();
                let outcome = fresh.replay_wal(&wal_text).unwrap();
                outcome.applied
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_snapshot_serialize,
    bench_snapshot_restore,
    bench_wal_append,
    bench_wal_replay
);
criterion_main!(benches);
