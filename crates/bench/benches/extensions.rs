//! Criterion benches for the extension experiments (everything in the
//! registry that is not a paper table or figure): the DESIGN.md ablation
//! sweeps, the §VI outlook matrix, dialect fingerprinting, cost
//! accounting, the long-term run, and the seed-variance sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use spamward_bench::quick_config;
use spamward_core::harness;

fn bench_extensions(c: &mut Criterion) {
    let config = quick_config();
    for exp in harness::registry().iter().filter(|e| {
        !e.id().starts_with("table") && !e.id().starts_with("fig") && e.id() != "summary"
    }) {
        let mut g = c.benchmark_group(exp.id());
        g.sample_size(10);
        g.bench_function("quick_report", |b| b.iter(|| exp.run(&config).unwrap()));
        g.finish();
    }
}

criterion_group!(extension_benches, bench_extensions);
criterion_main!(extension_benches);
