//! Micro-benchmarks of the substrates every experiment leans on: the SMTP
//! engine, the greylist hot path, MX resolution, and population synthesis.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spamward_dns::{Authority, Resolver, Zone};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_scanner::{Population, PopulationSpec};
use spamward_sim::{DetRng, SimTime};
use spamward_smtp::{
    exchange, AcceptAll, ClientSession, Dialect, Envelope, Message, ReversePath, ServerSession,
};
use std::net::Ipv4Addr;

fn bench_smtp_exchange(c: &mut Criterion) {
    let envelope = Envelope::builder()
        .client_ip(Ipv4Addr::new(203, 0, 113, 9))
        .mail_from(ReversePath::Address("a@relay.example".parse().unwrap()))
        .rcpt("u@foo.net".parse().unwrap())
        .build();
    let message = Message::builder().header("Subject", "bench").body(&"x".repeat(1_000)).build();

    let mut g = c.benchmark_group("smtp");
    g.throughput(Throughput::Elements(1));
    g.bench_function("full_exchange_1kb_body", |b| {
        b.iter_batched(
            || {
                (
                    ClientSession::new(
                        Dialect::compliant_mta("relay.example"),
                        envelope.clone(),
                        message.clone(),
                    ),
                    ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9)),
                )
            },
            |(mut client, mut server)| {
                let mut policy = AcceptAll;
                exchange(&mut client, &mut server, &mut policy, SimTime::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_greylist_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("greylist");
    g.throughput(Throughput::Elements(1));
    g.bench_function("check_cold_triplets", |b| {
        let mut gl = Greylist::new(GreylistConfig::default().without_auto_whitelist());
        let sender = ReversePath::Address("s@b.cc".parse().unwrap());
        let rcpt = "u@foo.net".parse().unwrap();
        let mut i: u32 = 0;
        b.iter(|| {
            i = i.wrapping_add(1);
            let ip = Ipv4Addr::from(0x0A00_0000 | i);
            gl.check(SimTime::from_secs(u64::from(i)), ip, &sender, &rcpt)
        })
    });
    g.bench_function("check_hot_triplet", |b| {
        let mut gl = Greylist::new(GreylistConfig::default().without_auto_whitelist());
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let sender = ReversePath::Address("s@b.cc".parse().unwrap());
        let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
        gl.check(SimTime::ZERO, ip, &sender, &rcpt);
        gl.check(SimTime::from_secs(301), ip, &sender, &rcpt);
        b.iter(|| gl.check(SimTime::from_secs(302), ip, &sender, &rcpt))
    });
    g.finish();
}

fn bench_dns_resolution(c: &mut Criterion) {
    let mut dns = Authority::new();
    for i in 0..1_000u32 {
        let name = format!("d{i}.example").parse().unwrap();
        dns.publish(Zone::single_mx(name, Ipv4Addr::from(0x0B00_0001 + i)));
    }
    let mut g = c.benchmark_group("dns");
    g.throughput(Throughput::Elements(1));
    g.bench_function("resolve_mx_cold_cache", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1_000;
            let mut resolver = Resolver::new();
            let name = format!("d{i}.example").parse().unwrap();
            resolver.resolve_mx(&mut dns, &name, SimTime::ZERO)
        })
    });
    g.bench_function("resolve_mx_warm_cache", |b| {
        let mut resolver = Resolver::new();
        let name = "d0.example".parse().unwrap();
        resolver.resolve_mx(&mut dns, &name, SimTime::ZERO).unwrap();
        b.iter(|| resolver.resolve_mx(&mut dns, &name, SimTime::ZERO))
    });
    g.finish();
}

fn bench_population_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("scanner");
    g.sample_size(10);
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("generate_5k_domain_population", |b| {
        b.iter(|| Population::generate(&PopulationSpec::fig2(5_000), 1))
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(1));
    g.bench_function("detrng_next_u64", |b| {
        let mut rng = DetRng::seed(1);
        b.iter(|| rng.below(1_000_000))
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_smtp_exchange,
    bench_greylist_check,
    bench_dns_resolution,
    bench_population_synthesis,
    bench_rng
);
criterion_main!(substrates);
