//! Benchmarks of the greylist decision engine across store backends:
//! the defer/pass hot path against the in-memory, partitioned and remote
//! stores, and a purge sweep over an aged store. Baseline numbers are
//! recorded in `crates/bench/BENCH_greylist.json`; re-run with
//! `cargo bench -p spamward-bench --bench greylist` after touching
//! `crates/greylist/src/{store,backend,policy}.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spamward_greylist::{Greylist, GreylistConfig, PartitionedStore, RemoteStore, StoreBackend};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{EmailAddress, ReversePath};
use std::net::Ipv4Addr;

const CLIENTS: u64 = 500;
const DELAY: SimDuration = SimDuration::from_secs(300);

fn backends() -> Vec<(&'static str, StoreBackend)> {
    vec![
        ("in_memory", StoreBackend::default()),
        ("partitioned4", StoreBackend::Partitioned(PartitionedStore::new(4))),
        ("remote_2ms", StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2)))),
    ]
}

fn engine(backend: StoreBackend) -> Greylist {
    Greylist::new(GreylistConfig::with_delay(DELAY).without_auto_whitelist()).with_backend(backend)
}

fn envelope(i: u64) -> (Ipv4Addr, ReversePath, EmailAddress) {
    let ip = Ipv4Addr::new(198, 18, (i / 251) as u8, (i % 251) as u8 + 1);
    let sender: EmailAddress = format!("sender{i}@origin.example").parse().unwrap();
    let rcpt: EmailAddress = format!("user{}@victim.example", i % 16).parse().unwrap();
    (ip, ReversePath::Address(sender), rcpt)
}

/// One defer + one matured pass per client: the two store round-trips
/// every successfully greylisted legitimate message costs.
fn defer_then_pass(backend: StoreBackend) -> u64 {
    let mut gl = engine(backend);
    let mut passed = 0u64;
    for i in 0..CLIENTS {
        let (ip, sender, rcpt) = envelope(i);
        let _ = gl.check(SimTime::ZERO, ip, &sender, &rcpt);
        let retry = SimTime::ZERO + DELAY + SimDuration::from_secs(i);
        if gl.check(retry, ip, &sender, &rcpt).is_pass() {
            passed += 1;
        }
    }
    passed
}

/// The decision hot path per backend — identical decisions by the store
/// contract, so the widths differ only in lookup cost.
fn bench_decision_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("greylist");
    g.throughput(Throughput::Elements(CLIENTS * 2));
    for (name, backend) in backends() {
        assert_eq!(defer_then_pass(backend.clone()), CLIENTS);
        g.bench_function(&format!("defer_then_pass_500_{name}"), |b| {
            b.iter(|| defer_then_pass(backend.clone()))
        });
    }
    g.finish();
}

/// A maintenance sweep over a store whose pending entries have all aged
/// out — the periodic `purge_expired` the worldsim maintenance actor runs.
fn bench_purge_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("greylist");
    g.throughput(Throughput::Elements(CLIENTS));
    for (name, backend) in backends() {
        let mut aged = engine(backend);
        for i in 0..CLIENTS {
            let (ip, sender, rcpt) = envelope(i);
            let _ = aged.check(SimTime::ZERO, ip, &sender, &rcpt);
        }
        let late = SimTime::ZERO + SimDuration::from_days(3);
        g.bench_function(&format!("purge_500_pending_{name}"), |b| {
            b.iter(|| {
                let mut gl = aged.clone();
                gl.maintain(late)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decision_path, bench_purge_sweep);
criterion_main!(benches);
