//! Benches for the ablation experiments DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use spamward_core::experiments::ablations;

fn bench_threshold_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_threshold");
    g.sample_size(10);
    g.bench_function("six_threshold_sweep", |b| b.iter(|| ablations::threshold_sweep(1)));
    g.finish();
}

fn bench_netmask(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_netmask");
    g.sample_size(10);
    g.bench_function("net24_vs_exact", |b| b.iter(|| ablations::netmask_ablation(1)));
    g.finish();
}

fn bench_second_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_second_campaign");
    g.sample_size(10);
    g.bench_function("slip_through", |b| b.iter(|| ablations::second_campaign(1)));
    g.finish();
}

fn bench_scan_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scan_rounds");
    g.sample_size(10);
    g.bench_function("rounds_1_to_3_on_2k_domains", |b| {
        b.iter(|| ablations::scan_rounds_ablation(1, 2_000, 3))
    });
    g.finish();
}

fn bench_store_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_store_cap");
    g.sample_size(10);
    g.bench_function("capped_store_under_flood", |b| {
        b.iter(|| ablations::store_cap_ablation(1, 100, 200))
    });
    g.finish();
}

criterion_group!(
    ablation_benches,
    bench_threshold_sweep,
    bench_netmask,
    bench_second_campaign,
    bench_scan_rounds,
    bench_store_cap
);
criterion_main!(ablation_benches);
