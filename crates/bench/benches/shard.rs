//! Benchmarks of the sharded execution path: scan throughput at several
//! executor widths and the streaming population against the materialized
//! one. Baseline numbers are recorded in `crates/bench/BENCH_shard.json`;
//! re-run with `cargo bench -p spamward-bench --bench shard` after
//! touching `crates/sim/src/shard.rs` or the scanner's streaming path.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spamward_scanner::{scan_shard, Population, PopulationSpec, PopulationStream};
use spamward_sim::shard::run_sharded;
use spamward_sim::ShardPlan;

const DOMAINS: usize = 2_000;
const SEED: u64 = 13;
const EPOCHS: [u64; 2] = [0, 1];
const KS: [u32; 3] = [15, 500, 1000];

/// One full sharded fig2 scan; returns the total scan events executed.
fn sharded_scan(workers: usize) -> u64 {
    let stream = PopulationStream::new(PopulationSpec::fig2(DOMAINS), SEED);
    let plan = ShardPlan::new(SEED, 8);
    let per_shard = run_sharded(&plan, workers, |s| scan_shard(&stream, &plan, s, &EPOCHS, &KS));
    per_shard.iter().map(|s| s.events).sum()
}

/// Scan throughput over the fixed 8-shard partition at 1/2/4 workers —
/// the events/s figure the shard executor buys, with identical output
/// bytes at every width.
fn bench_sharded_scan(c: &mut Criterion) {
    let events = sharded_scan(1);
    let mut g = c.benchmark_group("shard");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for workers in [1usize, 2, 4] {
        g.bench_function(&format!("scan_2k_domains_workers{workers}"), |b| {
            b.iter(|| sharded_scan(workers))
        });
    }
    g.finish();
}

/// Population build cost: streaming interned generation (pack every
/// domain, no world) vs materializing the whole Population (hosts, zones,
/// DNS authority, network).
fn bench_population_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    g.sample_size(10);
    g.throughput(Throughput::Elements(DOMAINS as u64));
    g.bench_function("population_stream_packed_2k", |b| {
        b.iter(|| {
            let stream = PopulationStream::new(PopulationSpec::fig2(DOMAINS), SEED);
            let mut acc = 0u64;
            for i in 0..DOMAINS as u64 {
                acc += u64::from(stream.packed(i).alexa_rank);
            }
            acc
        })
    });
    g.bench_function("population_materialized_2k", |b| {
        b.iter(|| Population::generate(&PopulationSpec::fig2(DOMAINS), SEED).domains.len())
    });
    g.finish();
}

criterion_group!(benches, bench_sharded_scan, bench_population_build);
criterion_main!(benches);
