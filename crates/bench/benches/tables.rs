//! One Criterion bench per paper *table* (plus the §VI summary), drawn
//! from the experiment registry.

use criterion::{criterion_group, criterion_main, Criterion};
use spamward_bench::quick_config;
use spamward_core::harness;

fn bench_tables(c: &mut Criterion) {
    let config = quick_config();
    for exp in
        harness::registry().iter().filter(|e| e.id().starts_with("table") || e.id() == "summary")
    {
        let mut g = c.benchmark_group(exp.id());
        g.sample_size(10);
        g.bench_function("quick_report", |b| b.iter(|| exp.run(&config).unwrap()));
        g.finish();
    }
}

criterion_group!(tables, bench_tables);
criterion_main!(tables);
