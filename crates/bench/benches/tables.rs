//! One Criterion bench per paper *table*.

use criterion::{criterion_group, criterion_main, Criterion};
use spamward_bench::{bench_efficacy_config, bench_webmail_config};
use spamward_core::experiments::{
    costs, dataset, dialects, efficacy, future_threats, mta_schedules, summary, webmail,
};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_dataset_inventory", |b| b.iter(dataset::run));
}

fn bench_table2_matrix(c: &mut Criterion) {
    let cfg = bench_efficacy_config();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("efficacy_matrix_11_samples", |b| b.iter(|| efficacy::run(&cfg)));
    g.finish();
}

fn bench_table3_webmail(c: &mut Criterion) {
    let cfg = bench_webmail_config();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("webmail_ten_providers_6h", |b| b.iter(|| webmail::run(&cfg)));
    g.finish();
}

fn bench_table4_schedules(c: &mut Criterion) {
    c.bench_function("table4_mta_schedules", |b| b.iter(mta_schedules::run));
}

fn bench_summary(c: &mut Criterion) {
    let cfg = bench_efficacy_config();
    let mut g = c.benchmark_group("summary");
    g.sample_size(10);
    g.bench_function("section_vi_summary", |b| b.iter(|| summary::run(&cfg)));
    g.finish();
}

fn bench_dialect_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("dialects");
    g.sample_size(10);
    g.bench_function("fingerprint_six_senders", |b| b.iter(dialects::run));
    g.finish();
}

fn bench_future_threats(c: &mut Criterion) {
    let cfg = future_threats::FutureThreatsConfig { recipients: 4, ..Default::default() };
    let mut g = c.benchmark_group("future_threats");
    g.sample_size(10);
    g.bench_function("threat_matrix_3x4", |b| b.iter(|| future_threats::run(&cfg)));
    g.finish();
}

fn bench_cost_accounting(c: &mut Criterion) {
    let cfg = costs::CostsConfig { messages: 60, ..Default::default() };
    let mut g = c.benchmark_group("costs");
    g.sample_size(10);
    g.bench_function("three_setups_60_msgs", |b| b.iter(|| costs::run(&cfg)));
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2_matrix,
    bench_table3_webmail,
    bench_table4_schedules,
    bench_summary,
    bench_dialect_classification,
    bench_future_threats,
    bench_cost_accounting
);
criterion_main!(tables);
