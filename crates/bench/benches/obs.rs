//! Micro-benchmarks of the observability layer: the registry recorders,
//! histogram observation, span enter/exit, registry merging, and — the
//! budget the layer is held to — a fully instrumented SMTP exchange next
//! to the bare protocol work it wraps. The instrumentation contract is
//! that collecting a session into a registry costs well under 5% of the
//! wire exchange it measures; compare `smtp_obs/bare_exchange` with
//! `smtp_obs/exchange_plus_collect` in the Criterion output to check it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spamward_obs::{Histogram, Registry, Span, SpanStats};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{
    exchange, AcceptAll, ClientSession, Dialect, Envelope, Message, ReversePath, ServerSession,
};
use std::net::Ipv4Addr;

// Bench-local metric names, bound once here (rule O1: literals never sit
// at the call site).
const BENCH_COUNTER: &str = "obs.bench.counter";
const BENCH_GAUGE: &str = "obs.bench.gauge";
const BENCH_HISTOGRAM: &str = "obs.bench.histogram";
const BENCH_SPAN: &str = "obs.bench.span";

fn bench_registry_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(1));

    g.bench_function("counter_record", |b| {
        let mut reg = Registry::new();
        b.iter(|| reg.record_counter(BENCH_COUNTER, 1));
    });

    g.bench_function("gauge_record", |b| {
        let mut reg = Registry::new();
        b.iter(|| reg.record_gauge(BENCH_GAUGE, 1));
    });

    g.bench_function("histogram_observe", |b| {
        let mut h = Histogram::new(&[1, 10, 100, 1_000, 10_000]);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 37) % 20_000;
            h.observe(v);
        });
    });

    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new(&[1, 10, 100, 1_000, 10_000]);
        for v in 0..64 {
            h.observe(v * 97);
        }
        let mut reg = Registry::new();
        b.iter(|| reg.record_histogram(BENCH_HISTOGRAM, &h));
    });

    g.bench_function("span_enter_exit", |b| {
        let mut stats = SpanStats::default();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let span = Span::enter(now);
            now += SimDuration::from_micros(3);
            stats.exit(span, now);
        });
    });

    g.bench_function("span_stats_record", |b| {
        let mut stats = SpanStats::default();
        for i in 0..64 {
            stats.record(SimDuration::from_micros(i));
        }
        let mut reg = Registry::new();
        b.iter(|| reg.record_span(BENCH_SPAN, &stats));
    });

    g.bench_function("registry_merge_32_entries", |b| {
        let mut src = Registry::new();
        for i in 0..32u64 {
            // Distinct names without call-site literals: reuse the bench
            // counter name with an index suffix.
            src.record_counter(&format!("{BENCH_COUNTER}.{i}"), i);
        }
        b.iter_batched(Registry::new, |mut dst| dst.merge(&src), BatchSize::SmallInput);
    });

    g.finish();
}

/// A compliant-MTA exchange against an accept-all server, with and without
/// draining the session counters into a registry afterwards. The delta is
/// the entire per-session observability cost (the hot path itself only
/// bumps plain integer fields).
fn bench_instrumented_exchange(c: &mut Criterion) {
    let envelope = Envelope::builder()
        .client_ip(Ipv4Addr::new(203, 0, 113, 9))
        .mail_from(ReversePath::Address("a@relay.example".parse().unwrap()))
        .rcpt("u@foo.net".parse().unwrap())
        .build();
    let message = Message::builder().header("Subject", "bench").body(&"x".repeat(1_000)).build();
    let sessions = || {
        (
            ClientSession::new(
                Dialect::compliant_mta("relay.example"),
                envelope.clone(),
                message.clone(),
            ),
            ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9)),
        )
    };

    let mut g = c.benchmark_group("smtp_obs");
    g.throughput(Throughput::Elements(1));

    g.bench_function("bare_exchange", |b| {
        b.iter_batched(
            sessions,
            |(mut client, mut server)| {
                exchange(&mut client, &mut server, &mut AcceptAll, SimTime::ZERO)
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("exchange_plus_collect", |b| {
        let mut reg = Registry::new();
        b.iter_batched(
            sessions,
            |(mut client, mut server)| {
                let out = exchange(&mut client, &mut server, &mut AcceptAll, SimTime::ZERO);
                spamward_smtp::metrics::collect(server.metrics(), &mut reg);
                out
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group!(obs_benches, bench_registry_primitives, bench_instrumented_exchange);
criterion_main!(obs_benches);
