//! Micro-benchmarks of the observability layer: the registry recorders,
//! histogram observation, span enter/exit, registry merging, and — the
//! budget the layer is held to — a fully instrumented SMTP exchange next
//! to the bare protocol work it wraps. The instrumentation contract is
//! that collecting a session into a registry costs well under 5% of the
//! wire exchange it measures; compare `smtp_obs/bare_exchange` with
//! `smtp_obs/exchange_plus_collect` in the Criterion output to check it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // not protocol-path code
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spamward_obs::{to_openmetrics, Histogram, Registry, Span, SpanStats, TimeSeries, Timeline};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{
    exchange, AcceptAll, ClientSession, Dialect, Envelope, Message, ReversePath, ServerSession,
};
use std::net::Ipv4Addr;

// Bench-local metric names, bound once here (rule O1: literals never sit
// at the call site).
const BENCH_COUNTER: &str = "obs.bench.counter";
const BENCH_GAUGE: &str = "obs.bench.gauge";
const BENCH_HISTOGRAM: &str = "obs.bench.histogram";
const BENCH_SPAN: &str = "obs.bench.span";
const BENCH_SERIES: &str = "obs.bench.series";
const BENCH_TIMELINE_EVENT: &str = "obs.bench.timeline.event";

fn bench_registry_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(1));

    g.bench_function("counter_record", |b| {
        let mut reg = Registry::new();
        b.iter(|| reg.record_counter(BENCH_COUNTER, 1));
    });

    g.bench_function("gauge_record", |b| {
        let mut reg = Registry::new();
        b.iter(|| reg.record_gauge(BENCH_GAUGE, 1));
    });

    g.bench_function("histogram_observe", |b| {
        let mut h = Histogram::new(&[1, 10, 100, 1_000, 10_000]);
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 37) % 20_000;
            h.observe(v);
        });
    });

    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new(&[1, 10, 100, 1_000, 10_000]);
        for v in 0..64 {
            h.observe(v * 97);
        }
        let mut reg = Registry::new();
        b.iter(|| reg.record_histogram(BENCH_HISTOGRAM, &h));
    });

    g.bench_function("span_enter_exit", |b| {
        let mut stats = SpanStats::default();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let span = Span::enter(now);
            now += SimDuration::from_micros(3);
            stats.exit(span, now);
        });
    });

    g.bench_function("span_stats_record", |b| {
        let mut stats = SpanStats::default();
        for i in 0..64 {
            stats.record(SimDuration::from_micros(i));
        }
        let mut reg = Registry::new();
        b.iter(|| reg.record_span(BENCH_SPAN, &stats));
    });

    g.bench_function("registry_merge_32_entries", |b| {
        let mut src = Registry::new();
        for i in 0..32u64 {
            // Distinct names without call-site literals: reuse the bench
            // counter name with an index suffix.
            src.record_counter(&format!("{BENCH_COUNTER}.{i}"), i);
        }
        b.iter_batched(Registry::new, |mut dst| dst.merge(&src), BatchSize::SmallInput);
    });

    g.finish();
}

/// The virtual-time telemetry layer: sampling into a time-series, the
/// timeline flight recorder, and the deterministic renderings the CLI
/// exports (`--timeseries`, `--timeline`, `--export openmetrics`).
fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1));

    g.bench_function("timeseries_record_point", |b| {
        let mut series = TimeSeries::new();
        let mut tick = 0u64;
        b.iter(|| {
            tick += 60;
            series.record_point(BENCH_SERIES, SimTime::from_secs(tick % 86_400), 1);
        });
    });

    g.bench_function("timeline_record_event", |b| {
        let mut timeline = Timeline::with_capacity(4_096);
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            timeline.record_event(
                BENCH_TIMELINE_EVENT,
                SimTime::from_secs(tick % 86_400),
                "bench-track",
                String::new(),
            );
        });
    });

    g.bench_function("timeseries_to_csv_1440_points", |b| {
        let mut series = TimeSeries::new();
        for tick in 0..1_440u64 {
            series.record_point(BENCH_SERIES, SimTime::from_secs(tick * 60), tick as i64);
        }
        b.iter(|| series.to_csv());
    });

    g.bench_function("openmetrics_export_32_metrics", |b| {
        let mut reg = Registry::new();
        let mut h = Histogram::new(&[1, 10, 100, 1_000, 10_000]);
        for v in 0..64 {
            h.observe(v * 97);
        }
        for i in 0..32u64 {
            reg.record_counter(&format!("{BENCH_COUNTER}.{i}"), i);
        }
        reg.record_histogram(BENCH_HISTOGRAM, &h);
        b.iter(|| to_openmetrics(&reg));
    });

    g.finish();
}

/// A compliant-MTA exchange against an accept-all server, with and without
/// draining the session counters into a registry afterwards. The delta is
/// the entire per-session observability cost (the hot path itself only
/// bumps plain integer fields).
fn bench_instrumented_exchange(c: &mut Criterion) {
    let envelope = Envelope::builder()
        .client_ip(Ipv4Addr::new(203, 0, 113, 9))
        .mail_from(ReversePath::Address("a@relay.example".parse().unwrap()))
        .rcpt("u@foo.net".parse().unwrap())
        .build();
    let message = Message::builder().header("Subject", "bench").body(&"x".repeat(1_000)).build();
    let sessions = || {
        (
            ClientSession::new(
                Dialect::compliant_mta("relay.example"),
                envelope.clone(),
                message.clone(),
            ),
            ServerSession::new("mx.foo.net", Ipv4Addr::new(203, 0, 113, 9)),
        )
    };

    let mut g = c.benchmark_group("smtp_obs");
    g.throughput(Throughput::Elements(1));

    g.bench_function("bare_exchange", |b| {
        b.iter_batched(
            sessions,
            |(mut client, mut server)| {
                exchange(&mut client, &mut server, &mut AcceptAll, SimTime::ZERO)
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("exchange_plus_collect", |b| {
        let mut reg = Registry::new();
        b.iter_batched(
            sessions,
            |(mut client, mut server)| {
                let out = exchange(&mut client, &mut server, &mut AcceptAll, SimTime::ZERO);
                spamward_smtp::metrics::collect(server.metrics(), &mut reg);
                out
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group!(
    obs_benches,
    bench_registry_primitives,
    bench_telemetry,
    bench_instrumented_exchange
);
criterion_main!(obs_benches);
