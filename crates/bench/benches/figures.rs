//! One Criterion bench per paper *figure*.

use criterion::{criterion_group, criterion_main, Criterion};
use spamward_bench::{bench_adoption_config, bench_deployment_config, bench_kelihos_config};
use spamward_core::experiments::{deployment, kelihos, nolisting_adoption};

fn bench_fig2_pipeline(c: &mut Criterion) {
    let cfg = bench_adoption_config();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("adoption_survey_4k_domains", |b| b.iter(|| nolisting_adoption::run(&cfg)));
    g.finish();
}

fn bench_fig3_fig4_kelihos(c: &mut Criterion) {
    let cfg = bench_kelihos_config();
    let mut g = c.benchmark_group("fig3_fig4");
    g.sample_size(10);
    // One call produces both figures (three threshold runs + control).
    g.bench_function("kelihos_three_thresholds", |b| b.iter(|| kelihos::run(&cfg)));
    g.finish();
}

fn bench_fig5_deployment(c: &mut Criterion) {
    let cfg = bench_deployment_config();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("deployment_replay_300_messages", |b| b.iter(|| deployment::run(&cfg)));
    g.finish();
}

criterion_group!(figures, bench_fig2_pipeline, bench_fig3_fig4_kelihos, bench_fig5_deployment);
criterion_main!(figures);
