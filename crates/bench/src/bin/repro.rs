//! Regenerates every table and figure of the paper, driven by the
//! experiment registry in [`spamward_core::harness`].
//!
//! ```sh
//! cargo run --release -p spamward-bench --bin repro -- --list
//! cargo run --release -p spamward-bench --bin repro -- table3
//! cargo run --release -p spamward-bench --bin repro -- fig3 --csv
//! cargo run --release -p spamward-bench --bin repro -- all --jobs 4
//! cargo run --release -p spamward-bench --bin repro -- all --json --metrics
//! cargo run --release -p spamward-bench --bin repro -- table2 --trace smtp
//! ```
//!
//! `all --jobs N` fans the registry across a worker pool; because every
//! experiment is a pure function of its [`HarnessConfig`] and each report
//! is rendered independently before being printed in registry order, the
//! bytes are identical to a serial run. `--metrics` appends the full
//! metric dump to text/CSV reports (JSON always embeds it); `--trace
//! PREFIXES` turns event tracing on and prints the trace lines matching
//! any of the comma-separated category prefixes to stderr, leaving stdout
//! untouched.
//!
//! Telemetry exports (single artifact only, all deterministic): `--timeseries
//! FILE` samples counters in virtual time and writes the series CSV,
//! `--timeline FILE` writes per-message lifecycles as Chrome trace-event
//! JSON (open in Perfetto), `--export openmetrics` prints the metric
//! registry as an OpenMetrics exposition instead of a report, and
//! `--profile` prints a per-shard / per-actor breakdown plus wall-clock
//! to stderr.

use spamward_core::harness::{self, HarnessConfig, Scale, TelemetryConfig};
use spamward_core::run_seeds;
use spamward_obs::MetricValue;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

fn usage_text() -> String {
    let ids: Vec<&str> = harness::registry().iter().map(|e| e.id()).collect();
    format!(
        "usage: repro <artifact> [--csv | --json] [--seed N] [--jobs N] [--shards N] [--metrics] [--trace PREFIXES]\n\
         \x20      repro <artifact> [--timeseries FILE] [--timeline FILE] [--export openmetrics] [--profile]\n\
         \x20      repro all [--csv | --json] [--seed N] [--jobs N] [--shards N] [--metrics] [--trace PREFIXES]\n\
         \x20      repro --list\n\
         \n\
         artifacts: {} all\n\
         \n\
         --list          print the experiment registry and exit\n\
         --csv           print the report(s) in canonical CSV instead of text\n\
         --json          print the report(s) in canonical JSON instead of text\n\
         --seed N        override the default seed of seedable artifacts\n\
         --jobs N        run across N worker threads (byte-identical to serial)\n\
         --shards N      run sharded experiments N shards at a time; their\n\
         \x20               partition is fixed, so output bytes are identical\n\
         \x20               for every N\n\
         --budget N      cap each experiment at N engine events; an exhausted\n\
         \x20               budget is a typed failure (exit 1), never a\n\
         \x20               truncated report\n\
         --metrics       append the full metric dump to text/CSV reports\n\
         \x20               (JSON always embeds the metrics section)\n\
         --trace PREFIXES  run with event tracing and print trace lines whose\n\
         \x20               dotted category starts with any of the\n\
         \x20               comma-separated prefixes to stderr (\"\" matches\n\
         \x20               every category)\n\
         --timeseries FILE  sample telemetry once per virtual minute and\n\
         \x20               write the series CSV to FILE (single artifact;\n\
         \x20               bytes are invariant under --jobs/--shards)\n\
         --timeline FILE  record per-message lifecycle events and write\n\
         \x20               Chrome trace-event JSON to FILE (single\n\
         \x20               artifact; open in Perfetto)\n\
         --export openmetrics  print the metric registry as an OpenMetrics\n\
         \x20               exposition instead of a report (single artifact)\n\
         --profile       print a per-shard / per-actor virtual-time\n\
         \x20               breakdown plus wall-clock to stderr (single\n\
         \x20               artifact; stdout is untouched)",
        ids.join(" ")
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage_text());
    std::process::exit(2);
}

fn render(report: &harness::Report, format: Format, metrics: bool) -> String {
    match format {
        Format::Text if metrics => report.to_text_with_metrics(),
        Format::Text => report.to_text(),
        Format::Csv if metrics => report.to_csv_with_metrics(),
        Format::Csv => report.to_csv(),
        // JSON always embeds the canonical metrics section.
        Format::Json => report.to_json(),
    }
}

/// True when a rendered trace line's dotted category starts with any of
/// the comma-separated `prefixes` (so `--trace smtp,dns` selects both
/// streams). Lines render as `[<time>] <category>: <detail>`.
fn trace_line_matches(line: &str, prefixes: &str) -> bool {
    line.split_once("] ")
        .and_then(|(_, rest)| rest.split_once(": "))
        .is_some_and(|(category, _)| prefixes.split(',').any(|p| category.starts_with(p)))
}

/// Writes a telemetry export, failing loudly: a requested export that
/// cannot be written is an error, never a silently missing file.
fn write_export(path: &str, what: &str, bytes: &str) {
    if let Err(err) = std::fs::write(path, bytes) {
        eprintln!("error: cannot write {what} to {path:?}: {err}");
        std::process::exit(1);
    }
}

/// Renders the `--profile` stderr block: per-shard engine event counts,
/// per-actor episode histograms and episode outcomes, all in virtual
/// time. The caller appends the wall-clock line — the only part of the
/// breakdown that is not a pure function of (seed, config).
fn profile_text(report: &harness::Report) -> String {
    use std::fmt::Write as _;
    let mut out = format!("-- profile [{}] --\n", report.id());
    let metrics = report.metrics();
    for (name, value) in metrics.iter() {
        if let (Some(rest), MetricValue::Counter(events)) =
            (name.strip_prefix(spamward_mta::metrics::ENGINE_SHARD_PREFIX), value)
        {
            let shard = rest.strip_suffix(".events").unwrap_or(rest);
            let _ = writeln!(out, "shard {shard}: {events} engine events");
        }
    }
    for (name, value) in metrics.iter() {
        if let (Some(actor), MetricValue::Histogram(h)) =
            (name.strip_prefix(spamward_mta::metrics::ENGINE_EPISODE_EVENTS_PREFIX), value)
        {
            let _ = writeln!(
                out,
                "actor {actor}: {} episode(s), {} engine event(s)",
                h.count(),
                h.sum()
            );
        }
    }
    for (phase, metric) in [
        ("drained", spamward_mta::metrics::ENGINE_OUTCOME_DRAINED),
        ("horizon reached", spamward_mta::metrics::ENGINE_OUTCOME_HORIZON),
        ("budget exhausted", spamward_mta::metrics::ENGINE_OUTCOME_BUDGET_EXHAUSTED),
        ("stopped", spamward_mta::metrics::ENGINE_OUTCOME_STOPPED),
    ] {
        if let Some(n) = metrics.counter(metric) {
            let _ = writeln!(out, "episodes {phase}: {n}");
        }
    }
    out
}

/// Joins per-experiment renderings into the final output: a JSON array for
/// `--json`, blank-line-separated blocks otherwise.
fn join_reports(bodies: &[String], format: Format) -> String {
    match format {
        Format::Json => format!("[{}]\n", bodies.join(",")),
        Format::Text | Format::Csv => bodies.join("\n"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact: Option<String> = None;
    let mut list = false;
    let mut csv = false;
    let mut json = false;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut budget: Option<u64> = None;
    let mut metrics = false;
    let mut trace: Option<String> = None;
    let mut timeseries: Option<String> = None;
    let mut timeline: Option<String> = None;
    let mut export = false;
    let mut profile = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--csv" => csv = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--profile" => profile = true,
            "--trace" => {
                let value =
                    it.next().unwrap_or_else(|| fail("--trace needs a category prefix value"));
                trace = Some(value.to_owned());
            }
            "--timeseries" => {
                let value = it.next().unwrap_or_else(|| fail("--timeseries needs a file path"));
                timeseries = Some(value.to_owned());
            }
            "--timeline" => {
                let value = it.next().unwrap_or_else(|| fail("--timeline needs a file path"));
                timeline = Some(value.to_owned());
            }
            "--export" => {
                let value = it.next().unwrap_or_else(|| fail("--export needs a format value"));
                if value != "openmetrics" {
                    fail(&format!("--export supports only \"openmetrics\", got {value:?}"));
                }
                export = true;
            }
            "--seed" => {
                let value = it.next().unwrap_or_else(|| fail("--seed needs a value"));
                seed = Some(value.parse().unwrap_or_else(|_| {
                    fail(&format!("--seed needs an unsigned integer, got {value:?}"))
                }));
            }
            "--jobs" => {
                let value = it.next().unwrap_or_else(|| fail("--jobs needs a value"));
                let n: usize = value.parse().unwrap_or_else(|_| {
                    fail(&format!("--jobs needs a positive integer, got {value:?}"))
                });
                if n == 0 {
                    fail("--jobs needs at least one worker");
                }
                jobs = Some(n);
            }
            "--shards" => {
                let value = it.next().unwrap_or_else(|| fail("--shards needs a value"));
                let n: usize = value.parse().unwrap_or_else(|_| {
                    fail(&format!("--shards needs a positive integer, got {value:?}"))
                });
                if n == 0 {
                    fail("--shards needs at least one shard worker");
                }
                shards = Some(n);
            }
            "--budget" => {
                let value = it.next().unwrap_or_else(|| fail("--budget needs a value"));
                let n: u64 = value.parse().unwrap_or_else(|_| {
                    fail(&format!("--budget needs a positive integer, got {value:?}"))
                });
                if n == 0 {
                    fail("--budget needs at least one engine event");
                }
                budget = Some(n);
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag {flag:?}")),
            name => {
                if let Some(first) = &artifact {
                    fail(&format!("unexpected extra argument {name:?} after {first:?}"));
                }
                artifact = Some(name.to_owned());
            }
        }
    }

    if list {
        if artifact.is_some()
            || seed.is_some()
            || jobs.is_some()
            || shards.is_some()
            || budget.is_some()
            || csv
            || json
            || metrics
            || trace.is_some()
            || timeseries.is_some()
            || timeline.is_some()
            || export
            || profile
        {
            fail("--list takes no other arguments");
        }
        print!("{}", harness::list_text());
        return;
    }
    if csv && json {
        fail("choose one of --csv / --json");
    }
    if export && (csv || json) {
        fail("--export openmetrics replaces the report body; drop --csv / --json");
    }
    let format = if json {
        Format::Json
    } else if csv {
        Format::Csv
    } else {
        Format::Text
    };
    let Some(artifact) = artifact else { fail("missing artifact") };
    if artifact == "all" && (timeseries.is_some() || timeline.is_some() || export || profile) {
        fail(
            "--timeseries / --timeline / --export / --profile need a single artifact, not \"all\"",
        );
    }
    let config = HarnessConfig {
        seed,
        scale: Scale::Paper,
        trace: trace.is_some(),
        event_budget: budget,
        shards: shards.unwrap_or(0),
        telemetry: TelemetryConfig {
            sample_interval: timeseries.is_some().then_some(harness::DEFAULT_SAMPLE_INTERVAL),
            timeline: timeline.is_some(),
        },
    };

    // Each worker returns (rendered report, filtered trace lines) or the
    // experiment's typed error; stdout and stderr are both emitted in
    // registry order after every run finishes, so the bytes are invariant
    // under --jobs and a failure never interleaves with partial output.
    let run_one = |exp: &dyn harness::Experiment| -> Result<(String, Vec<String>), String> {
        let report = exp.run(&config).map_err(|err| err.to_string())?;
        let trace_lines = match &trace {
            Some(prefix) => report
                .trace_lines()
                .iter()
                .filter(|line| trace_line_matches(line, prefix))
                .cloned()
                .collect(),
            None => Vec::new(),
        };
        Ok((render(&report, format, metrics), trace_lines))
    };

    // The first failure in registry order goes to stderr and the exit code
    // is 1; reports print only when *every* experiment succeeded.
    let check = |runs: Vec<Result<(String, Vec<String>), String>>| -> Vec<(String, Vec<String>)> {
        if let Some(err) = runs.iter().find_map(|r| r.as_ref().err()) {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
        runs.into_iter().map(|r| r.expect("errors handled above")).collect()
    };

    if artifact == "all" {
        let indices: Vec<u64> = (0..harness::registry().len() as u64).collect();
        let runs =
            run_seeds(&indices, jobs.unwrap_or(1), |i| run_one(harness::registry()[i as usize]));
        let (bodies, traces): (Vec<String>, Vec<Vec<String>>) =
            check(runs.into_iter().map(|r| r.output).collect()).into_iter().unzip();
        print!("{}", join_reports(&bodies, format));
        for line in traces.iter().flatten() {
            eprintln!("{line}");
        }
    } else {
        let Some(exp) = harness::find(&artifact) else {
            fail(&format!("unknown artifact {artifact:?}"));
        };
        if seed.is_some() && !exp.seedable() {
            fail(&format!(
                "artifact {artifact:?} is not seedable; its output is fixed catalogue data"
            ));
        }
        // --jobs is accepted here too (the CI chaos smoke compares serial
        // vs --jobs bytes on one artifact); a single run has nothing to
        // parallelize. The single-artifact path keeps the report itself so
        // the telemetry exports can read it after rendering.
        // The sanctioned host-clock boundary (lint rule D1): wall time is
        // --profile stderr diagnostics only, never part of the outputs.
        let wall = spamward_sim::wall::WallClock::new();
        let report = match exp.run(&config) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(1);
            }
        };
        let elapsed = spamward_sim::wall::Clock::now(&wall);
        let trace_lines: Vec<&String> = match &trace {
            Some(prefixes) => report
                .trace_lines()
                .iter()
                .filter(|line| trace_line_matches(line, prefixes))
                .collect(),
            None => Vec::new(),
        };
        if let Some(path) = &timeseries {
            write_export(path, "timeseries CSV", &report.timeseries().to_csv());
        }
        if let Some(path) = &timeline {
            let mut body = report.timeline().to_chrome_trace();
            body.push('\n');
            write_export(path, "timeline trace", &body);
        }
        if export {
            // The OpenMetrics exposition replaces the report body; its
            // rendering already ends with the mandatory `# EOF` line.
            print!("{}", spamward_obs::to_openmetrics(report.metrics()));
        } else {
            let body = render(&report, format, metrics);
            if format == Format::Json {
                println!("{body}");
            } else {
                print!("{body}");
            }
        }
        for line in &trace_lines {
            eprintln!("{line}");
        }
        if profile {
            eprint!("{}", profile_text(&report));
            eprintln!("wall-clock: {:.3}s", elapsed.as_micros() as f64 / 1e6);
        }
    }
}
