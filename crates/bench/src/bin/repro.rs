//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p spamward-bench --bin repro -- all
//! cargo run --release -p spamward-bench --bin repro -- table3
//! cargo run --release -p spamward-bench --bin repro -- fig3 --csv
//! ```

use spamward_analysis::Series;
use spamward_core::experiments::{
    ablations, costs, dataset, deployment, dialects, efficacy, future_threats, kelihos, longterm,
    mta_schedules, nolisting_adoption, summary, variance, webmail,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro <artifact> [--csv] [--seed N]\n\
         artifacts: table1 table2 table3 table4 fig2 fig3 fig4 fig5 summary ablations\n                    future dialects variance costs longterm all\n\
         --csv     additionally print figure series as CSV\n\
         --seed N  override the default seed of seedable artifacts"
    );
    std::process::exit(2);
}

/// Reads `--seed N` from the argument list, if present.
fn seed_arg(args: &[String]) -> Option<u64> {
    let pos = args.iter().position(|a| a == "--seed")?;
    args.get(pos + 1)?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(artifact) = args.first() else { usage() };
    let csv = args.iter().any(|a| a == "--csv");
    let seed = seed_arg(&args);

    let run_one = |name: &str| match name {
        "table1" => println!("{}", dataset::run()),
        "table2" => {
            let r = efficacy::run(&efficacy::EfficacyConfig::default());
            println!("{r}");
        }
        "table3" => {
            let r = webmail::run(&webmail::WebmailConfig::default());
            println!("{r}");
        }
        "table4" => println!("{}", mta_schedules::run()),
        "fig2" => {
            let r = nolisting_adoption::run(&nolisting_adoption::AdoptionConfig::default());
            println!("{r}");
        }
        "fig3" | "fig4" => {
            let mut cfg = kelihos::KelihosConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            let r = kelihos::run(&cfg);
            println!("{r}");
            if name == "fig3" {
                println!("CDF of the 300 s run (x = seconds since first attempt):");
                print!("{}", spamward_analysis::plot::ascii_cdf(&r.default.cdf, 60, 10));
            } else {
                let mut hist = spamward_analysis::Histogram::logarithmic(100.0, 100_000.0, 18);
                hist.extend(
                    r.extreme.attempts.iter().filter(|p| p.delay_secs > 0.0).map(|p| p.delay_secs),
                );
                println!("retransmission-delay histogram (seconds, log bins):");
                print!("{}", spamward_analysis::plot::ascii_histogram(&hist, 40));
            }
            if csv {
                let series = if name == "fig3" { r.fig3_series() } else { r.fig4_series() };
                print!("{}", Series::to_csv(&series));
            }
        }
        "fig5" => {
            let mut cfg = deployment::DeploymentConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            let r = deployment::run(&cfg);
            println!("{r}");
            println!("benign delivery-delay CDF (x = seconds):");
            print!("{}", spamward_analysis::plot::ascii_cdf(&r.cdf, 60, 10));
            if csv {
                print!("{}", Series::to_csv(&[r.fig5_series()]));
            }
        }
        "dialects" => println!("{}", dialects::run()),
        "longterm" => {
            let r = longterm::run(&longterm::LongTermConfig::default());
            println!("{r}");
        }
        "costs" => {
            let r = costs::run(&costs::CostsConfig::default());
            println!("{r}");
        }
        "variance" => {
            let r = variance::run(&variance::VarianceConfig::default());
            println!("{r}");
        }
        "future" => {
            let r = future_threats::run(&future_threats::FutureThreatsConfig::default());
            println!("{r}");
        }
        "summary" => {
            let r = summary::run(&efficacy::EfficacyConfig::default());
            println!("{r}");
        }
        "ablations" => {
            println!("== Ablation 1: greylisting threshold sweep ==");
            for p in ablations::threshold_sweep(2015) {
                println!(
                    "  threshold {:>9}: spam blocked {:>6.2}%, benign delay {}",
                    p.threshold.to_string(),
                    p.spam_blocked_pct,
                    p.benign_delay
                );
            }
            println!("\n== Ablation 2: triplet keying granularity ==");
            let n = ablations::netmask_ablation(7);
            println!(
                "  /24 keying: {} attempts; exact-IP keying: {} attempts",
                n.attempts_with_net24, n.attempts_with_exact
            );
            println!("\n== Ablation 3: second spam campaign vs the triplet ==");
            let s = ablations::second_campaign(11);
            println!(
                "  first campaign delivered: {}; second campaign (new message, {} later) delivered: {}",
                s.first_delivered, s.gap, s.second_delivered
            );
            println!("\n== Ablation 4: scan rounds vs detector error ==");
            for p in ablations::scan_rounds_ablation(3, 4_000, 3) {
                println!(
                    "  {} round(s): {} false positives, {} false negatives",
                    p.rounds, p.false_positives, p.false_negatives
                );
            }
            println!("\n== Ablation 5: triplet-store capacity under spam load ==");
            for cap in [1_000_000, 500, 50] {
                let r = ablations::store_cap_ablation(9, cap, 300);
                println!(
                    "  capacity {:>8}: {} evictions, benign mail delivered: {}",
                    r.capacity, r.evictions, r.benign_delivered
                );
            }
            println!("\n== Ablation 6: pregreet (early-talker) filtering alone ==");
            for p in ablations::pregreet_ablation(13) {
                println!(
                    "  {:<15} delivered: {}",
                    p.sender,
                    if p.delivered { "yes" } else { "no (caught talking early)" }
                );
            }
            println!();
        }
        other => {
            eprintln!("unknown artifact {other:?}");
            usage();
        }
    };

    if artifact == "all" {
        for name in [
            "table1",
            "fig2",
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "table3",
            "table4",
            "summary",
            "ablations",
            "future",
            "dialects",
            "costs",
            "longterm",
            "variance",
        ] {
            run_one(name);
            println!();
        }
    } else {
        run_one(artifact);
    }
}
