//! Benchmark harness for the `spamward` reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p spamward-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper by iterating the
//!   experiment registry in [`spamward_core::harness`];
//! * the **Criterion benches** (`cargo bench`) measure how long each
//!   registered experiment takes at [`Scale::Quick`], plus substrate
//!   micro-benchmarks.
//!
//! Both consume experiments exclusively through the registry, so a new
//! experiment is benched and reproducible the moment it is registered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spamward_core::harness::{HarnessConfig, Scale};

/// The uniform reduced-size config every bench runs experiments at: default
/// seeds, [`Scale::Quick`] populations (same code path as the paper-scale
/// run, seconds instead of minutes).
pub fn quick_config() -> HarnessConfig {
    HarnessConfig { scale: Scale::Quick, ..Default::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_core::harness;

    #[test]
    fn bench_workloads_run() {
        // Smoke: the bench workloads must be executable as configured.
        let config = quick_config();
        for id in ["table2", "table3"] {
            let report =
                harness::find(id).expect("registered").run(&config).expect("unbudgeted run");
            assert_eq!(report.id(), id);
        }
    }
}
