//! Benchmark harness for the `spamward` reproduction.
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p spamward-bench --bin repro -- all`)
//!   regenerates every table and figure of the paper and prints them in
//!   the rows/series the paper reports;
//! * the **Criterion benches** (`cargo bench`) measure how long each
//!   regeneration takes, one bench per table/figure plus ablation and
//!   substrate micro-benchmarks.
//!
//! This library hosts the small shared configuration shims so the binary
//! and the benches run identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spamward_core::experiments::{deployment, efficacy, kelihos, nolisting_adoption, webmail};

/// Scaled-down Fig. 2 config used by benches (fast, same pipeline).
pub fn bench_adoption_config() -> nolisting_adoption::AdoptionConfig {
    nolisting_adoption::AdoptionConfig { domains: 4_000, ..Default::default() }
}

/// Scaled-down Table II config used by benches.
pub fn bench_efficacy_config() -> efficacy::EfficacyConfig {
    efficacy::EfficacyConfig { recipients: 5, ..Default::default() }
}

/// Scaled-down Fig. 3/4 config used by benches.
pub fn bench_kelihos_config() -> kelihos::KelihosConfig {
    kelihos::KelihosConfig { recipients: 40, ..Default::default() }
}

/// Scaled-down Fig. 5 config used by benches.
pub fn bench_deployment_config() -> deployment::DeploymentConfig {
    deployment::DeploymentConfig { messages: 300, ..Default::default() }
}

/// Table III config used by benches (already laptop-scale).
pub fn bench_webmail_config() -> webmail::WebmailConfig {
    webmail::WebmailConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_run() {
        // Smoke: the bench workloads must be executable as configured.
        let _ = spamward_core::experiments::efficacy::run(&bench_efficacy_config());
        let _ = spamward_core::experiments::webmail::run(&bench_webmail_config());
    }
}
