//! The three-step nolisting detector and the Fig. 2 classification.

use crate::dataset::{BannerGrab, DnsAnyScan};
use crate::population::{DomainTruth, Population};
use serde::{Deserialize, Serialize};
use spamward_dns::DomainName;
use std::collections::BTreeMap;
use std::fmt;

/// The detector's verdict for one domain (the four Fig. 2 slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainClass {
    /// Exactly one (resolvable) MX.
    OneMx,
    /// Multiple MXs, primary listening in at least one scan.
    MultiMxNoNolisting,
    /// Primary never listening, a lower-priority MX listening, in *every*
    /// scan round.
    Nolisting,
    /// No usable MX data (unresolvable or lame).
    DnsMisconfigured,
}

impl fmt::Display for DomainClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomainClass::OneMx => "one MX record",
            DomainClass::MultiMxNoNolisting => "not using nolisting",
            DomainClass::Nolisting => "using nolisting",
            DomainClass::DnsMisconfigured => "DNS misconfiguration",
        };
        f.write_str(s)
    }
}

/// One complete scan round: the (glue-patched) DNS dataset plus the banner
/// grab taken in the same epoch.
#[derive(Debug)]
pub struct ScanRound {
    /// The DNS dataset.
    pub dns: DnsAnyScan,
    /// The SYN-scan results.
    pub banner: BannerGrab,
}

/// Fig. 2's aggregate: per-class counts and percentages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Stats {
    /// Total domains classified.
    pub total: usize,
    /// Count per class.
    pub counts: Vec<(DomainClass, usize)>,
}

impl Fig2Stats {
    /// The percentage of a class.
    pub fn pct(&self, class: DomainClass) -> f64 {
        let count = self.counts.iter().find(|(c, _)| *c == class).map(|(_, n)| *n).unwrap_or(0);
        100.0 * count as f64 / self.total.max(1) as f64
    }
}

/// Detection quality against ground truth (the synthetic population's
/// advantage over the real study).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorAccuracy {
    /// Nolisting domains correctly flagged.
    pub true_positives: usize,
    /// Non-nolisting domains wrongly flagged.
    pub false_positives: usize,
    /// Nolisting domains missed.
    pub false_negatives: usize,
}

impl DetectorAccuracy {
    /// TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            return 1.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// TP / (TP + FN); 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            return 1.0;
        }
        self.true_positives as f64 / actual as f64
    }
}

/// The paper's three-step nolisting detector with N-scan cross-checking.
///
/// Per scan round and domain: (1) take the domain's MX records and check
/// their correctness, (2) use the resolved exchanger addresses in priority
/// order, (3) join against the banner grab. A domain is a *candidate* when
/// its primary is not listening but some lower-priority exchanger is; it
/// is classified [`DomainClass::Nolisting`] only when it is a candidate in
/// **every** round and the primary listened in none (the paper's two
/// scans, two months apart).
#[derive(Debug, Default)]
pub struct NolistingDetector;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundVerdict {
    OneMx,
    PrimaryUp,
    Candidate,
    Misconfigured,
    /// Multi-MX with nothing listening at all — indistinguishable from an
    /// outage; treated as "not nolisting" (primary could be fine later).
    AllDown,
}

impl NolistingDetector {
    /// Classifies one domain within one round.
    fn round_verdict(round: &ScanRound, domain: &DomainName) -> RoundVerdict {
        let Some(entries) = round.dns.mx.get(domain) else {
            return RoundVerdict::Misconfigured;
        };
        let resolved: Vec<_> =
            entries.iter().filter_map(|e| e.ip.map(|ip| (e.preference, ip))).collect();
        if resolved.is_empty() {
            return RoundVerdict::Misconfigured;
        }
        if resolved.len() == 1 {
            return RoundVerdict::OneMx;
        }
        // Entries are preference-sorted at collection time.
        let primary_listening = round.banner.is_listening(resolved[0].1);
        if primary_listening {
            return RoundVerdict::PrimaryUp;
        }
        if resolved[1..].iter().any(|&(_, ip)| round.banner.is_listening(ip)) {
            RoundVerdict::Candidate
        } else {
            RoundVerdict::AllDown
        }
    }

    /// Classifies `domain` across all rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty.
    pub fn classify(rounds: &[ScanRound], domain: &DomainName) -> DomainClass {
        assert!(!rounds.is_empty(), "need at least one scan round");
        let verdicts: Vec<RoundVerdict> =
            rounds.iter().map(|r| Self::round_verdict(r, domain)).collect();
        // Misconfiguration and single-MX are structural; take them from
        // the first round that produced MX data at all.
        if verdicts.iter().all(|v| *v == RoundVerdict::Misconfigured) {
            return DomainClass::DnsMisconfigured;
        }
        if verdicts.contains(&RoundVerdict::OneMx) {
            return DomainClass::OneMx;
        }
        // "If one domain had the primary email server operational in at
        // least one of the two datasets, we concluded that it was not
        // using nolisting."
        if verdicts.contains(&RoundVerdict::PrimaryUp) {
            return DomainClass::MultiMxNoNolisting;
        }
        // "If the primary was not responding in both cases but the
        // secondary did, we assumed the domain was protected by nolisting."
        if verdicts.iter().all(|v| *v == RoundVerdict::Candidate) {
            return DomainClass::Nolisting;
        }
        DomainClass::MultiMxNoNolisting
    }

    /// Classifies every domain and aggregates Fig. 2.
    pub fn run<'a>(
        rounds: &[ScanRound],
        domains: impl IntoIterator<Item = &'a DomainName>,
    ) -> (Fig2Stats, BTreeMap<DomainName, DomainClass>) {
        let mut per_domain = BTreeMap::new();
        let mut counts: BTreeMap<DomainClass, usize> = BTreeMap::new();
        for d in domains {
            let class = Self::classify(rounds, d);
            *counts.entry(class).or_insert(0) += 1;
            per_domain.insert(d.clone(), class);
        }
        let total = per_domain.len();
        let ordered = [
            DomainClass::OneMx,
            DomainClass::MultiMxNoNolisting,
            DomainClass::Nolisting,
            DomainClass::DnsMisconfigured,
        ]
        .iter()
        .map(|&c| (c, counts.get(&c).copied().unwrap_or(0)))
        .collect();
        (Fig2Stats { total, counts: ordered }, per_domain)
    }

    /// Scores a classification against the population's ground truth.
    pub fn score(
        population: &Population,
        verdicts: &BTreeMap<DomainName, DomainClass>,
    ) -> DetectorAccuracy {
        let mut acc =
            DetectorAccuracy { true_positives: 0, false_positives: 0, false_negatives: 0 };
        for d in &population.domains {
            let flagged = verdicts.get(&d.name) == Some(&DomainClass::Nolisting);
            let actual = d.truth == DomainTruth::Nolisting;
            match (flagged, actual) {
                (true, true) => acc.true_positives += 1,
                (true, false) => acc.false_positives += 1,
                (false, true) => acc.false_negatives += 1,
                (false, false) => {}
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::resolve_missing;
    use crate::population::PopulationSpec;

    fn build_rounds(
        spec: &PopulationSpec,
        seed: u64,
        epochs: &[u64],
    ) -> (Population, Vec<ScanRound>) {
        let mut pop = Population::generate(spec, seed);
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let mut rounds = Vec::new();
        for &epoch in epochs {
            let mut dns_scan = DnsAnyScan::collect(&mut pop.dns, &names);
            resolve_missing(&mut dns_scan, &pop.dns, 4);
            let banner = BannerGrab::collect(&pop.network, epoch);
            rounds.push(ScanRound { dns: dns_scan, banner });
        }
        (pop, rounds)
    }

    #[test]
    fn fig2_shape_recovered() {
        let (pop, rounds) = build_rounds(&PopulationSpec::fig2(4_000), 13, &[0, 1]);
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let (stats, verdicts) = NolistingDetector::run(&rounds, &names);
        assert_eq!(stats.total, 4_000);
        assert!((stats.pct(DomainClass::OneMx) - 47.73).abs() < 3.0);
        assert!((stats.pct(DomainClass::MultiMxNoNolisting) - 45.97).abs() < 3.0);
        assert!((stats.pct(DomainClass::DnsMisconfigured) - 5.78).abs() < 2.0);
        let nolisting_pct = stats.pct(DomainClass::Nolisting);
        assert!(nolisting_pct > 0.0 && nolisting_pct < 2.0, "got {nolisting_pct}");

        let acc = NolistingDetector::score(&pop, &verdicts);
        // A nolisting domain whose flaky *secondary* happens to be down in
        // a scan epoch is undetectable by construction, so recall is high
        // but not guaranteed perfect.
        assert!(acc.recall() > 0.85, "recall {}", acc.recall());
        assert!(acc.precision() > 0.5, "precision {}", acc.precision());
    }

    #[test]
    fn double_scan_beats_single_scan_on_precision() {
        let mut spec = PopulationSpec::fig2(6_000);
        spec.flaky_hosts = 0.20; // plenty of flapping primaries
        let (pop, rounds) = build_rounds(&spec, 17, &[0, 1]);
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();

        let (_, single) = NolistingDetector::run(&rounds[..1], &names);
        let (_, double) = NolistingDetector::run(&rounds, &names);
        let acc_single = NolistingDetector::score(&pop, &single);
        let acc_double = NolistingDetector::score(&pop, &double);
        assert!(
            acc_double.false_positives < acc_single.false_positives,
            "double scan FP {} !< single scan FP {}",
            acc_double.false_positives,
            acc_single.false_positives
        );
        assert!(acc_double.precision() > acc_single.precision());
        assert!(acc_double.recall() > 0.5, "recall {}", acc_double.recall());
    }

    #[test]
    fn misconfigured_and_one_mx_classes() {
        let (pop, rounds) = build_rounds(&PopulationSpec::fig2(1_500), 23, &[0, 1]);
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let (_, verdicts) = NolistingDetector::run(&rounds, &names);
        for d in &pop.domains {
            let v = verdicts[&d.name];
            match d.truth {
                DomainTruth::Misconfigured => {
                    assert_eq!(v, DomainClass::DnsMisconfigured, "{}", d.name)
                }
                DomainTruth::SingleMx => assert_eq!(v, DomainClass::OneMx, "{}", d.name),
                _ => {}
            }
        }
    }

    #[test]
    fn stats_pct_of_absent_class_is_zero() {
        let stats = Fig2Stats { total: 10, counts: vec![(DomainClass::OneMx, 10)] };
        assert_eq!(stats.pct(DomainClass::Nolisting), 0.0);
        assert_eq!(stats.pct(DomainClass::OneMx), 100.0);
    }

    #[test]
    fn accuracy_edge_cases() {
        let perfect =
            DetectorAccuracy { true_positives: 0, false_positives: 0, false_negatives: 0 };
        assert_eq!(perfect.precision(), 1.0);
        assert_eq!(perfect.recall(), 1.0);
        let bad = DetectorAccuracy { true_positives: 1, false_positives: 3, false_negatives: 1 };
        assert_eq!(bad.precision(), 0.25);
        assert_eq!(bad.recall(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one scan round")]
    fn classify_requires_rounds() {
        let name: DomainName = "x.example".parse().unwrap();
        let _ = NolistingDetector::classify(&[], &name);
    }

    #[test]
    fn display_class_names() {
        assert_eq!(DomainClass::Nolisting.to_string(), "using nolisting");
        assert_eq!(DomainClass::DnsMisconfigured.to_string(), "DNS misconfiguration");
    }
}
