//! Shard-parallel streaming execution of the Fig. 2 scan pipeline.
//!
//! The materialized pipeline builds one global [`Network`]/[`Authority`]
//! and joins whole-internet datasets; fine at laptop scale, impossible at
//! the paper's 135 M domains. [`scan_shard`] instead walks the
//! [`PopulationStream`] and, for each domain its shard owns, synthesizes
//! the domain's *corner* of the internet — its zone and mail hosts — runs
//! the exact same collect → glue-patch → banner-grab → classify pipeline
//! against that corner, and folds the outcome into O(1)-size
//! [`ShardScanStats`]. Nothing survives a domain but its aggregate
//! contribution, so memory stays flat no matter the population size.
//!
//! Per-domain emulation is *exact*, not approximate: MX entries, glue
//! resolution and SYN probes depend only on the domain's own zone and
//! hosts (addresses are unique per domain, host availability seeds derive
//! from host names), so a domain's classification in its mini-world equals
//! its classification in the materialized world — a property the tests
//! pin. Shard outputs merge by field-wise addition in shard order.

use crate::dataset::{BannerGrab, DnsAnyScan};
use crate::metrics::{SAMPLE_SCAN_EVENTS, SAMPLE_SCAN_NOLISTING};
use crate::pipeline::{DetectorAccuracy, DomainClass, Fig2Stats, NolistingDetector, ScanRound};
use crate::population::{DomainTruth, PopulationStream};
use spamward_dns::{Authority, NameTable, RecordData, RecordType};
use spamward_net::{Network, SMTP_PORT};
use spamward_obs::TimeSeries;
use spamward_sim::{ShardPlan, SimTime};

/// Virtual scan rate backing the fig2 time series: the streaming scanner
/// is modelled at one domain per virtual second, bucketed per minute.
/// The bucket of a domain is a pure function of its global stream index,
/// so per-shard series merge to identical bytes at any shard width.
const SCAN_BUCKET_DOMAINS: u64 = 60;
/// Seconds each bucket spans.
const SCAN_BUCKET_SECS: u64 = 60;

/// One scan round's aggregate sizes (the inputs of
/// [`crate::metrics::collect_shard_scan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanRoundStats {
    /// Domains with MX data this round.
    pub dns_domains: u64,
    /// MX entries still lacking an A record after glue patching.
    pub dns_missing_a: u64,
    /// Addresses found listening on port 25.
    pub banner_listening: u64,
}

/// One shard's (or, after merging, the whole scan's) aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScanStats {
    /// Domains this shard owned and classified.
    pub domains: u64,
    /// Scan work performed: DNS queries plus SYN probes.
    pub events: u64,
    /// Per-round dataset sizes, indexed by epoch position.
    pub rounds: Vec<ScanRoundStats>,
    /// MX entries whose glue the re-resolution pass patched.
    pub glue_resolved: u64,
    /// Class counts in Fig. 2 order (one-MX, no-nolisting, nolisting,
    /// misconfigured).
    pub class_counts: [u64; 4],
    /// Detected-nolisting count per *single* round, for the between-scan
    /// drift number.
    pub per_epoch_nolisting: Vec<u64>,
    /// Confusion-matrix cells against ground truth.
    pub accuracy: DetectorAccuracy,
    /// Detected-nolisting counts within the top-k popular domains.
    pub top_k: Vec<(u32, u64)>,
    /// Scan progress over virtual time: events and detections per
    /// [`SCAN_BUCKET_SECS`] bucket (`obs.sample.scan.*` series).
    pub samples: TimeSeries,
}

fn class_slot(class: DomainClass) -> usize {
    match class {
        DomainClass::OneMx => 0,
        DomainClass::MultiMxNoNolisting => 1,
        DomainClass::Nolisting => 2,
        DomainClass::DnsMisconfigured => 3,
    }
}

impl ShardScanStats {
    /// An empty accumulator for `epochs` rounds and the given top-k ranks.
    #[must_use]
    pub fn empty(epochs: usize, ks: &[u32]) -> ShardScanStats {
        ShardScanStats {
            domains: 0,
            events: 0,
            rounds: vec![ScanRoundStats::default(); epochs],
            glue_resolved: 0,
            class_counts: [0; 4],
            per_epoch_nolisting: vec![0; epochs],
            accuracy: DetectorAccuracy {
                true_positives: 0,
                false_positives: 0,
                false_negatives: 0,
            },
            top_k: ks.iter().map(|&k| (k, 0)).collect(),
            samples: TimeSeries::new(),
        }
    }

    /// Folds another shard's results in (field-wise addition).
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators were built for different epochs or
    /// top-k ranks.
    pub fn merge(&mut self, other: &ShardScanStats) {
        assert_eq!(self.rounds.len(), other.rounds.len(), "mismatched round counts");
        assert_eq!(
            self.top_k.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            other.top_k.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            "mismatched top-k ranks"
        );
        self.domains += other.domains;
        self.events += other.events;
        for (mine, theirs) in self.rounds.iter_mut().zip(&other.rounds) {
            mine.dns_domains += theirs.dns_domains;
            mine.dns_missing_a += theirs.dns_missing_a;
            mine.banner_listening += theirs.banner_listening;
        }
        self.glue_resolved += other.glue_resolved;
        for (mine, theirs) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *mine += theirs;
        }
        for (mine, theirs) in self.per_epoch_nolisting.iter_mut().zip(&other.per_epoch_nolisting) {
            *mine += theirs;
        }
        self.accuracy.true_positives += other.accuracy.true_positives;
        self.accuracy.false_positives += other.accuracy.false_positives;
        self.accuracy.false_negatives += other.accuracy.false_negatives;
        for ((_, mine), (_, theirs)) in self.top_k.iter_mut().zip(&other.top_k) {
            *mine += theirs;
        }
        self.samples.merge(&other.samples);
    }

    /// The Fig. 2 aggregate view of the class counts.
    #[must_use]
    pub fn fig2(&self) -> Fig2Stats {
        let order = [
            DomainClass::OneMx,
            DomainClass::MultiMxNoNolisting,
            DomainClass::Nolisting,
            DomainClass::DnsMisconfigured,
        ];
        Fig2Stats {
            total: self.domains as usize,
            counts: order.iter().map(|&c| (c, self.class_counts[class_slot(c)] as usize)).collect(),
        }
    }
}

fn a_record(dns: &Authority, name: &spamward_dns::DomainName) -> Option<std::net::Ipv4Addr> {
    dns.query_ro(name, RecordType::A).answers.iter().find_map(|r| match r.data {
        RecordData::A(ip) => Some(ip),
        _ => None,
    })
}

/// Runs the full scan pipeline over every domain `shard` owns under
/// `plan`, streaming the population — memory use is independent of the
/// population size.
///
/// `epochs` are the banner-grab rounds (the paper's two scans) and `ks`
/// the popularity cutoffs for the Alexa cross-check.
#[must_use]
pub fn scan_shard(
    stream: &PopulationStream,
    plan: &ShardPlan,
    shard: u32,
    epochs: &[u64],
    ks: &[u32],
) -> ShardScanStats {
    let mut stats = ShardScanStats::empty(epochs.len(), ks);
    for i in 0..stream.len() as u64 {
        if !plan.owns(shard, &stream.name_of(i)) {
            continue;
        }
        let packed = stream.packed(i);
        let mut names = NameTable::new(shard);
        let expanded = stream.expand(&packed, &mut names);
        let domain = expanded.record.name.clone();
        stats.domains += 1;
        let bucket = SimTime::from_secs(i / SCAN_BUCKET_DOMAINS * SCAN_BUCKET_SECS);
        let events_before = stats.events;

        // The domain's corner of the internet: its zone, its hosts.
        let mut dns = Authority::new();
        dns.publish(expanded.zone);
        let mut net = Network::new(plan.seed());
        for h in &expanded.hosts {
            net.host(&h.name)
                .ip(h.ip)
                .port(SMTP_PORT, h.smtp)
                .availability(h.availability.clone())
                .build();
        }

        let mut rounds = Vec::with_capacity(epochs.len());
        for (ei, &epoch) in epochs.iter().enumerate() {
            let mut scan = DnsAnyScan::collect(&mut dns, [&domain]);
            stats.events += 1; // the MX query
            for e in scan.mx.values_mut().flatten() {
                if e.ip.is_none() {
                    stats.events += 1; // the glue re-resolution query
                    if let Some(ip) = a_record(&dns, &e.exchange) {
                        e.ip = Some(ip);
                        stats.glue_resolved += 1;
                    }
                }
            }
            let banner = BannerGrab::collect(&net, epoch);
            stats.events += expanded.hosts.len() as u64; // one SYN per address
            stats.rounds[ei].dns_domains += scan.len() as u64;
            stats.rounds[ei].dns_missing_a += scan.missing_count() as u64;
            stats.rounds[ei].banner_listening += banner.len() as u64;
            rounds.push(ScanRound { dns: scan, banner });
        }

        for (ei, round) in rounds.iter().enumerate() {
            let single = NolistingDetector::classify(std::slice::from_ref(round), &domain);
            if single == DomainClass::Nolisting {
                stats.per_epoch_nolisting[ei] += 1;
            }
        }
        let class = NolistingDetector::classify(&rounds, &domain);
        stats.class_counts[class_slot(class)] += 1;
        let flagged = class == DomainClass::Nolisting;
        let actual = packed.truth == DomainTruth::Nolisting;
        match (flagged, actual) {
            (true, true) => stats.accuracy.true_positives += 1,
            (true, false) => stats.accuracy.false_positives += 1,
            (false, true) => stats.accuracy.false_negatives += 1,
            (false, false) => {}
        }
        if flagged {
            for (k, count) in &mut stats.top_k {
                if packed.alexa_rank <= *k {
                    *count += 1;
                }
            }
        }
        let delta = i64::try_from(stats.events - events_before).unwrap_or(i64::MAX);
        stats.samples.record_point(SAMPLE_SCAN_EVENTS, bucket, delta);
        if flagged {
            stats.samples.record_point(SAMPLE_SCAN_NOLISTING, bucket, 1);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::resolve_missing;
    use crate::population::{Population, PopulationSpec};
    use spamward_sim::shard::run_sharded;

    const EPOCHS: [u64; 2] = [0, 1];
    const KS: [u32; 3] = [15, 500, 1000];

    fn merged(domains: usize, seed: u64, shards: u32) -> ShardScanStats {
        let stream = PopulationStream::new(PopulationSpec::fig2(domains), seed);
        let plan = ShardPlan::new(seed, shards);
        let per_shard = run_sharded(&plan, 4, |s| scan_shard(&stream, &plan, s, &EPOCHS, &KS));
        let mut total = ShardScanStats::empty(EPOCHS.len(), &KS);
        for s in &per_shard {
            total.merge(s);
        }
        total
    }

    #[test]
    fn sharded_scan_matches_the_materialized_pipeline() {
        let (domains, seed) = (1_500, 13);
        let total = merged(domains, seed, 8);

        // The materialized reference: one global world, global datasets.
        let mut pop = Population::generate(&PopulationSpec::fig2(domains), seed);
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let mut rounds = Vec::new();
        let mut glue = 0u64;
        for &epoch in &EPOCHS {
            let mut scan = DnsAnyScan::collect(&mut pop.dns, &names);
            glue += resolve_missing(&mut scan, &pop.dns, 4) as u64;
            let banner = BannerGrab::collect(&pop.network, epoch);
            rounds.push(ScanRound { dns: scan, banner });
        }
        let (stats, verdicts) = NolistingDetector::run(&rounds, &names);
        let accuracy = NolistingDetector::score(&pop, &verdicts);

        assert_eq!(total.domains as usize, domains);
        assert_eq!(total.fig2(), stats, "per-domain emulation must classify identically");
        assert_eq!(total.accuracy, accuracy);
        assert_eq!(total.glue_resolved, glue);
        for (ei, round) in rounds.iter().enumerate() {
            assert_eq!(total.rounds[ei].dns_domains as usize, round.dns.len());
            assert_eq!(total.rounds[ei].dns_missing_a as usize, round.dns.missing_count());
            assert_eq!(total.rounds[ei].banner_listening as usize, round.banner.len());
        }
    }

    #[test]
    fn merge_is_independent_of_shard_count() {
        let one = merged(900, 5, 1);
        let four = merged(900, 5, 4);
        let eight = merged(900, 5, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn scan_samples_cover_every_bucket_at_any_shard_width() {
        let one = merged(900, 5, 1);
        let eight = merged(900, 5, 8);
        assert_eq!(one.samples.to_csv(), eight.samples.to_csv(), "byte-stable across widths");
        // 900 domains at one per virtual second = 15 one-minute buckets.
        let event_buckets =
            one.samples.iter().filter(|(series, _, _)| *series == SAMPLE_SCAN_EVENTS).count();
        assert_eq!(event_buckets, 15);
        // Every bucket did work: at least one MX query per domain.
        assert!(one
            .samples
            .iter()
            .filter(|(series, _, _)| *series == SAMPLE_SCAN_EVENTS)
            .all(|(_, _, v)| v >= 60));
    }

    #[test]
    fn shards_partition_the_population() {
        let stream = PopulationStream::new(PopulationSpec::fig2(700), 3);
        let plan = ShardPlan::new(3, 8);
        let per_shard = run_sharded(&plan, 2, |s| scan_shard(&stream, &plan, s, &EPOCHS, &KS));
        let covered: u64 = per_shard.iter().map(|s| s.domains).sum();
        assert_eq!(covered, 700, "every domain in exactly one shard");
        assert!(
            per_shard.iter().filter(|s| s.domains > 0).count() >= 6,
            "the hash should spread domains across shards"
        );
    }

    #[test]
    #[should_panic(expected = "mismatched round counts")]
    fn merging_mismatched_shapes_panics() {
        let mut a = ShardScanStats::empty(2, &KS);
        let b = ShardScanStats::empty(3, &KS);
        a.merge(&b);
    }
}
