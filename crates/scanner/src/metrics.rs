//! Metric names and collectors for the scanner crate.
//!
//! All `scanner.*` registry names live here (the O1 lint rule). The
//! detection pipeline's stages — DNS dataset, banner grab, classifier —
//! already accumulate their own aggregate state; collection reads those
//! structures, so scan loops pay nothing.

use crate::pipeline::{DetectorAccuracy, DomainClass, Fig2Stats, ScanRound};
use crate::shard_scan::ShardScanStats;
use spamward_obs::Registry;

/// Scan rounds fed to the detector.
pub const ROUNDS: &str = "scanner.rounds";
/// Domains with MX data in the DNS dataset (summed over rounds).
pub const DNS_DOMAINS: &str = "scanner.dns.domains";
/// MX entries still lacking an A record after glue patching.
pub const DNS_MISSING_A: &str = "scanner.dns.missing_a";
/// Hosts found listening on port 25 (summed over rounds).
pub const BANNER_LISTENING: &str = "scanner.banner.listening";
/// Domains classified by the detector.
pub const CLASSIFIED: &str = "scanner.classified";
/// Domains classified as single-MX.
pub const CLASS_ONE_MX: &str = "scanner.class.one_mx";
/// Domains classified as multi-MX without nolisting.
pub const CLASS_NO_NOLISTING: &str = "scanner.class.no_nolisting";
/// Domains classified as nolisting-protected.
pub const CLASS_NOLISTING: &str = "scanner.class.nolisting";
/// Domains classified as DNS-misconfigured.
pub const CLASS_MISCONFIGURED: &str = "scanner.class.misconfigured";
/// Sampled series: scan work (DNS queries + SYN probes) per virtual-time
/// bucket of the streaming scan.
pub const SAMPLE_SCAN_EVENTS: &str = "obs.sample.scan.events";
/// Sampled series: nolisting detections per virtual-time bucket.
pub const SAMPLE_SCAN_NOLISTING: &str = "obs.sample.scan.nolisting";

/// Detector true positives against ground truth.
pub const ACCURACY_TP: &str = "scanner.accuracy.true_positives";
/// Detector false positives against ground truth.
pub const ACCURACY_FP: &str = "scanner.accuracy.false_positives";
/// Detector false negatives against ground truth.
pub const ACCURACY_FN: &str = "scanner.accuracy.false_negatives";

/// Exports the raw-dataset stage: per-round DNS and banner-grab sizes.
pub fn collect_rounds(rounds: &[ScanRound], reg: &mut Registry) {
    reg.record_counter(ROUNDS, rounds.len() as u64);
    for round in rounds {
        reg.record_counter(DNS_DOMAINS, round.dns.len() as u64);
        reg.record_counter(DNS_MISSING_A, round.dns.missing_count() as u64);
        reg.record_counter(BANNER_LISTENING, round.banner.len() as u64);
    }
}

/// Exports the classifier stage: Fig. 2 class counts.
pub fn collect_fig2(stats: &Fig2Stats, reg: &mut Registry) {
    reg.record_counter(CLASSIFIED, stats.total as u64);
    for (class, count) in &stats.counts {
        let name = match class {
            DomainClass::OneMx => CLASS_ONE_MX,
            DomainClass::MultiMxNoNolisting => CLASS_NO_NOLISTING,
            DomainClass::Nolisting => CLASS_NOLISTING,
            DomainClass::DnsMisconfigured => CLASS_MISCONFIGURED,
        };
        reg.record_counter(name, *count as u64);
    }
}

/// Exports the scoring stage: confusion-matrix cells.
pub fn collect_accuracy(acc: &DetectorAccuracy, reg: &mut Registry) {
    reg.record_counter(ACCURACY_TP, acc.true_positives as u64);
    reg.record_counter(ACCURACY_FP, acc.false_positives as u64);
    reg.record_counter(ACCURACY_FN, acc.false_negatives as u64);
}

/// Exports a (merged) shard-scan run: the same names the materialized
/// pipeline's stage collectors record, read from the streaming
/// accumulators instead.
pub fn collect_shard_scan(stats: &ShardScanStats, reg: &mut Registry) {
    reg.record_counter(ROUNDS, stats.rounds.len() as u64);
    for round in &stats.rounds {
        reg.record_counter(DNS_DOMAINS, round.dns_domains);
        reg.record_counter(DNS_MISSING_A, round.dns_missing_a);
        reg.record_counter(BANNER_LISTENING, round.banner_listening);
    }
    collect_fig2(&stats.fig2(), reg);
    collect_accuracy(&stats.accuracy, reg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_and_accuracy_collection_mirror_inputs() {
        let stats = Fig2Stats {
            total: 10,
            counts: vec![
                (DomainClass::OneMx, 4),
                (DomainClass::MultiMxNoNolisting, 3),
                (DomainClass::Nolisting, 2),
                (DomainClass::DnsMisconfigured, 1),
            ],
        };
        let acc = DetectorAccuracy { true_positives: 2, false_positives: 1, false_negatives: 0 };
        let mut reg = Registry::new();
        collect_fig2(&stats, &mut reg);
        collect_accuracy(&acc, &mut reg);
        assert_eq!(reg.counter(CLASSIFIED), Some(10));
        assert_eq!(reg.counter(CLASS_NOLISTING), Some(2));
        assert_eq!(reg.counter(CLASS_MISCONFIGURED), Some(1));
        assert_eq!(reg.counter(ACCURACY_TP), Some(2));
        assert_eq!(reg.counter(ACCURACY_FN), Some(0));
    }
}
