//! The two zmap-style datasets and the missing-entry re-resolver.

use serde::{Deserialize, Serialize};
use spamward_dns::{Authority, DomainName, Rcode, RecordData, RecordType};
use spamward_net::{Network, SMTP_PORT};
use spamward_sim::shard::run_partitioned;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One MX record as the DNS-ANY dataset carries it: the exchanger name,
/// its preference, and — when the original scan captured glue — its
/// address. Entries with `ip: None` are the paper's "missing entries".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxRecordEntry {
    /// MX preference.
    pub preference: u16,
    /// The exchanger name.
    pub exchange: DomainName,
    /// The exchanger's address, if the dump included it.
    pub ip: Option<Ipv4Addr>,
}

/// The DNS Records (ANY) dataset restricted to A and MX records, as the
/// paper used it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsAnyScan {
    /// Per-domain MX entries (absent key = no MX data at all).
    pub mx: BTreeMap<DomainName, Vec<MxRecordEntry>>,
}

impl DnsAnyScan {
    /// Collects the dataset by querying every domain in `domains` against
    /// the authority.
    ///
    /// To mirror the real dump's imperfection, glue (the exchanger's A
    /// record) is looked up here but a future [`resolve_missing`] pass is
    /// still required for domains whose glue the authority doesn't return
    /// (lame zones yield no entry at all; dangling MXs yield `ip: None`).
    pub fn collect<'a>(
        dns: &mut Authority,
        domains: impl IntoIterator<Item = &'a DomainName>,
    ) -> DnsAnyScan {
        let mut mx = BTreeMap::new();
        for domain in domains {
            let out = dns.query(domain, RecordType::Mx);
            if out.rcode != Rcode::NoError {
                continue;
            }
            let mut entries: Vec<MxRecordEntry> = out
                .answers
                .iter()
                .filter_map(|r| match &r.data {
                    RecordData::Mx { preference, exchange } => Some(MxRecordEntry {
                        preference: *preference,
                        exchange: exchange.clone(),
                        ip: None,
                    }),
                    _ => None,
                })
                .collect();
            if entries.is_empty() {
                continue;
            }
            entries.sort_by_key(|a| a.preference);
            mx.insert(domain.clone(), entries);
        }
        DnsAnyScan { mx }
    }

    /// Number of domains with MX data.
    pub fn len(&self) -> usize {
        self.mx.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.mx.is_empty()
    }

    /// Entries still lacking an address.
    pub fn missing_count(&self) -> usize {
        self.mx.values().flatten().filter(|e| e.ip.is_none()).count()
    }

    /// Serializes the dataset to a stable line format, one domain per
    /// line: `<domain> <pref>:<exchange>[=<ip>] ...` — the suite's
    /// equivalent of a scans.io dump, so scan artifacts can be stored and
    /// re-analyzed.
    pub fn to_text(&self) -> String {
        let mut domains: Vec<&DomainName> = self.mx.keys().collect();
        domains.sort();
        let mut out = String::from("spamward-dnsscan-v1\n");
        for domain in domains {
            out.push_str(domain.as_str());
            for e in &self.mx[domain] {
                match e.ip {
                    Some(ip) => out.push_str(&format!(" {}:{}={ip}", e.preference, e.exchange)),
                    None => out.push_str(&format!(" {}:{}", e.preference, e.exchange)),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses [`DnsAnyScan::to_text`] output. Returns `None` on a bad
    /// header or malformed record.
    pub fn from_text(text: &str) -> Option<DnsAnyScan> {
        let mut lines = text.lines();
        if lines.next()?.trim() != "spamward-dnsscan-v1" {
            return None;
        }
        let mut mx = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let domain: DomainName = parts.next()?.parse().ok()?;
            let mut entries = Vec::new();
            for field in parts {
                let (pref, rest) = field.split_once(':')?;
                let preference: u16 = pref.parse().ok()?;
                let (exchange, ip) = match rest.split_once('=') {
                    Some((x, ip)) => (x, Some(ip.parse().ok()?)),
                    None => (rest, None),
                };
                entries.push(MxRecordEntry { preference, exchange: exchange.parse().ok()?, ip });
            }
            if entries.is_empty() {
                return None;
            }
            mx.insert(domain, entries);
        }
        Some(DnsAnyScan { mx })
    }
}

/// Resolves the dataset's missing MX addresses in parallel — the paper's
/// "we implemented a parallel scanner to resolve the missing entries".
///
/// Fans the unresolved exchanger names out to the shard executor's
/// ordered worker pool ([`run_partitioned`], `workers` wide) querying the
/// authority read-only, then patches the dataset in place. Returns how
/// many entries were resolved.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn resolve_missing(scan: &mut DnsAnyScan, dns: &Authority, workers: usize) -> usize {
    let names: Vec<DomainName> = {
        let mut set: BTreeSet<DomainName> = BTreeSet::new();
        for e in scan.mx.values().flatten().filter(|e| e.ip.is_none()) {
            set.insert(e.exchange.clone());
        }
        set.into_iter().collect()
    };
    if names.is_empty() {
        assert!(workers > 0, "need at least one worker");
        return 0;
    }

    let results = run_partitioned(names, workers, |name| {
        let out = dns.query_ro(&name, RecordType::A);
        let ip = out.answers.iter().find_map(|r| match r.data {
            RecordData::A(ip) => Some(ip),
            _ => None,
        });
        (name, ip)
    });
    let resolved: BTreeMap<DomainName, Option<Ipv4Addr>> = results.into_iter().collect();
    let mut patched = 0;
    for e in scan.mx.values_mut().flatten() {
        if e.ip.is_none() {
            if let Some(Some(ip)) = resolved.get(&e.exchange) {
                e.ip = Some(*ip);
                patched += 1;
            }
        }
    }
    patched
}

/// The IPv4 SMTP banner-grab dataset: every address that answered a SYN
/// on port 25 during one scan epoch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BannerGrab {
    /// The scan epoch this grab ran in.
    pub epoch: u64,
    listening: BTreeSet<Ipv4Addr>,
}

impl BannerGrab {
    /// Probes every host address in the network once.
    pub fn collect(network: &Network, epoch: u64) -> BannerGrab {
        let mut listening = BTreeSet::new();
        for host in network.iter() {
            for &ip in host.ips() {
                if network.probe(ip, SMTP_PORT, epoch).is_listening() {
                    listening.insert(ip);
                }
            }
        }
        BannerGrab { epoch, listening }
    }

    /// Whether `ip` answered the SYN scan.
    pub fn is_listening(&self, ip: Ipv4Addr) -> bool {
        self.listening.contains(&ip)
    }

    /// Number of listening addresses.
    pub fn len(&self) -> usize {
        self.listening.len()
    }

    /// Whether nothing listened.
    pub fn is_empty(&self) -> bool {
        self.listening.is_empty()
    }

    /// Serializes to a stable line format: header with the epoch, then one
    /// listening address per line (sorted).
    pub fn to_text(&self) -> String {
        let mut ips: Vec<Ipv4Addr> = self.listening.iter().copied().collect();
        ips.sort();
        let mut out = format!("spamward-banner-v1 epoch={}\n", self.epoch);
        for ip in ips {
            out.push_str(&ip.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses [`BannerGrab::to_text`] output.
    pub fn from_text(text: &str) -> Option<BannerGrab> {
        let mut lines = text.lines();
        let header = lines.next()?.trim();
        let epoch: u64 = header.strip_prefix("spamward-banner-v1 epoch=")?.parse().ok()?;
        let mut listening = BTreeSet::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            listening.insert(line.parse().ok()?);
        }
        Some(BannerGrab { epoch, listening })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationSpec};

    fn small_pop() -> Population {
        Population::generate(&PopulationSpec::fig2(800), 21)
    }

    #[test]
    fn dns_scan_covers_resolvable_domains() {
        let pop = small_pop();
        let mut dns = pop.dns;
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let scan = DnsAnyScan::collect(&mut dns, &names);
        // Lame zones are absent; everything else with MX records present.
        assert!(scan.len() > 700);
        assert!(!scan.is_empty());
        // Initially, nothing carries glue.
        assert_eq!(scan.missing_count(), scan.mx.values().flatten().count());
    }

    #[test]
    fn parallel_resolver_patches_glue() {
        let pop = small_pop();
        let mut dns = pop.dns;
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let mut scan = DnsAnyScan::collect(&mut dns, &names);
        let before_missing = scan.missing_count();
        let patched = resolve_missing(&mut scan, &dns, 4);
        assert!(patched > 0);
        assert_eq!(scan.missing_count(), before_missing - patched);
        // What remains missing is exactly the dangling-MX misconfigured
        // domains.
        for (domain, entries) in &scan.mx {
            for e in entries.iter().filter(|e| e.ip.is_none()) {
                let truth =
                    pop.domains.iter().find(|d| &d.name == domain).map(|d| d.truth).unwrap();
                assert_eq!(
                    truth,
                    crate::population::DomainTruth::Misconfigured,
                    "{domain}: {e:?} unresolved but not misconfigured"
                );
            }
        }
    }

    #[test]
    fn parallel_resolver_matches_single_worker() {
        let pop = small_pop();
        let mut dns = pop.dns;
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let mut scan_a = DnsAnyScan::collect(&mut dns, &names);
        let mut scan_b = scan_a.clone();
        resolve_missing(&mut scan_a, &dns, 1);
        resolve_missing(&mut scan_b, &dns, 8);
        let as_sorted = |s: &DnsAnyScan| {
            let mut v: Vec<_> = s.mx.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        assert_eq!(as_sorted(&scan_a), as_sorted(&scan_b));
    }

    #[test]
    fn banner_grab_sees_open_ports_only() {
        let pop = small_pop();
        let grab = BannerGrab::collect(&pop.network, 0);
        assert!(!grab.is_empty());
        // Every nolisting primary must be absent (port closed).
        for d in pop.domains.iter().filter(|d| d.truth == crate::population::DomainTruth::Nolisting)
        {
            let primary = pop
                .network
                .iter()
                .find(|h| h.name() == format!("smtp.{}", d.name))
                .expect("primary host");
            assert!(!grab.is_listening(primary.primary_ip()), "{}: dead primary listed", d.name);
        }
    }

    #[test]
    fn dns_scan_text_roundtrip() {
        let pop = small_pop();
        let mut dns = pop.dns;
        let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();
        let mut scan = DnsAnyScan::collect(&mut dns, &names);
        resolve_missing(&mut scan, &dns, 2);
        let text = scan.to_text();
        assert!(text.starts_with("spamward-dnsscan-v1\n"));
        let parsed = DnsAnyScan::from_text(&text).unwrap();
        assert_eq!(parsed.len(), scan.len());
        assert_eq!(parsed.missing_count(), scan.missing_count());
        // Identical content, both resolved and dangling entries.
        for (domain, entries) in &scan.mx {
            assert_eq!(parsed.mx.get(domain), Some(entries), "{domain}");
        }
        // A second serialization is byte-identical (stable ordering).
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn banner_grab_text_roundtrip() {
        let pop = small_pop();
        let grab = BannerGrab::collect(&pop.network, 3);
        let text = grab.to_text();
        let parsed = BannerGrab::from_text(&text).unwrap();
        assert_eq!(parsed.epoch, 3);
        assert_eq!(parsed.len(), grab.len());
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn dataset_parsers_reject_garbage() {
        assert!(DnsAnyScan::from_text("").is_none());
        assert!(DnsAnyScan::from_text("wrong\nfoo.net 10:mx.foo.net\n").is_none());
        assert!(DnsAnyScan::from_text("spamward-dnsscan-v1\nfoo.net notafield\n").is_none());
        assert!(DnsAnyScan::from_text("spamward-dnsscan-v1\nfoo.net\n").is_none());
        assert!(BannerGrab::from_text("nope").is_none());
        assert!(BannerGrab::from_text("spamward-banner-v1 epoch=x\n").is_none());
        assert!(BannerGrab::from_text("spamward-banner-v1 epoch=1\nnot-an-ip\n").is_none());
    }

    #[test]
    fn banner_grab_epochs_differ_for_flaky_hosts() {
        let mut spec = PopulationSpec::fig2(2_000);
        spec.flaky_hosts = 0.5;
        let pop = Population::generate(&spec, 4);
        let a = BannerGrab::collect(&pop.network, 0);
        let b = BannerGrab::collect(&pop.network, 1);
        assert_ne!(a.len(), b.len(), "flaky hosts should change between epochs");
    }
}
