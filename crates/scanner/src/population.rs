//! Synthetic internet population with ground truth.

use serde::{Deserialize, Serialize};
use spamward_dns::{Authority, DomainName, Zone};
use spamward_net::{Availability, IpPool, Network, PortState, SMTP_PORT};
use spamward_sim::DetRng;
use std::net::Ipv4Addr;

/// Ground-truth mail configuration of a generated domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainTruth {
    /// Exactly one MX record (47.73% in Fig. 2).
    SingleMx,
    /// Two or more MX records, all servers real (45.97%).
    MultiMx,
    /// Deliberate nolisting: dead primary, live secondary (0.52%).
    Nolisting,
    /// DNS misconfiguration — no resolvable mail server (5.78%).
    Misconfigured,
}

impl DomainTruth {
    /// All four classes in Fig. 2 order.
    pub const ALL: [DomainTruth; 4] = [
        DomainTruth::SingleMx,
        DomainTruth::MultiMx,
        DomainTruth::Nolisting,
        DomainTruth::Misconfigured,
    ];
}

/// One generated domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainRecord {
    /// The domain name.
    pub name: DomainName,
    /// What the domain really is.
    pub truth: DomainTruth,
    /// Synthetic popularity rank (1 = most popular), unique per domain.
    pub alexa_rank: u32,
}

/// Parameters of population synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of domains to generate.
    pub domains: usize,
    /// Fraction with a single MX (Fig. 2: 0.4773).
    pub single_mx: f64,
    /// Fraction with multiple working MXs (Fig. 2: 0.4597).
    pub multi_mx: f64,
    /// Fraction using nolisting (Fig. 2: 0.0052).
    pub nolisting: f64,
    /// Fraction misconfigured (Fig. 2: 0.0578).
    pub misconfigured: f64,
    /// Fraction of *mail hosts* that flap (down in a random subset of scan
    /// epochs) — the noise source the double-scan exists to cancel.
    pub flaky_hosts: f64,
    /// Probability a flaky host is down in any given epoch.
    pub flaky_down_prob: f64,
}

impl PopulationSpec {
    /// The Fig. 2 mix at the given scale, with mild (2%) host flakiness —
    /// real mail servers are rarely down for a whole scan, which is what
    /// makes the paper's two-scan cross-check so clean (0.01% drift).
    pub fn fig2(domains: usize) -> Self {
        PopulationSpec {
            domains,
            single_mx: 0.4773,
            multi_mx: 0.4597,
            nolisting: 0.0052,
            misconfigured: 0.0578,
            flaky_hosts: 0.02,
            flaky_down_prob: 0.3,
        }
    }

    fn validate(&self) {
        let sum = self.single_mx + self.multi_mx + self.nolisting + self.misconfigured;
        assert!((sum - 1.0).abs() < 1e-6, "class fractions must sum to 1, got {sum}");
        assert!(self.domains > 0, "population needs at least one domain");
    }
}

/// The generated internet: domains with ground truth, plus the network and
/// DNS they live in.
#[derive(Debug)]
pub struct Population {
    /// The generated domains, in generation order.
    pub domains: Vec<DomainRecord>,
    /// The simulated network hosting every mail server.
    pub network: Network,
    /// The DNS publishing every zone.
    pub dns: Authority,
}

impl Population {
    /// Generates a population per `spec`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's fractions don't sum to 1.
    pub fn generate(spec: &PopulationSpec, seed: u64) -> Population {
        spec.validate();
        let root = DetRng::seed(seed);
        let mut class_rng = root.fork("population.class");
        let mut flake_rng = root.fork("population.flake");
        let mut rank_rng = root.fork("population.rank");

        let mut network = Network::new(seed);
        let mut dns = Authority::new();
        let mut pool = IpPool::new(Ipv4Addr::new(11, 0, 0, 1));
        let mut domains = Vec::with_capacity(spec.domains);

        // A random permutation of 1..=N as popularity ranks.
        let mut ranks: Vec<u32> = (1..=spec.domains as u32).collect();
        rank_rng.shuffle(&mut ranks);

        for (i, &alexa_rank) in ranks.iter().enumerate().take(spec.domains) {
            let name: DomainName =
                format!("d{i}.example").parse().expect("generated name is valid");
            let truth = {
                let x = class_rng.unit_f64();
                if x < spec.single_mx {
                    DomainTruth::SingleMx
                } else if x < spec.single_mx + spec.multi_mx {
                    DomainTruth::MultiMx
                } else if x < spec.single_mx + spec.multi_mx + spec.nolisting {
                    DomainTruth::Nolisting
                } else {
                    DomainTruth::Misconfigured
                }
            };

            let availability = |rng: &mut DetRng| {
                if rng.chance(spec.flaky_hosts) {
                    Availability::Flaky { down_prob: spec.flaky_down_prob }
                } else {
                    Availability::Up
                }
            };

            match truth {
                DomainTruth::SingleMx => {
                    let ip = pool.next_ip();
                    network
                        .host(&format!("mail.{name}"))
                        .ip(ip)
                        .smtp_open()
                        .availability(availability(&mut flake_rng))
                        .build();
                    dns.publish(Zone::single_mx(name.clone(), ip));
                }
                DomainTruth::MultiMx => {
                    let primary = pool.next_ip();
                    let secondary = pool.next_ip();
                    network
                        .host(&format!("mx1.{name}"))
                        .ip(primary)
                        .smtp_open()
                        .availability(availability(&mut flake_rng))
                        .build();
                    network
                        .host(&format!("mx2.{name}"))
                        .ip(secondary)
                        .smtp_open()
                        .availability(availability(&mut flake_rng))
                        .build();
                    dns.publish(
                        Zone::builder(name.clone())
                            .mx(10, "mx1", primary)
                            .mx(20, "mx2", secondary)
                            .build(),
                    );
                }
                DomainTruth::Nolisting => {
                    let dead = pool.next_ip();
                    let live = pool.next_ip();
                    // The dead primary is a real machine that never opens
                    // port 25 — reliably down for SMTP in *every* epoch.
                    network
                        .host(&format!("smtp.{name}"))
                        .ip(dead)
                        .port(SMTP_PORT, PortState::Closed)
                        .build();
                    network
                        .host(&format!("smtp1.{name}"))
                        .ip(live)
                        .smtp_open()
                        .availability(availability(&mut flake_rng))
                        .build();
                    dns.publish(Zone::nolisting(name.clone(), dead, live));
                }
                DomainTruth::Misconfigured => {
                    // Half dangling MX (target has no A record), half lame.
                    if flake_rng.chance(0.5) {
                        dns.publish(Zone::dangling_mx(name.clone()));
                    } else {
                        dns.publish(Zone::builder(name.clone()).lame().build());
                    }
                }
            }

            domains.push(DomainRecord { name, truth, alexa_rank });
        }

        Population { domains, network, dns }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the population is empty (never true for generated ones).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Counts domains per ground-truth class.
    pub fn truth_counts(&self) -> [(DomainTruth, usize); 4] {
        DomainTruth::ALL.map(|t| (t, self.domains.iter().filter(|d| d.truth == t).count()))
    }

    /// Ground-truth nolisting domains within the `k` most popular.
    pub fn nolisting_in_top_k(&self, k: u32) -> usize {
        self.domains
            .iter()
            .filter(|d| d.truth == DomainTruth::Nolisting && d.alexa_rank <= k)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_approximates_fig2() {
        let pop = Population::generate(&PopulationSpec::fig2(20_000), 1);
        let counts = pop.truth_counts();
        let frac = |t: DomainTruth| {
            counts.iter().find(|(c, _)| *c == t).unwrap().1 as f64 / pop.len() as f64
        };
        assert!((frac(DomainTruth::SingleMx) - 0.4773).abs() < 0.02);
        assert!((frac(DomainTruth::MultiMx) - 0.4597).abs() < 0.02);
        assert!((frac(DomainTruth::Misconfigured) - 0.0578).abs() < 0.01);
        assert!((frac(DomainTruth::Nolisting) - 0.0052).abs() < 0.005);
        assert!(frac(DomainTruth::Nolisting) > 0.0, "some nolisting domains must exist");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(&PopulationSpec::fig2(500), 7);
        let b = Population::generate(&PopulationSpec::fig2(500), 7);
        assert_eq!(a.domains, b.domains);
        let c = Population::generate(&PopulationSpec::fig2(500), 8);
        assert_ne!(a.domains, c.domains);
    }

    #[test]
    fn nolisting_domains_have_dead_primary_live_secondary() {
        let pop = Population::generate(&PopulationSpec::fig2(2_000), 3);
        let nolisting: Vec<_> =
            pop.domains.iter().filter(|d| d.truth == DomainTruth::Nolisting).collect();
        assert!(!nolisting.is_empty());
        for d in nolisting {
            let primary_name = format!("smtp.{}", d.name);
            let host = pop
                .network
                .iter()
                .find(|h| h.name() == primary_name)
                .expect("nolisting primary host exists");
            assert_eq!(host.port(SMTP_PORT), PortState::Closed);
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let pop = Population::generate(&PopulationSpec::fig2(1_000), 5);
        let mut ranks: Vec<u32> = pop.domains.iter().map(|d| d.alexa_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=1_000).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_rejected() {
        let mut spec = PopulationSpec::fig2(10);
        spec.single_mx = 0.9;
        let _ = Population::generate(&spec, 1);
    }

    #[test]
    fn misconfigured_domains_resolve_to_nothing() {
        let pop = Population::generate(&PopulationSpec::fig2(2_000), 9);
        let mut dns = pop.dns;
        let mut resolver = spamward_dns::Resolver::new();
        let misconf: Vec<_> =
            pop.domains.iter().filter(|d| d.truth == DomainTruth::Misconfigured).take(20).collect();
        assert!(!misconf.is_empty());
        for d in misconf {
            let result = resolver.resolve_mx(&mut dns, &d.name, spamward_sim::SimTime::ZERO);
            let unusable = match &result {
                Err(_) => true,
                Ok(mxs) => mxs.iter().all(|m| m.ip.is_none()),
            };
            assert!(unusable, "{}: misconfigured domain resolved {result:?}", d.name);
        }
    }
}
