//! Synthetic internet population with ground truth.
//!
//! The population exists in two forms. [`PopulationStream`] is the
//! source of truth: a *streaming* generator that can synthesize any
//! domain's complete record — ground truth, popularity rank, host
//! addresses, availability, DNS zone — directly from its index, in O(1)
//! time and memory, with no state threaded through earlier domains. Every
//! random decision is drawn from a per-domain fork of the seed and every
//! derived quantity (host seeds, addresses, ranks) is a pure function of
//! the index, so two parties streaming different subsets of the same
//! population agree on every record — the property shard-parallel scans
//! rely on. [`Population`] is the materialized form for laptop-scale
//! experiments: the same stream collected into vectors, a [`Network`],
//! an [`Authority`], and a [`NameTable`] interning every domain name.

use serde::{Deserialize, Serialize};
use spamward_dns::{Authority, DomainName, NameTable, Zone};
use spamward_net::{indexed_ip, Availability, Network, PortState, SMTP_PORT};
use spamward_sim::DetRng;
use std::net::Ipv4Addr;

/// Ground-truth mail configuration of a generated domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainTruth {
    /// Exactly one MX record (47.73% in Fig. 2).
    SingleMx,
    /// Two or more MX records, all servers real (45.97%).
    MultiMx,
    /// Deliberate nolisting: dead primary, live secondary (0.52%).
    Nolisting,
    /// DNS misconfiguration — no resolvable mail server (5.78%).
    Misconfigured,
}

impl DomainTruth {
    /// All four classes in Fig. 2 order.
    pub const ALL: [DomainTruth; 4] = [
        DomainTruth::SingleMx,
        DomainTruth::MultiMx,
        DomainTruth::Nolisting,
        DomainTruth::Misconfigured,
    ];
}

/// One generated domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainRecord {
    /// The domain name.
    pub name: DomainName,
    /// What the domain really is.
    pub truth: DomainTruth,
    /// Synthetic popularity rank (1 = most popular), unique per domain.
    pub alexa_rank: u32,
}

/// Parameters of population synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of domains to generate.
    pub domains: usize,
    /// Fraction with a single MX (Fig. 2: 0.4773).
    pub single_mx: f64,
    /// Fraction with multiple working MXs (Fig. 2: 0.4597).
    pub multi_mx: f64,
    /// Fraction using nolisting (Fig. 2: 0.0052).
    pub nolisting: f64,
    /// Fraction misconfigured (Fig. 2: 0.0578).
    pub misconfigured: f64,
    /// Fraction of *mail hosts* that flap (down in a random subset of scan
    /// epochs) — the noise source the double-scan exists to cancel.
    pub flaky_hosts: f64,
    /// Probability a flaky host is down in any given epoch.
    pub flaky_down_prob: f64,
}

impl PopulationSpec {
    /// The Fig. 2 mix at the given scale, with mild (2%) host flakiness —
    /// real mail servers are rarely down for a whole scan, which is what
    /// makes the paper's two-scan cross-check so clean (0.01% drift).
    pub fn fig2(domains: usize) -> Self {
        PopulationSpec {
            domains,
            single_mx: 0.4773,
            multi_mx: 0.4597,
            nolisting: 0.0052,
            misconfigured: 0.0578,
            flaky_hosts: 0.02,
            flaky_down_prob: 0.3,
        }
    }

    fn validate(&self) {
        let sum = self.single_mx + self.multi_mx + self.nolisting + self.misconfigured;
        assert!((sum - 1.0).abs() < 1e-6, "class fractions must sum to 1, got {sum}");
        assert!(self.domains > 0, "population needs at least one domain");
    }
}

/// First address of the population's mail-host range; domain `i`'s hosts
/// take the `2i` and `2i+1` slots of [`indexed_ip`] from here.
const HOST_IP_BASE: Ipv4Addr = Ipv4Addr::new(11, 0, 0, 1);

/// The compact per-domain record: everything random about a domain, packed
/// into sixteen bytes. Names, addresses and zones are derivable from the
/// index; [`PopulationStream::expand`] does so on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedDomain {
    /// Generation index (also determines names and addresses).
    pub index: u64,
    /// Ground truth class.
    pub truth: DomainTruth,
    /// Popularity rank, a permutation of `1..=N`.
    pub alexa_rank: u32,
    flags: u8,
}

const FLAG_FLAKY_0: u8 = 1;
const FLAG_FLAKY_1: u8 = 2;
const FLAG_DANGLING: u8 = 4;

impl PackedDomain {
    /// Whether the domain's first mail host flaps between epochs.
    pub fn flaky_first(&self) -> bool {
        self.flags & FLAG_FLAKY_0 != 0
    }

    /// Whether the domain's second mail host flaps between epochs.
    pub fn flaky_second(&self) -> bool {
        self.flags & FLAG_FLAKY_1 != 0
    }

    /// For misconfigured domains: dangling MX (vs lame delegation).
    pub fn dangling(&self) -> bool {
        self.flags & FLAG_DANGLING != 0
    }
}

/// One mail host of an expanded domain.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Host name (e.g. `mail.d7.example`).
    pub name: String,
    /// The host's address.
    pub ip: Ipv4Addr,
    /// Its SMTP port state.
    pub smtp: PortState,
    /// Its availability pattern.
    pub availability: Availability,
}

/// A fully expanded domain: the record plus everything needed to install
/// (or locally emulate) its corner of the internet.
#[derive(Debug, Clone)]
pub struct StreamedDomain {
    /// The domain record, name interned through the caller's table.
    pub record: DomainRecord,
    /// The domain's mail hosts (empty for misconfigured domains).
    pub hosts: Vec<HostSpec>,
    /// The domain's DNS zone.
    pub zone: Zone,
}

/// The streaming population generator — see the module docs.
#[derive(Debug, Clone)]
pub struct PopulationStream {
    spec: PopulationSpec,
    seed: u64,
    // Popularity ranks come from the affine bijection
    // `i ↦ ((a·i + b) mod N) + 1` with `gcd(a, N) = 1`, so any index's
    // rank is O(1) and the ranks are still a permutation of `1..=N`.
    rank_mult: u64,
    rank_offset: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl PopulationStream {
    /// Builds a stream for `spec`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's fractions don't sum to 1 or `domains == 0`.
    pub fn new(spec: PopulationSpec, seed: u64) -> PopulationStream {
        spec.validate();
        let n = spec.domains as u64;
        let mut rank_rng = DetRng::seed(seed).fork("population.rank");
        let mut rank_mult = (rank_rng.next_u64() % n).max(1);
        while gcd(rank_mult, n) != 1 {
            rank_mult += 1;
            if rank_mult >= n {
                rank_mult = 1;
            }
        }
        let rank_offset = rank_rng.next_u64() % n;
        PopulationStream { spec, seed, rank_mult, rank_offset }
    }

    /// The population size.
    pub fn len(&self) -> usize {
        self.spec.domains
    }

    /// Whether the stream is empty (never true — the spec rejects it).
    pub fn is_empty(&self) -> bool {
        self.spec.domains == 0
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation spec.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// Domain `i`'s name text.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name_of(&self, i: u64) -> String {
        assert!(i < self.spec.domains as u64, "domain index {i} out of range");
        format!("d{i}.example")
    }

    /// Domain `i`'s popularity rank.
    fn rank_of(&self, i: u64) -> u32 {
        let n = u128::from(self.spec.domains as u64);
        let r = (u128::from(self.rank_mult) * u128::from(i) + u128::from(self.rank_offset)) % n;
        u32::try_from(r + 1).expect("population fits u32 ranks")
    }

    /// Synthesizes domain `i`'s packed record — pure in `(seed, spec, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn packed(&self, i: u64) -> PackedDomain {
        assert!(i < self.spec.domains as u64, "domain index {i} out of range");
        let mut rng = DetRng::seed(self.seed).fork_idx("population.domain", i);
        let truth = {
            let x = rng.unit_f64();
            if x < self.spec.single_mx {
                DomainTruth::SingleMx
            } else if x < self.spec.single_mx + self.spec.multi_mx {
                DomainTruth::MultiMx
            } else if x < self.spec.single_mx + self.spec.multi_mx + self.spec.nolisting {
                DomainTruth::Nolisting
            } else {
                DomainTruth::Misconfigured
            }
        };
        let mut flags = 0u8;
        let mut flaky = |rng: &mut DetRng, bit: u8| {
            if rng.chance(self.spec.flaky_hosts) {
                flags |= bit;
            }
        };
        match truth {
            DomainTruth::SingleMx => flaky(&mut rng, FLAG_FLAKY_0),
            DomainTruth::MultiMx => {
                flaky(&mut rng, FLAG_FLAKY_0);
                flaky(&mut rng, FLAG_FLAKY_1);
            }
            // The dead primary is a machine, not a coin flip; only the
            // live secondary can flap.
            DomainTruth::Nolisting => flaky(&mut rng, FLAG_FLAKY_1),
            DomainTruth::Misconfigured => {
                if rng.chance(0.5) {
                    flags |= FLAG_DANGLING;
                }
            }
        }
        PackedDomain { index: i, truth, alexa_rank: self.rank_of(i), flags }
    }

    /// Expands a packed record into hosts and a zone, interning the domain
    /// name through `names`.
    ///
    /// # Panics
    ///
    /// Panics if the packed record's index is out of range.
    pub fn expand(&self, packed: &PackedDomain, names: &mut NameTable) -> StreamedDomain {
        let i = packed.index;
        let name = names.intern(&self.name_of(i)).expect("generated name is valid");
        let ip = |slot: u64| indexed_ip(HOST_IP_BASE, 2 * i + slot);
        let avail = |on: bool| {
            if on {
                Availability::Flaky { down_prob: self.spec.flaky_down_prob }
            } else {
                Availability::Up
            }
        };
        let (hosts, zone) = match packed.truth {
            DomainTruth::SingleMx => (
                vec![HostSpec {
                    name: format!("mail.{name}"),
                    ip: ip(0),
                    smtp: PortState::Open,
                    availability: avail(packed.flaky_first()),
                }],
                Zone::single_mx(name.clone(), ip(0)),
            ),
            DomainTruth::MultiMx => (
                vec![
                    HostSpec {
                        name: format!("mx1.{name}"),
                        ip: ip(0),
                        smtp: PortState::Open,
                        availability: avail(packed.flaky_first()),
                    },
                    HostSpec {
                        name: format!("mx2.{name}"),
                        ip: ip(1),
                        smtp: PortState::Open,
                        availability: avail(packed.flaky_second()),
                    },
                ],
                Zone::builder(name.clone()).mx(10, "mx1", ip(0)).mx(20, "mx2", ip(1)).build(),
            ),
            DomainTruth::Nolisting => (
                vec![
                    // The dead primary is a real machine that never opens
                    // port 25 — reliably down for SMTP in *every* epoch.
                    HostSpec {
                        name: format!("smtp.{name}"),
                        ip: ip(0),
                        smtp: PortState::Closed,
                        availability: Availability::Up,
                    },
                    HostSpec {
                        name: format!("smtp1.{name}"),
                        ip: ip(1),
                        smtp: PortState::Open,
                        availability: avail(packed.flaky_second()),
                    },
                ],
                Zone::nolisting(name.clone(), ip(0), ip(1)),
            ),
            DomainTruth::Misconfigured => {
                // Half dangling MX (target has no A record), half lame.
                let zone = if packed.dangling() {
                    Zone::dangling_mx(name.clone())
                } else {
                    Zone::builder(name.clone()).lame().build()
                };
                (Vec::new(), zone)
            }
        };
        let record = DomainRecord { name, truth: packed.truth, alexa_rank: packed.alexa_rank };
        StreamedDomain { record, hosts, zone }
    }

    /// Streams every packed record in index order.
    pub fn iter(&self) -> impl Iterator<Item = PackedDomain> + '_ {
        (0..self.spec.domains as u64).map(|i| self.packed(i))
    }
}

/// The generated internet: domains with ground truth, plus the network and
/// DNS they live in.
#[derive(Debug)]
pub struct Population {
    /// The generated domains, in generation order.
    pub domains: Vec<DomainRecord>,
    /// The simulated network hosting every mail server.
    pub network: Network,
    /// The DNS publishing every zone.
    pub dns: Authority,
    /// The symbol table interning every domain name.
    pub names: NameTable,
}

impl Population {
    /// Generates a population per `spec`, deterministically from `seed` —
    /// [`PopulationStream`] materialized in index order.
    ///
    /// # Panics
    ///
    /// Panics if the spec's fractions don't sum to 1.
    pub fn generate(spec: &PopulationSpec, seed: u64) -> Population {
        let stream = PopulationStream::new(spec.clone(), seed);
        // The table tag only guards against mixing ids across tables;
        // the seed's low bits make unrelated populations distinct.
        #[allow(clippy::cast_possible_truncation)]
        let mut names = NameTable::new(seed as u32);
        let mut network = Network::new(seed);
        let mut dns = Authority::new();
        let mut domains = Vec::with_capacity(stream.len());
        for packed in stream.iter() {
            let expanded = stream.expand(&packed, &mut names);
            for h in &expanded.hosts {
                network
                    .host(&h.name)
                    .ip(h.ip)
                    .port(SMTP_PORT, h.smtp)
                    .availability(h.availability.clone())
                    .build();
            }
            dns.publish(expanded.zone);
            domains.push(expanded.record);
        }
        Population { domains, network, dns, names }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the population is empty (never true for generated ones).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Counts domains per ground-truth class.
    pub fn truth_counts(&self) -> [(DomainTruth, usize); 4] {
        DomainTruth::ALL.map(|t| (t, self.domains.iter().filter(|d| d.truth == t).count()))
    }

    /// Ground-truth nolisting domains within the `k` most popular.
    pub fn nolisting_in_top_k(&self, k: u32) -> usize {
        self.domains
            .iter()
            .filter(|d| d.truth == DomainTruth::Nolisting && d.alexa_rank <= k)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_approximates_fig2() {
        let pop = Population::generate(&PopulationSpec::fig2(20_000), 1);
        let counts = pop.truth_counts();
        let frac = |t: DomainTruth| {
            counts.iter().find(|(c, _)| *c == t).unwrap().1 as f64 / pop.len() as f64
        };
        assert!((frac(DomainTruth::SingleMx) - 0.4773).abs() < 0.02);
        assert!((frac(DomainTruth::MultiMx) - 0.4597).abs() < 0.02);
        assert!((frac(DomainTruth::Misconfigured) - 0.0578).abs() < 0.01);
        assert!((frac(DomainTruth::Nolisting) - 0.0052).abs() < 0.005);
        assert!(frac(DomainTruth::Nolisting) > 0.0, "some nolisting domains must exist");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(&PopulationSpec::fig2(500), 7);
        let b = Population::generate(&PopulationSpec::fig2(500), 7);
        assert_eq!(a.domains, b.domains);
        let c = Population::generate(&PopulationSpec::fig2(500), 8);
        assert_ne!(a.domains, c.domains);
    }

    #[test]
    fn stream_is_order_independent() {
        // The record at index i must not depend on which other indices were
        // generated, or in what order — the property sharded scans rely on.
        let stream = PopulationStream::new(PopulationSpec::fig2(400), 11);
        let forward: Vec<PackedDomain> = stream.iter().collect();
        let mut backward: Vec<PackedDomain> = (0..400u64).rev().map(|i| stream.packed(i)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        // A sparse reader sees the same records a full reader does.
        for i in [0u64, 17, 113, 399] {
            assert_eq!(stream.packed(i), forward[i as usize]);
        }
    }

    #[test]
    fn expansion_matches_the_materialized_population() {
        let spec = PopulationSpec::fig2(600);
        let pop = Population::generate(&spec, 19);
        let stream = PopulationStream::new(spec, 19);
        let mut names = NameTable::new(7);
        for (i, record) in pop.domains.iter().enumerate() {
            let expanded = stream.expand(&stream.packed(i as u64), &mut names);
            assert_eq!(&expanded.record, record);
            for h in &expanded.hosts {
                let host = pop
                    .network
                    .iter()
                    .find(|n| n.name() == h.name)
                    .unwrap_or_else(|| panic!("{} missing from materialized network", h.name));
                assert_eq!(host.primary_ip(), h.ip);
                assert_eq!(host.port(SMTP_PORT), h.smtp);
            }
        }
    }

    #[test]
    fn nolisting_domains_have_dead_primary_live_secondary() {
        let pop = Population::generate(&PopulationSpec::fig2(2_000), 3);
        let nolisting: Vec<_> =
            pop.domains.iter().filter(|d| d.truth == DomainTruth::Nolisting).collect();
        assert!(!nolisting.is_empty());
        for d in nolisting {
            let primary_name = format!("smtp.{}", d.name);
            let host = pop
                .network
                .iter()
                .find(|h| h.name() == primary_name)
                .expect("nolisting primary host exists");
            assert_eq!(host.port(SMTP_PORT), PortState::Closed);
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let pop = Population::generate(&PopulationSpec::fig2(1_000), 5);
        let mut ranks: Vec<u32> = pop.domains.iter().map(|d| d.alexa_rank).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=1_000).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_rejected() {
        let mut spec = PopulationSpec::fig2(10);
        spec.single_mx = 0.9;
        let _ = Population::generate(&spec, 1);
    }

    #[test]
    fn misconfigured_domains_resolve_to_nothing() {
        let pop = Population::generate(&PopulationSpec::fig2(2_000), 9);
        let mut dns = pop.dns;
        let mut resolver = spamward_dns::Resolver::new();
        let misconf: Vec<_> =
            pop.domains.iter().filter(|d| d.truth == DomainTruth::Misconfigured).take(20).collect();
        assert!(!misconf.is_empty());
        for d in misconf {
            let result = resolver.resolve_mx(&mut dns, &d.name, spamward_sim::SimTime::ZERO);
            let unusable = match &result {
                Err(_) => true,
                Ok(mxs) => mxs.iter().all(|m| m.ip.is_none()),
            };
            assert!(unusable, "{}: misconfigured domain resolved {result:?}", d.name);
        }
    }
}
