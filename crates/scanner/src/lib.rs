//! Internet-wide scan simulation and the nolisting-detection pipeline.
//!
//! Fig. 2 of the paper comes from joining two `scans.io` datasets — a
//! DNS-ANY dump of 135 M domains and a full-IPv4 SMTP banner grab — and
//! classifying every domain's mail setup. The real datasets are gated; per
//! the substitution rule this crate rebuilds the *pipeline* against a
//! synthetic internet with known ground truth:
//!
//! * [`PopulationSpec`]/[`Population`] — generate domains with the Fig. 2
//!   topology mix (one MX 47.73%, multi-MX 45.97%, DNS misconfiguration
//!   5.78%, nolisting 0.52%), configurable host flakiness, and a Zipf-ish
//!   popularity ranking for the Alexa cross-check.
//! * [`DnsAnyScan`] — the DNS dataset, including MX records whose A
//!   records are missing (the entries the paper re-resolved with a
//!   parallel scanner — [`resolve_missing`] reproduces that step on the
//!   shard executor's ordered worker pool).
//! * [`BannerGrab`] — the SYN-scan dataset of listening port-25 hosts.
//! * [`NolistingDetector`] — the three-step classification plus the
//!   two-scans-months-apart cross-check, emitting [`Fig2Stats`] and (a
//!   luxury the paper didn't have) accuracy against ground truth.
//! * [`PopulationStream`]/[`scan_shard`] — the internet-scale path: the
//!   population as a streaming generator (any domain synthesized from its
//!   index in O(1)) and the whole pipeline run shard-by-shard over it in
//!   O(1) memory, merging byte-stably ([`ShardScanStats`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
pub mod metrics;
mod pipeline;
mod population;
mod shard_scan;

pub use dataset::{resolve_missing, BannerGrab, DnsAnyScan, MxRecordEntry};
pub use pipeline::{DetectorAccuracy, DomainClass, Fig2Stats, NolistingDetector, ScanRound};
pub use population::{
    DomainRecord, DomainTruth, HostSpec, PackedDomain, Population, PopulationSpec,
    PopulationStream, StreamedDomain,
};
pub use shard_scan::{scan_shard, ScanRoundStats, ShardScanStats};
