//! The unified experiment harness: one trait, one registry, one report type.
//!
//! Every paper artifact (Tables I–IV, Figs. 2–5, the §VI summary) and every
//! extension experiment implements [`Experiment`] and is listed once in the
//! static [`REGISTRY`]. Consumers — the `repro` CLI, the criterion benches,
//! the [`variance`](crate::experiments::variance) and
//! [`summary`](crate::experiments::summary) meta-experiments, and the
//! integration tests — iterate the registry instead of naming modules, so a
//! new workload is a registry entry rather than a new dispatch arm.
//!
//! A run is a pure function of ([`HarnessConfig::seed`],
//! [`HarnessConfig::scale`]): the returned [`Report`] renders canonically to
//! text, CSV and JSON, and the bytes are pinned by `tests/determinism.rs`
//! and the CI golden-snapshot job.
//!
//! ```
//! use spamward_core::harness::{find, HarnessConfig, Scale};
//!
//! let exp = find("table2").unwrap();
//! let config = HarnessConfig { scale: Scale::Quick, ..Default::default() };
//! let report = exp.run(&config).unwrap();
//! assert!(report.scalar("greylisting blocked (% of botnet spam)").is_some());
//! ```

use spamward_analysis::json::{json_array, json_f64, json_string};
use spamward_analysis::{Series, Table};
use spamward_obs::{Registry, TimeSeries, Timeline};
use spamward_sim::SimDuration;

use crate::experiments::{
    ablations, costs, dataset, deployment, dialects, efficacy, future_threats, kelihos, longterm,
    mta_schedules, nolisting_adoption, policy_backend, recovery, resilience, summary, variance,
    webmail,
};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's parameters — what `repro` reproduces by default.
    #[default]
    Paper,
    /// Reduced sizes for benches and tests; same code path, same
    /// determinism guarantees, seconds instead of minutes in debug builds.
    Quick,
}

/// The sampling cadence `repro --timeseries` selects: one telemetry
/// snapshot per virtual minute, matching the paper's per-minute scan and
/// retry granularities.
pub const DEFAULT_SAMPLE_INTERVAL: SimDuration = SimDuration::from_secs(60);

/// Virtual-time telemetry knobs, default-off so the canonical report
/// bytes (and the engine event stream) are untouched unless a consumer
/// opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Snapshot counters/gauges into [`Report::timeseries`] every this
    /// much virtual time (`None` = no sampler actor joins any episode).
    pub sample_interval: Option<SimDuration>,
    /// Record causally-linked per-message lifecycle events into
    /// [`Report::timeline`].
    pub timeline: bool,
}

impl TelemetryConfig {
    /// Whether any telemetry capture is on at all.
    pub fn enabled(&self) -> bool {
        self.sample_interval.is_some() || self.timeline
    }
}

/// Uniform knobs applied to every experiment.
///
/// `seed: None` means "the paper's default seed for this experiment"; a
/// `Some` seed overrides it uniformly (the fix for `--seed` silently being
/// dropped by some `repro` arms). Seedless experiments (Table I, Table IV,
/// dialects) ignore the override and say so via [`Experiment::seedable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HarnessConfig {
    /// Seed override; `None` keeps each experiment's paper default.
    pub seed: Option<u64>,
    /// Run size.
    pub scale: Scale,
    /// Capture delivery traces: experiments that drive a
    /// [`spamward_mta::MailWorld`] enable its tracer and attach the
    /// rendered events to the report via [`Report::push_trace_line`].
    /// Trace lines are diagnostics — they never enter the canonical
    /// text/CSV/JSON bytes (`repro --trace` routes them to stderr).
    pub trace: bool,
    /// Optional cap on discrete-event engine events per driven world.
    /// `None` (the default) means unbounded. World-driving experiments
    /// thread this into every [`spamward_mta::MailWorld`] they build and
    /// fail with [`HarnessError::BudgetExhausted`] if any episode was cut
    /// short; catalogue and meta experiments that drive no world ignore it.
    pub event_budget: Option<u64>,
    /// Worker threads for the shard executor of sharded experiments
    /// (`repro --shards`). The *partition* of a sharded experiment is
    /// fixed per experiment, so this only selects how many shards run
    /// concurrently — output bytes are identical for every value. `0`
    /// (the `Default`) means 1, via [`HarnessConfig::shard_workers`];
    /// experiments without a sharded path ignore it.
    pub shards: usize,
    /// Virtual-time telemetry capture (`repro --timeseries` /
    /// `--timeline`). Like `trace`, telemetry is diagnostics: it never
    /// enters the canonical text/CSV/JSON bytes, and the default-off
    /// state leaves the engine event stream byte-identical to a build
    /// without this field.
    pub telemetry: TelemetryConfig,
}

impl HarnessConfig {
    /// The effective seed given an experiment's paper default.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The effective shard-executor width: [`HarnessConfig::shards`],
    /// with the unset `Default` of 0 meaning serial execution.
    pub fn shard_workers(&self) -> usize {
        self.shards.max(1)
    }
}

/// A typed failure from an [`Experiment`] run.
///
/// The harness refuses to present a silently-truncated run as a result:
/// when an event budget cuts an episode short the whole run is an error,
/// not a report with quietly wrong numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The [`HarnessConfig::event_budget`] ran out mid-run: at least one
    /// engine episode ended [`spamward_sim::RunOutcome::BudgetExhausted`].
    BudgetExhausted {
        /// The experiment that was truncated.
        id: String,
        /// Episodes cut short by the budget.
        episodes_cut: u64,
        /// Engine events actually executed before exhaustion.
        events: u64,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::BudgetExhausted { id, episodes_cut, events } => write!(
                f,
                "experiment {id}: event budget exhausted after {events} engine events \
                 ({episodes_cut} episode(s) cut short) — results would be truncated"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

/// Asserts that a run's engine episodes all completed (drained or
/// horizon-reached): returns
/// [`HarnessError::BudgetExhausted`] if the collected metrics show any
/// episode was cut off by the event budget. Experiments call this on their
/// report's registry after `collect_world`, turning silent truncation into
/// a typed harness error.
pub fn ensure_completed(id: &str, metrics: &Registry) -> Result<(), HarnessError> {
    let cut = metrics.counter("sim.engine.outcome.budget_exhausted").unwrap_or(0);
    if cut > 0 {
        return Err(HarnessError::BudgetExhausted {
            id: id.to_owned(),
            episodes_cut: cut,
            events: metrics.counter("sim.engine.events").unwrap_or(0),
        });
    }
    Ok(())
}

/// A named headline number a report exposes for machine consumption
/// (variance CIs, the summary roll-up, grep).
#[derive(Debug, Clone, PartialEq)]
pub struct Scalar {
    /// Stable name, e.g. `"abandonment (%)"`.
    pub name: String,
    /// The value; non-finite values render as `n/a` / JSON `null`.
    pub value: f64,
}

/// The typed result of one experiment run.
///
/// Tables carry the paper tables, series the figure curves, scalars the
/// headline numbers, and text any pre-rendered blocks (ASCII plots, prose)
/// that have no tabular shape. All three renderings are canonical: the same
/// config yields the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    id: String,
    title: String,
    paper_artifact: String,
    seed: Option<u64>,
    metrics: Registry,
    tables: Vec<Table>,
    series: Vec<Series>,
    scalars: Vec<Scalar>,
    text: Vec<String>,
    /// Diagnostics only — never part of the canonical renderings.
    trace_lines: Vec<String>,
    /// Sampled virtual-time series (diagnostics; `--timeseries` exports).
    timeseries: TimeSeries,
    /// Flight-recorder lifecycle events (diagnostics; `--timeline`
    /// exports Chrome trace JSON).
    timeline: Timeline,
}

impl Report {
    /// Starts an empty report for the given experiment identity.
    pub fn new(id: &str, title: &str, paper_artifact: &str) -> Self {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            paper_artifact: paper_artifact.to_owned(),
            seed: None,
            metrics: Registry::new(),
            tables: Vec::new(),
            series: Vec::new(),
            scalars: Vec::new(),
            text: Vec::new(),
            trace_lines: Vec::new(),
            timeseries: TimeSeries::new(),
            timeline: Timeline::disabled(),
        }
    }

    /// Records the seed the run used (omit for seedless experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Appends a figure series.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Appends a named headline scalar.
    pub fn push_scalar(&mut self, name: &str, value: f64) -> &mut Self {
        self.scalars.push(Scalar { name: name.to_owned(), value });
        self
    }

    /// Appends a pre-rendered text block (ASCII plot, prose paragraph).
    pub fn push_text(&mut self, block: &str) -> &mut Self {
        self.text.push(block.to_owned());
        self
    }

    /// Write access to the report's metric registry; experiments call the
    /// per-crate `metrics::collect*` functions against this.
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.metrics
    }

    /// The metric snapshot the run produced.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Appends one rendered trace event (diagnostics; excluded from the
    /// canonical text/CSV/JSON bytes — `repro --trace` prints these to
    /// stderr).
    pub fn push_trace_line(&mut self, line: &str) -> &mut Self {
        self.trace_lines.push(line.to_owned());
        self
    }

    /// The captured trace lines, in event order.
    pub fn trace_lines(&self) -> &[String] {
        &self.trace_lines
    }

    /// The sampled virtual-time series (empty unless
    /// [`TelemetryConfig::sample_interval`] was set). Diagnostics like
    /// trace lines: excluded from every canonical rendering.
    pub fn timeseries(&self) -> &TimeSeries {
        &self.timeseries
    }

    /// Write access for experiments attaching their sampled series.
    pub fn timeseries_mut(&mut self) -> &mut TimeSeries {
        &mut self.timeseries
    }

    /// The flight-recorder timeline (disabled and empty unless
    /// [`TelemetryConfig::timeline`] was set). Diagnostics like trace
    /// lines: excluded from every canonical rendering.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Write access for experiments attaching their recorded timeline.
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// The experiment id this report came from.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The seed recorded for the run, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// The report's tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The report's figure series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// The report's headline scalars.
    pub fn scalars(&self) -> &[Scalar] {
        &self.scalars
    }

    /// Looks up a headline scalar by exact name.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// Renders the human-readable form `repro` prints: a header line, the
    /// tables, the text blocks, then the scalar block. Metrics are omitted;
    /// [`Report::to_text_with_metrics`] appends the full dump (`repro
    /// --metrics`).
    pub fn to_text(&self) -> String {
        self.render_text(false)
    }

    /// [`Report::to_text`] plus the full metric dump as a trailing
    /// `-- metrics --` section (omitted when the registry is empty).
    pub fn to_text_with_metrics(&self) -> String {
        self.render_text(true)
    }

    fn render_text(&self, with_metrics: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!("[{}] {} ({})", self.id, self.title, self.paper_artifact));
        if let Some(seed) = self.seed {
            out.push_str(&format!(" [seed {seed}]"));
        }
        out.push('\n');
        for table in &self.tables {
            out.push_str(&table.to_string());
        }
        for block in &self.text {
            out.push_str(block);
            if !block.ends_with('\n') {
                out.push('\n');
            }
        }
        for s in &self.scalars {
            out.push_str(&format!("{}: {}\n", s.name, fmt_scalar(s.value)));
        }
        if with_metrics && !self.metrics.is_empty() {
            out.push_str("-- metrics --\n");
            out.push_str(&self.metrics.to_text());
        }
        out
    }

    /// Renders the machine-readable CSV form: each table as RFC-4180 rows,
    /// then all series in long format, then `scalar,value` rows — sections
    /// separated by blank lines. Metrics are omitted;
    /// [`Report::to_csv_with_metrics`] appends them (`repro --metrics`).
    pub fn to_csv(&self) -> String {
        self.render_csv(false)
    }

    /// [`Report::to_csv`] plus the full metric dump as a trailing
    /// `metric,kind,value` section (omitted when the registry is empty).
    pub fn to_csv_with_metrics(&self) -> String {
        self.render_csv(true)
    }

    fn render_csv(&self, with_metrics: bool) -> String {
        let mut sections: Vec<String> = Vec::new();
        for table in &self.tables {
            sections.push(table.to_csv());
        }
        if !self.series.is_empty() {
            sections.push(Series::to_csv(&self.series));
        }
        if !self.scalars.is_empty() {
            let mut block = String::from("scalar,value\n");
            for s in &self.scalars {
                block.push_str(&format!(
                    "{},{}\n",
                    spamward_analysis::json::csv_field(&s.name),
                    fmt_scalar(s.value)
                ));
            }
            sections.push(block);
        }
        if with_metrics && !self.metrics.is_empty() {
            sections.push(self.metrics.to_csv());
        }
        sections.join("\n")
    }

    /// Renders the canonical JSON object. Key order is fixed
    /// (`id`, `title`, `paper_artifact`, `seed`, `metrics`, `scalars`,
    /// `tables`, `series`, `text`); floats use shortest-roundtrip
    /// formatting. These bytes are what the CI golden snapshot pins.
    /// Trace lines are deliberately absent.
    pub fn to_json(&self) -> String {
        let seed = match self.seed {
            Some(s) => format!("{s}"),
            None => "null".to_owned(),
        };
        let metrics = self.metrics.to_json();
        let scalars = json_array(self.scalars.iter().map(|s| {
            format!("{{\"name\":{},\"value\":{}}}", json_string(&s.name), json_f64(s.value))
        }));
        let tables = json_array(self.tables.iter().map(Table::to_json));
        let series = json_array(self.series.iter().map(Series::to_json));
        let text = json_array(self.text.iter().map(|t| json_string(t)));
        format!(
            "{{\"id\":{},\"title\":{},\"paper_artifact\":{},\"seed\":{seed},\
             \"metrics\":{metrics},\"scalars\":{scalars},\"tables\":{tables},\
             \"series\":{series},\"text\":{text}}}",
            json_string(&self.id),
            json_string(&self.title),
            json_string(&self.paper_artifact),
        )
    }
}

/// Formats a scalar for text/CSV output: integers bare, fractions with at
/// most four decimals (trailing zeros trimmed), non-finite as `n/a`.
pub fn fmt_scalar(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 1e12 {
        format!("{v:.0}")
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

/// One re-runnable experiment: a paper artifact or extension study.
///
/// Implementations are stateless unit structs; all state comes from the
/// [`HarnessConfig`]. `Sync` is required so the registry can be shared
/// across the `repro --jobs` worker pool.
pub trait Experiment: Sync {
    /// Stable CLI id (`repro <id>`), unique across the registry.
    fn id(&self) -> &'static str;
    /// One-line human title.
    fn title(&self) -> &'static str;
    /// Which paper artifact (or extension) this reproduces, e.g. `"Table II"`.
    fn paper_artifact(&self) -> &'static str;
    /// Whether [`HarnessConfig::seed`] affects the run. Defaults to `true`;
    /// deterministic catalogue experiments (Table I, Table IV, dialects)
    /// override to `false`.
    fn seedable(&self) -> bool {
        true
    }
    /// Runs the experiment and returns its typed report, or a typed error
    /// when the run could not complete (e.g. the
    /// [`HarnessConfig::event_budget`] truncated an engine episode).
    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError>;
}

/// Every experiment, in the order `repro all` runs and prints them.
///
/// This is the single source of truth: the CLI, the benches, the
/// completeness test and DESIGN.md's per-experiment index all derive from
/// this list.
pub static REGISTRY: [&dyn Experiment; 18] = [
    &dataset::Table1Experiment,
    &nolisting_adoption::AdoptionExperiment,
    &efficacy::EfficacyExperiment,
    &kelihos::Fig3Experiment,
    &kelihos::Fig4Experiment,
    &deployment::DeploymentExperiment,
    &webmail::WebmailExperiment,
    &mta_schedules::SchedulesExperiment,
    &summary::SummaryExperiment,
    &ablations::AblationsExperiment,
    &future_threats::FutureThreatsExperiment,
    &dialects::DialectsExperiment,
    &costs::CostsExperiment,
    &longterm::LongTermExperiment,
    &variance::VarianceExperiment,
    &resilience::ResilienceExperiment,
    &policy_backend::PolicyBackendExperiment,
    &recovery::RecoveryExperiment,
];

/// The full registry, in canonical order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks up an experiment by its CLI id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().find(|e| e.id() == id).copied()
}

/// The `repro --list` text: one row per registry entry. Lives here so the
/// CLI and the DESIGN.md completeness test render the identical listing.
pub fn list_text() -> String {
    let mut table =
        Table::new(vec!["id", "artifact", "seeded", "title"]).with_title("Registered experiments");
    for exp in registry() {
        table.row(vec![
            exp.id().to_owned(),
            exp.paper_artifact().to_owned(),
            if exp.seedable() { "yes" } else { "no" }.to_owned(),
            exp.title().to_owned(),
        ]);
    }
    table.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len, "duplicate experiment id in REGISTRY");
        for exp in registry() {
            let found = find(exp.id()).expect("registered id must resolve");
            assert_eq!(found.id(), exp.id());
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn all_paper_artifacts_are_reachable() {
        for id in
            ["table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "summary"]
        {
            assert!(find(id).is_some(), "paper artifact {id} missing from registry");
        }
    }

    #[test]
    fn report_renders_all_three_forms() {
        let mut table = Table::new(vec!["k", "v"]).with_title("T");
        table.row(vec!["a".into(), "1".into()]);
        let mut r = Report::new("demo", "Demo experiment", "Fig. 0").with_seed(7);
        r.push_table(table)
            .push_series(Series::new("curve", vec![(0.0, 0.5)]))
            .push_scalar("rate (%)", 56.69)
            .push_text("a plot\n");
        r.metrics_mut().record_counter("demo.events", 3);
        r.push_trace_line("0.000000 [demo] hello");

        let text = r.to_text();
        assert!(text.starts_with("[demo] Demo experiment (Fig. 0) [seed 7]\n"));
        assert!(text.contains("== T =="));
        assert!(text.contains("a plot\n"));
        assert!(text.contains("rate (%): 56.69\n"));
        assert!(!text.contains("-- metrics --"), "plain text omits the metric dump");
        let text_full = r.to_text_with_metrics();
        assert!(text_full.starts_with(&text));
        assert!(text_full.ends_with("-- metrics --\ndemo.events 3\n"));

        let csv = r.to_csv();
        assert!(csv.contains("k,v\na,1\n"));
        assert!(csv.contains("series,x,y\ncurve,0,0.5\n"));
        assert!(csv.contains("scalar,value\nrate (%),56.69\n"));
        assert!(!csv.contains("metric,kind,value"), "plain CSV omits the metric dump");
        let csv_full = r.to_csv_with_metrics();
        assert!(csv_full.ends_with("metric,kind,value\ndemo.events,counter,3\n"));

        let json = r.to_json();
        assert!(json.starts_with("{\"id\":\"demo\",\"title\":\"Demo experiment\""));
        assert!(json.contains("\"seed\":7"));
        assert!(json
            .contains("\"metrics\":[{\"name\":\"demo.events\",\"kind\":\"counter\",\"value\":3}]"));
        assert!(json.contains("{\"name\":\"rate (%)\",\"value\":56.69}"));
        assert!(json.ends_with("\"text\":[\"a plot\\n\"]}"));

        // Trace lines are diagnostics: present on the report, absent from
        // every canonical rendering.
        assert_eq!(r.trace_lines(), ["0.000000 [demo] hello"]);
        for rendering in [&text, &csv, &json] {
            assert!(!rendering.contains("[demo] hello"));
        }

        // Telemetry carriage is diagnostics too: attachable, readable,
        // absent from every canonical rendering.
        r.timeseries_mut().record_point("obs.sample.demo", spamward_sim::SimTime::from_secs(60), 4);
        r.timeline_mut().merge(&spamward_obs::Timeline::new());
        r.timeline_mut().record_event(
            "timeline.emit",
            spamward_sim::SimTime::ZERO,
            "demo-msg",
            String::new(),
        );
        assert_eq!(
            r.timeseries().get("obs.sample.demo", spamward_sim::SimTime::from_secs(60)),
            Some(4)
        );
        assert_eq!(r.timeline().len(), 1);
        for rendering in [r.to_text(), r.to_csv(), r.to_json()] {
            assert!(!rendering.contains("obs.sample.demo"));
            assert!(!rendering.contains("timeline.emit"));
        }
    }

    #[test]
    fn scalar_lookup_and_formatting() {
        let mut r = Report::new("x", "X", "none");
        r.push_scalar("n", 3.0).push_scalar("frac", 0.12345).push_scalar("bad", f64::NAN);
        assert_eq!(r.scalar("n"), Some(3.0));
        assert_eq!(r.scalar("missing"), None);
        assert_eq!(fmt_scalar(3.0), "3");
        assert_eq!(fmt_scalar(0.12345), "0.1235");
        assert_eq!(fmt_scalar(56.690000000000005), "56.69");
        assert_eq!(fmt_scalar(f64::NAN), "n/a");
        assert!(r.to_json().contains("{\"name\":\"bad\",\"value\":null}"));
    }

    #[test]
    fn seed_override_helper() {
        let default = HarnessConfig::default();
        assert_eq!(default.seed_or(42), 42);
        assert_eq!(default.scale, Scale::Paper);
        assert_eq!(default.event_budget, None);
        assert_eq!(default.shards, 0);
        assert_eq!(default.telemetry, TelemetryConfig::default());
        assert!(!default.telemetry.enabled(), "telemetry is opt-in");
        assert!(TelemetryConfig { timeline: true, ..Default::default() }.enabled());
        assert!(TelemetryConfig {
            sample_interval: Some(DEFAULT_SAMPLE_INTERVAL),
            timeline: false
        }
        .enabled());
        assert_eq!(default.shard_workers(), 1, "unset shards mean serial execution");
        assert_eq!(HarnessConfig { shards: 4, ..Default::default() }.shard_workers(), 4);
        let forced = HarnessConfig { seed: Some(9), scale: Scale::Quick, ..Default::default() };
        assert_eq!(forced.seed_or(42), 9);
    }

    #[test]
    fn ensure_completed_flags_budget_exhaustion() {
        let mut reg = Registry::new();
        assert_eq!(ensure_completed("fig5", &reg), Ok(()), "no engine metrics at all is fine");
        reg.record_counter("sim.engine.events", 120);
        reg.record_counter("sim.engine.outcome.budget_exhausted", 0);
        assert_eq!(ensure_completed("fig5", &reg), Ok(()));
        reg.record_counter("sim.engine.outcome.budget_exhausted", 3);
        let err = ensure_completed("fig5", &reg).unwrap_err();
        assert_eq!(
            err,
            HarnessError::BudgetExhausted { id: "fig5".into(), episodes_cut: 3, events: 120 }
        );
        assert!(err.to_string().contains("event budget exhausted"));
    }

    #[test]
    fn list_text_names_every_id() {
        let listing = list_text();
        for exp in registry() {
            assert!(listing.contains(exp.id()), "--list missing {}", exp.id());
        }
    }
}
