//! Metric names and collectors for the harness-level experiments.
//!
//! World-driven experiments get their metrics from the protocol crates'
//! own collectors (`spamward_mta::metrics::collect_world` and friends);
//! the catalogue and meta experiments below have no world to collect from,
//! so their counters are derived from the result structures here. As
//! everywhere else, the O1 lint confines the name literals to this module.

use crate::experiments::ablations::AblationsResult;
use crate::experiments::dataset::Table1;
use crate::experiments::dialects::DialectsResult;
use crate::experiments::mta_schedules::SchedulesResult;
use crate::experiments::summary::SummaryResult;
use crate::experiments::variance::VarianceResult;
use spamward_obs::Registry;

/// Families in the Table I inventory.
pub const TABLE1_FAMILIES: &str = "harness.table1.families";
/// Malware samples across all families.
pub const TABLE1_SAMPLES: &str = "harness.table1.samples";

/// MTAs in the Table IV catalogue.
pub const TABLE4_MTAS: &str = "harness.table4.mtas";
/// Retransmissions the catalogued schedules fire within the first ten hours.
pub const TABLE4_RETRIES_10H: &str = "harness.table4.retries_10h";
/// MTAs whose queue lifetime undercuts RFC 5321's 4–5 day guidance.
pub const TABLE4_BELOW_RFC: &str = "harness.table4.below_rfc_queue";

/// Sender models fingerprinted.
pub const DIALECTS_SENDERS: &str = "harness.dialects.senders";
/// Senders the heuristic classified as bots.
pub const DIALECTS_CLASSIFIED_BOT: &str = "harness.dialects.classified_bot";
/// Senders classified correctly.
pub const DIALECTS_CORRECT: &str = "harness.dialects.correct";

/// Threshold-sweep points measured.
pub const ABLATIONS_SWEEP_POINTS: &str = "harness.ablations.sweep_points";
/// Triplet-store evictions across the capacity ablation runs.
pub const ABLATIONS_STORE_EVICTIONS: &str = "harness.ablations.store_evictions";
/// Senders that delivered through the pregreet-only server.
pub const ABLATIONS_PREGREET_DELIVERED: &str = "harness.ablations.pregreet_delivered";
/// Senders the pregreet-only server stopped.
pub const ABLATIONS_PREGREET_BLOCKED: &str = "harness.ablations.pregreet_blocked";
/// Detector false positives summed over the scan-round ablation points.
pub const ABLATIONS_SCAN_FALSE_POSITIVES: &str = "harness.ablations.scan_false_positives";

/// Families blocked by nolisting in the §VI aggregate.
pub const SUMMARY_BLOCKED_NOLISTING: &str = "harness.summary.families_blocked.nolisting";
/// Families blocked by greylisting in the §VI aggregate.
pub const SUMMARY_BLOCKED_GREYLISTING: &str = "harness.summary.families_blocked.greylisting";
/// Families blocked by at least one defense.
pub const SUMMARY_BLOCKED_EITHER: &str = "harness.summary.families_blocked.either";

/// Prefix of the per-shard sampled series (`obs.sample.shard.<n>.events`)
/// that sharded experiments append to their time-series at the horizon,
/// so a `--timeseries` export shows how work split across the fixed
/// partition. Dynamic suffix; the base name lives here for the O2 lint.
pub const SAMPLE_SHARD_PREFIX: &str = "obs.sample.shard.";

/// Quantities tracked by the variance sweep.
pub const VARIANCE_QUANTITIES: &str = "harness.variance.quantities";
/// Per-seed experiment runs the sweep aggregated.
pub const VARIANCE_SEED_RUNS: &str = "harness.variance.seed_runs";

/// Exports the Table I inventory shape.
pub fn collect_table1(t: &Table1, reg: &mut Registry) {
    reg.record_counter(TABLE1_FAMILIES, t.rows.len() as u64);
    reg.record_counter(TABLE1_SAMPLES, t.rows.iter().map(|r| u64::from(r.2)).sum());
}

/// Exports the Table IV catalogue shape.
pub fn collect_schedules(r: &SchedulesResult, reg: &mut Registry) {
    reg.record_counter(TABLE4_MTAS, r.rows.len() as u64);
    reg.record_counter(
        TABLE4_RETRIES_10H,
        r.rows.iter().map(|row| row.retransmission_mins.len() as u64).sum(),
    );
    reg.record_counter(TABLE4_BELOW_RFC, r.below_rfc_queue_time().len() as u64);
}

/// Exports the dialect-classification confusion counts.
pub fn collect_dialects(r: &DialectsResult, reg: &mut Registry) {
    reg.record_counter(DIALECTS_SENDERS, r.observations.len() as u64);
    reg.record_counter(
        DIALECTS_CLASSIFIED_BOT,
        r.observations.iter().filter(|o| o.classified_bot).count() as u64,
    );
    reg.record_counter(
        DIALECTS_CORRECT,
        r.observations.iter().filter(|o| o.classified_bot == o.is_bot).count() as u64,
    );
}

/// Exports aggregate counts over the six design-choice ablations.
pub fn collect_ablations(r: &AblationsResult, reg: &mut Registry) {
    reg.record_counter(ABLATIONS_SWEEP_POINTS, r.sweep.len() as u64);
    reg.record_counter(ABLATIONS_STORE_EVICTIONS, r.store_caps.iter().map(|c| c.evictions).sum());
    reg.record_counter(
        ABLATIONS_PREGREET_DELIVERED,
        r.pregreet.iter().filter(|p| p.delivered).count() as u64,
    );
    reg.record_counter(
        ABLATIONS_PREGREET_BLOCKED,
        r.pregreet.iter().filter(|p| !p.delivered).count() as u64,
    );
    reg.record_counter(
        ABLATIONS_SCAN_FALSE_POSITIVES,
        r.scan_rounds.iter().map(|p| p.false_positives as u64).sum(),
    );
}

/// Exports the §VI per-family block verdicts as counts.
pub fn collect_summary(r: &SummaryResult, reg: &mut Registry) {
    reg.record_counter(
        SUMMARY_BLOCKED_NOLISTING,
        r.rows.iter().filter(|(_, _, nl, _)| *nl).count() as u64,
    );
    reg.record_counter(
        SUMMARY_BLOCKED_GREYLISTING,
        r.rows.iter().filter(|(_, _, _, gl)| *gl).count() as u64,
    );
    reg.record_counter(
        SUMMARY_BLOCKED_EITHER,
        r.rows.iter().filter(|(_, _, nl, gl)| *nl || *gl).count() as u64,
    );
}

/// Exports the variance sweep's coverage counts.
pub fn collect_variance(r: &VarianceResult, reg: &mut Registry) {
    reg.record_counter(VARIANCE_QUANTITIES, r.rows.len() as u64);
    reg.record_counter(VARIANCE_SEED_RUNS, r.rows.iter().map(|row| row.ci.n as u64).sum());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_collection_matches_inventory() {
        let t = crate::experiments::dataset::run();
        let mut reg = Registry::new();
        collect_table1(&t, &mut reg);
        assert_eq!(reg.counter(TABLE1_FAMILIES), Some(4));
        assert_eq!(reg.counter(TABLE1_SAMPLES), Some(11));
    }

    #[test]
    fn schedules_collection_matches_catalogue() {
        let r = crate::experiments::mta_schedules::run();
        let mut reg = Registry::new();
        collect_schedules(&r, &mut reg);
        assert_eq!(reg.counter(TABLE4_MTAS), Some(6));
        assert_eq!(reg.counter(TABLE4_BELOW_RFC), Some(1));
        assert!(reg.counter(TABLE4_RETRIES_10H).unwrap_or(0) > 30);
    }

    #[test]
    fn dialects_collection_counts_the_confusion_matrix() {
        let r = crate::experiments::dialects::run();
        let mut reg = Registry::new();
        collect_dialects(&r, &mut reg);
        assert_eq!(reg.counter(DIALECTS_SENDERS), Some(6));
        let correct = reg.counter(DIALECTS_CORRECT).expect("recorded");
        assert_eq!(correct as f64 / 6.0, r.accuracy());
    }
}
