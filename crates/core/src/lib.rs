//! The `spamward` study: every experiment of *"Measuring the Role of
//! Greylisting and Nolisting in Fighting Spam"* (DSN 2016), re-runnable.
//!
//! Each paper artifact has one module under [`experiments`], exposing a
//! `Config` (seeded, with the paper's parameters as defaults), a `run`
//! function, and a `Result` type that renders the corresponding table or
//! figure:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::dataset`] | Table I — malware families & samples |
//! | [`experiments::nolisting_adoption`] | Fig. 2 — worldwide nolisting adoption |
//! | [`experiments::efficacy`] | Table II — per-family ✓/✗ matrix |
//! | [`experiments::kelihos`] | Fig. 3 (5 s / 300 s CDFs) and Fig. 4 (21 600 s long run) |
//! | [`experiments::deployment`] | Fig. 5 — benign delivery delay at a real deployment |
//! | [`experiments::webmail`] | Table III — webmail retries at a 6 h threshold |
//! | [`experiments::mta_schedules`] | Table IV — MTA retransmission schedules |
//! | [`experiments::summary`] | §VI headline — spam prevented by either technique |
//! | [`experiments::ablations`] | design-choice sweeps DESIGN.md calls out |
//!
//! Extension experiments with no direct paper artifact:
//!
//! | Module | Question it answers |
//! |---|---|
//! | [`experiments::dialects`] | can transcripts alone tell bots from MTAs (B@bel, §II)? |
//! | [`experiments::future_threats`] | which adaptations obsolete which defense (§VI outlook)? |
//! | [`experiments::costs`] | what do the defenses charge the system and the Internet (§VI)? |
//! | [`experiments::longterm`] | does effectiveness hold month over month (Sochor, §VII)? |
//! | [`experiments::variance`] | how seed-robust is every headline number? |
//!
//! All of the above are registered in the [`harness`] — an [`harness::Experiment`]
//! trait plus static registry — which is how the `repro` CLI, the criterion
//! benches and the meta-experiments reach them uniformly:
//!
//! ```
//! use spamward_core::harness::{registry, HarnessConfig, Scale};
//!
//! let config = HarnessConfig { seed: Some(7), scale: Scale::Quick, ..Default::default() };
//! let report = registry()[2].run(&config).unwrap(); // table2
//! assert_eq!(report.id(), "table2");
//! ```
//!
//! ```
//! use spamward_core::experiments::efficacy;
//!
//! let result = efficacy::run(&efficacy::EfficacyConfig::default());
//! // Nolisting stops Kelihos; greylisting stops everything else.
//! assert!(result.family_row("Kelihos").unwrap().nolisting_blocked);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod metrics;
mod runner;

pub use runner::{run_seeds, SeedRun};
