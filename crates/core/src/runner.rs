//! Multi-seed experiment execution on the shard executor.

use spamward_sim::shard::run_partitioned;

/// One seed's result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun<T> {
    /// The seed the run used.
    pub seed: u64,
    /// What the run produced.
    pub output: T,
}

/// Runs `f(seed)` for every seed, fanning out across `workers` threads,
/// and returns results ordered by seed.
///
/// Experiment functions are pure given their seed, so this is safe
/// parallelism for sweeps (used by the threshold ablation and the
/// benches). The fan-out is
/// [`run_partitioned`](spamward_sim::shard::run_partitioned), so the
/// result is byte-identical to a serial map regardless of `workers`.
///
/// # Panics
///
/// Panics if `workers == 0` or a worker panics.
pub fn run_seeds<T, F>(seeds: &[u64], workers: usize, f: F) -> Vec<SeedRun<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let mut out =
        run_partitioned(seeds.to_vec(), workers, |seed| SeedRun { seed, output: f(seed) });
    out.sort_by_key(|r| r.seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_seeds_in_order() {
        let seeds = [5u64, 1, 9, 3];
        let results = run_seeds(&seeds, 2, |s| s * 10);
        let pairs: Vec<(u64, u64)> = results.iter().map(|r| (r.seed, r.output)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50), (9, 90)]);
    }

    #[test]
    fn single_worker_and_empty_seeds() {
        let results = run_seeds(&[], 4, |s| s);
        assert!(results.is_empty());
        let results = run_seeds(&[7], 1, |s| s + 1);
        assert_eq!(results[0].output, 8);
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds: Vec<u64> = (0..50).collect();
        let serial = run_seeds(&seeds, 1, |s| s * s);
        let parallel = run_seeds(&seeds, 8, |s| s * s);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_seeds(&[1], 0, |s| s);
    }
}
