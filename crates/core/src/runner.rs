//! Multi-seed experiment execution with a crossbeam worker pool.

use crossbeam::channel;

/// One seed's result.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun<T> {
    /// The seed the run used.
    pub seed: u64,
    /// What the run produced.
    pub output: T,
}

/// Runs `f(seed)` for every seed, fanning out across `workers` threads,
/// and returns results ordered by seed.
///
/// Experiment functions are pure given their seed, so this is safe
/// parallelism for sweeps (used by the threshold ablation and the
/// benches).
///
/// # Panics
///
/// Panics if `workers == 0` or a worker panics.
pub fn run_seeds<T, F>(seeds: &[u64], workers: usize, f: F) -> Vec<SeedRun<T>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let (job_tx, job_rx) = channel::unbounded::<u64>();
    let (res_tx, res_rx) = channel::unbounded::<SeedRun<T>>();
    for &s in seeds {
        job_tx.send(s).expect("queue seeds");
    }
    drop(job_tx);

    crossbeam::scope(|scope| {
        for _ in 0..workers.min(seeds.len().max(1)) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok(seed) = job_rx.recv() {
                    let output = f(seed);
                    res_tx.send(SeedRun { seed, output }).expect("report result");
                }
            });
        }
        drop(res_tx);
    })
    .expect("seed workers never panic");

    let mut out: Vec<SeedRun<T>> = res_rx.iter().collect();
    out.sort_by_key(|r| r.seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_seeds_in_order() {
        let seeds = [5u64, 1, 9, 3];
        let results = run_seeds(&seeds, 2, |s| s * 10);
        let pairs: Vec<(u64, u64)> = results.iter().map(|r| (r.seed, r.output)).collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50), (9, 90)]);
    }

    #[test]
    fn single_worker_and_empty_seeds() {
        let results = run_seeds(&[], 4, |s| s);
        assert!(results.is_empty());
        let results = run_seeds(&[7], 1, |s| s + 1);
        assert_eq!(results[0].output, 8);
    }

    #[test]
    fn parallel_matches_serial() {
        let seeds: Vec<u64> = (0..50).collect();
        let serial = run_seeds(&seeds, 1, |s| s * s);
        let parallel = run_seeds(&seeds, 8, |s| s * s);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_seeds(&[1], 0, |s| s);
    }
}
