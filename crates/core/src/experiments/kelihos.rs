//! Figs. 3 and 4 — Kelihos versus the greylisting threshold.
//!
//! Fig. 3 plots the CDF of Kelihos' spam delivery delay under a 5 s and a
//! 300 s threshold; the curves nearly coincide because the malware never
//! retries before ~300 s regardless. Fig. 4 raises the threshold to
//! 21 600 s and plots every retransmission over a ~25 h horizon: failed
//! attempts (blue) cluster in three peaks, and deliveries (red) only
//! happen past the threshold, in the 80–90 ks band.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::{plot, Cdf, Histogram, Series};
use spamward_botnet::{BotSample, Campaign, MalwareFamily};
use spamward_obs::Registry;
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// Configuration for the Kelihos threshold experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct KelihosConfig {
    /// RNG seed.
    pub seed: u64,
    /// Victims in the spam campaign.
    pub recipients: usize,
    /// Observation horizon (Fig. 4 needs ≥ 90 000 s).
    pub horizon: SimDuration,
    /// Engine event budget shared by every per-threshold world
    /// (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for KelihosConfig {
    fn default() -> Self {
        KelihosConfig {
            seed: 1337,
            recipients: 200,
            horizon: SimDuration::from_secs(100_000),
            event_budget: None,
        }
    }
}

/// One attempt from the Fig. 4 scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Seconds since the campaign's first attempt for this victim.
    pub delay_secs: f64,
    /// Whether this attempt delivered (red) or failed (blue).
    pub delivered: bool,
}

/// Output of one threshold run.
#[derive(Debug, Clone)]
pub struct ThresholdRun {
    /// The greylisting threshold used.
    pub threshold: SimDuration,
    /// Delivery-delay CDF of the delivered messages.
    pub cdf: Cdf,
    /// Fraction of campaign messages eventually delivered.
    pub delivery_rate: f64,
    /// All attempts (for the Fig. 4 scatter).
    pub attempts: Vec<ScatterPoint>,
}

/// The combined Fig. 3 + Fig. 4 result.
#[derive(Debug, Clone)]
pub struct KelihosResult {
    /// The 5 s run (Fig. 3a).
    pub fast: ThresholdRun,
    /// The 300 s run (Fig. 3b).
    pub default: ThresholdRun,
    /// The 21 600 s run (Fig. 4).
    pub extreme: ThresholdRun,
    /// KS distance between the 5 s and 300 s CDFs (the "similarity between
    /// the two curves" claim).
    pub fig3_ks_distance: f64,
    /// Whether the one-spam-task control held: every message seen at the
    /// unprotected postmaster address equals the campaign message.
    pub single_task_confirmed: bool,
}

fn run_threshold(
    config: &KelihosConfig,
    threshold: SimDuration,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> ThresholdRun {
    let mut world = worlds::greylist_world(config.seed, threshold);
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    let mut bot = BotSample::new(MalwareFamily::Kelihos, 0, Ipv4Addr::new(203, 0, 113, 99));
    let mut rng = DetRng::seed(config.seed).fork("kelihos-campaign");
    let campaign = Campaign::synthetic(VICTIM_DOMAIN, config.recipients, &mut rng);
    let report =
        bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::ZERO + config.horizon);
    spamward_mta::metrics::collect_world(&world, reg);
    spamward_botnet::metrics::collect_run(MalwareFamily::Kelihos, &report, reg);
    trace_lines.extend(world.trace.events().map(|e| e.to_string()));

    let delays: Vec<SimDuration> =
        report.attempts.iter().filter(|a| a.delivered).map(|a| a.since_first).collect();
    let attempts = report
        .attempts
        .iter()
        .map(|a| ScatterPoint { delay_secs: a.since_first.as_secs_f64(), delivered: a.delivered })
        .collect();
    ThresholdRun {
        threshold,
        cdf: Cdf::from_durations(delays),
        delivery_rate: report.delivery_rate(),
        attempts,
    }
}

/// Runs all three thresholds plus the one-spam-task control.
pub fn run(config: &KelihosConfig) -> KelihosResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs all three thresholds, aggregating per-world protocol metrics into
/// `reg` and (when `trace` is set) draining delivery traces into
/// `trace_lines`.
pub fn run_with_obs(
    config: &KelihosConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> KelihosResult {
    let fast = run_threshold(config, SimDuration::from_secs(5), trace, reg, trace_lines);
    let default = run_threshold(config, SimDuration::from_secs(300), trace, reg, trace_lines);
    let extreme = run_threshold(config, SimDuration::from_secs(21_600), trace, reg, trace_lines);
    let fig3_ks_distance = fast.cdf.ks_distance(&default.cdf);

    // One-spam-task control: re-run the extreme threshold with an
    // unprotected postmaster recipient added; all postmaster copies must
    // be the same message as the campaign's.
    let single_task_confirmed = {
        let mut world = worlds::greylist_world(config.seed, SimDuration::from_secs(21_600));
        world.event_budget = config.event_budget;
        let mut bot = BotSample::new(MalwareFamily::Kelihos, 0, Ipv4Addr::new(203, 0, 113, 99));
        let mut rng = DetRng::seed(config.seed).fork("kelihos-campaign");
        let mut campaign = Campaign::synthetic(VICTIM_DOMAIN, 10, &mut rng);
        campaign
            .recipients
            .push(format!("postmaster@{VICTIM_DOMAIN}").parse().expect("valid control address"));
        let digest = campaign.message.digest();
        bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::ZERO + config.horizon);
        let mailbox = world.server(VICTIM_MX_IP).expect("victim server").mailbox();
        let postmaster_copies: Vec<_> = mailbox
            .iter()
            .filter(|m| m.envelope.recipients().iter().any(|r| r.local_part() == "postmaster"))
            .collect();
        !postmaster_copies.is_empty()
            && postmaster_copies.iter().all(|m| m.message.digest() == digest)
    };

    KelihosResult { fast, default, extreme, fig3_ks_distance, single_task_confirmed }
}

impl KelihosResult {
    /// The Fig. 3 CDF curves as plot series (x = seconds, y = F(x)).
    pub fn fig3_series(&self) -> Vec<Series> {
        vec![
            Series::new("greylist-5s", self.fast.cdf.to_points(100)),
            Series::new("greylist-300s", self.default.cdf.to_points(100)),
        ]
    }

    /// The Fig. 4 scatter as two series (failed / delivered attempts;
    /// x = delay seconds, y = 0/1 marker).
    pub fn fig4_series(&self) -> Vec<Series> {
        let pick = |delivered: bool| {
            self.extreme
                .attempts
                .iter()
                .filter(|p| p.delivered == delivered && p.delay_secs > 0.0)
                .map(|p| (p.delay_secs, if delivered { 1.0 } else { 0.0 }))
                .collect::<Vec<_>>()
        };
        vec![Series::new("failed", pick(false)), Series::new("delivered", pick(true))]
    }

    /// The retry peaks of the Fig. 4 run, as `(lo, hi)` second bounds of
    /// each detected histogram peak.
    pub fn fig4_peaks(&self) -> Vec<(f64, f64)> {
        let mut hist = Histogram::logarithmic(100.0, 100_000.0, 30);
        hist.extend(
            self.extreme.attempts.iter().filter(|p| p.delay_secs > 0.0).map(|p| p.delay_secs),
        );
        hist.peaks(self.extreme.attempts.len() as u64 / 100)
            .into_iter()
            .map(|i| hist.bin_edges(i))
            .collect()
    }
}

impl fmt::Display for KelihosResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 3: Kelihos delivery-delay CDFs ==")?;
        for run in [&self.fast, &self.default] {
            writeln!(
                f,
                "threshold {:>6}: delivered {:.0}%, median delay {:.0} s, min {:.0} s",
                run.threshold.to_string(),
                run.delivery_rate * 100.0,
                run.cdf.quantile(0.5),
                run.cdf.min(),
            )?;
        }
        writeln!(
            f,
            "KS distance between curves: {:.3} (curves nearly coincide)",
            self.fig3_ks_distance
        )?;
        writeln!(f)?;
        writeln!(f, "== Figure 4: retransmissions at a 21600 s threshold ==")?;
        writeln!(
            f,
            "attempts {} (failed {}, delivered {}), delivery rate {:.0}%",
            self.extreme.attempts.len(),
            self.extreme.attempts.iter().filter(|p| !p.delivered).count(),
            self.extreme.attempts.iter().filter(|p| p.delivered).count(),
            self.extreme.delivery_rate * 100.0
        )?;
        for (lo, hi) in self.fig4_peaks() {
            writeln!(f, "  retry peak in [{lo:.0} s, {hi:.0} s]")?;
        }
        writeln!(f, "one-spam-task control held: {}", self.single_task_confirmed)
    }
}

/// The module config a harness config maps to (one Kelihos run feeds both
/// the Fig. 3 and Fig. 4 registry entries).
fn kelihos_config(harness: &HarnessConfig) -> KelihosConfig {
    KelihosConfig {
        seed: harness.seed_or(KelihosConfig::default().seed),
        recipients: match harness.scale {
            Scale::Paper => KelihosConfig::default().recipients,
            Scale::Quick => 40,
        },
        event_budget: harness.event_budget,
        ..Default::default()
    }
}

/// Registry entry for the Fig. 3 delivery-delay CDFs.
pub struct Fig3Experiment;

impl Experiment for Fig3Experiment {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "Kelihos delivery-delay CDFs (5 s vs 300 s threshold)"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig. 3"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = kelihos_config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        let mut lines = String::new();
        for r in [&result.fast, &result.default] {
            lines.push_str(&format!(
                "threshold {:>6}: delivered {:.0}%, median delay {:.0} s, min {:.0} s\n",
                r.threshold.to_string(),
                r.delivery_rate * 100.0,
                r.cdf.quantile(0.5),
                r.cdf.min(),
            ));
        }
        report
            .push_text(&lines)
            .push_text(&format!(
                "CDF of the 300 s run (x = seconds since first attempt):\n{}",
                plot::ascii_cdf(&result.default.cdf, 60, 10)
            ))
            .push_scalar("5 s delivery rate (%)", result.fast.delivery_rate * 100.0)
            .push_scalar("300 s delivery rate (%)", result.default.delivery_rate * 100.0)
            .push_scalar("5 s median delay (s)", result.fast.cdf.quantile(0.5))
            .push_scalar("300 s median delay (s)", result.default.cdf.quantile(0.5))
            .push_scalar("KS distance", result.fig3_ks_distance);
        for series in result.fig3_series() {
            report.push_series(series);
        }
        Ok(report)
    }
}

/// Registry entry for the Fig. 4 long-run retransmission scatter.
pub struct Fig4Experiment;

impl Experiment for Fig4Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }

    fn title(&self) -> &'static str {
        "Kelihos retransmissions at a 21600 s threshold"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig. 4"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = kelihos_config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        let failed = result.extreme.attempts.iter().filter(|p| !p.delivered).count();
        let delivered = result.extreme.attempts.iter().filter(|p| p.delivered).count();
        let mut peaks = String::new();
        for (lo, hi) in result.fig4_peaks() {
            peaks.push_str(&format!("  retry peak in [{lo:.0} s, {hi:.0} s]\n"));
        }
        let mut hist = Histogram::logarithmic(100.0, 100_000.0, 18);
        hist.extend(
            result.extreme.attempts.iter().filter(|p| p.delay_secs > 0.0).map(|p| p.delay_secs),
        );
        report
            .push_text(&peaks)
            .push_text(&format!(
                "retransmission-delay histogram (seconds, log bins):\n{}",
                plot::ascii_histogram(&hist, 40)
            ))
            .push_scalar("attempts", result.extreme.attempts.len() as f64)
            .push_scalar("failed attempts", failed as f64)
            .push_scalar("delivered attempts", delivered as f64)
            .push_scalar("delivery rate (%)", result.extreme.delivery_rate * 100.0)
            .push_scalar("retry peaks", result.fig4_peaks().len() as f64)
            .push_scalar(
                "one-spam-task control held",
                f64::from(u8::from(result.single_task_confirmed)),
            );
        for series in result.fig4_series() {
            report.push_series(series);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> KelihosResult {
        run(&KelihosConfig { recipients: 60, ..Default::default() })
    }

    #[test]
    fn fig3_curves_nearly_coincide() {
        let r = quick();
        // Both thresholds deliver everything...
        assert_eq!(r.fast.delivery_rate, 1.0);
        assert_eq!(r.default.delivery_rate, 1.0);
        // ...on the first retry, ≥300 s, regardless of the threshold.
        assert!(r.fast.cdf.min() >= 300.0, "min {}", r.fast.cdf.min());
        assert!(r.fast.cdf.max() < 600.0);
        assert!(r.fig3_ks_distance < 0.25, "KS {}", r.fig3_ks_distance);
    }

    #[test]
    fn fig4_delivers_only_past_threshold() {
        let r = quick();
        assert_eq!(r.extreme.delivery_rate, 1.0, "Kelihos eventually clears 6 h");
        for p in r.extreme.attempts.iter().filter(|p| p.delivered) {
            assert!(p.delay_secs >= 80_000.0 && p.delay_secs < 90_000.0);
        }
        for p in r.extreme.attempts.iter().filter(|p| !p.delivered && p.delay_secs > 0.0) {
            assert!(p.delay_secs < 21_600.0, "failed attempt past threshold at {}", p.delay_secs);
        }
    }

    #[test]
    fn fig4_finds_three_peaks() {
        let r = quick();
        let peaks = r.fig4_peaks();
        assert!(peaks.len() >= 3, "expected ≥3 peaks, got {peaks:?}");
        let covers = |lo: f64, hi: f64| peaks.iter().any(|&(a, b)| b > lo && a < hi);
        assert!(covers(300.0, 600.0), "missing 300–600 s peak: {peaks:?}");
        assert!(covers(4_500.0, 5_500.0), "missing ~5 ks peak: {peaks:?}");
        assert!(covers(80_000.0, 90_000.0), "missing 80–90 ks peak: {peaks:?}");
    }

    #[test]
    fn one_task_control_holds() {
        assert!(quick().single_task_confirmed);
    }

    #[test]
    fn series_exports() {
        let r = quick();
        let fig3 = r.fig3_series();
        assert_eq!(fig3.len(), 2);
        assert!(!fig3[0].is_empty());
        let fig4 = r.fig4_series();
        assert_eq!(fig4.len(), 2);
        assert!(!fig4[1].is_empty(), "delivered series must have points");
        let csv = Series::to_csv(&fig3);
        assert!(csv.contains("greylist-300s"));
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("Figure 3"));
        assert!(out.contains("Figure 4"));
        assert!(out.contains("retry peak"));
    }
}
