//! Table II — effect of nolisting and greylisting on the malware families.
//!
//! Each of the eleven Table I samples runs for a 30-minute observation
//! window (the paper's per-sample budget) against (a) a nolisting victim
//! and (b) a greylisting victim at the 300 s Postgrey default. A ✓ means
//! the defense prevented *every* spam message of that sample.
//!
//! Samples are independent (each gets its own campaign RNG fork and fresh
//! per-defense worlds), so the matrix runs sharded: the roster partitions
//! into [`EFFICACY_SHARDS`] fixed shards by stable hash of the sample
//! name, rows and traces reassemble in roster order, and the per-shard
//! metric registries merge — the report bytes equal the serial run's for
//! every executor width.

use crate::experiments::worlds::{self, VICTIM_DOMAIN};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use crate::metrics::SAMPLE_SHARD_PREFIX;
use spamward_analysis::Table;
use spamward_botnet::{BotSample, Campaign, MalwareFamily};
use spamward_obs::{Registry, TimeSeries, Timeline};
use spamward_sim::shard::run_sharded;
use spamward_sim::{DetRng, ShardPlan, SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// Fixed shard count of the roster partition. Samples are assigned to
/// shards by stable hash of their name, never by worker id, so
/// [`EfficacyConfig::workers`] only picks how many shards run at once.
pub const EFFICACY_SHARDS: u32 = 8;

/// Configuration of the Table II experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Victims per sample campaign.
    pub recipients: usize,
    /// Observation window per sample (paper: 30 minutes).
    pub window: SimDuration,
    /// Greylisting threshold (paper default: 300 s).
    pub greylist_delay: SimDuration,
    /// Engine event budget per run, shared by every per-sample world
    /// (`None` = unbounded).
    pub event_budget: Option<u64>,
    /// Shard-executor width: how many of the [`EFFICACY_SHARDS`] run
    /// concurrently. Output bytes are identical for every value.
    pub workers: usize,
    /// Sample telemetry counters into a time-series at this virtual-time
    /// interval (`None` = no sampler joins the per-sample episodes).
    pub sample_interval: Option<SimDuration>,
    /// Record per-message lifecycle timelines in every per-sample world.
    pub timeline: bool,
}

impl Default for EfficacyConfig {
    fn default() -> Self {
        EfficacyConfig {
            seed: 42,
            recipients: 20,
            window: SimDuration::from_mins(30),
            greylist_delay: SimDuration::from_secs(300),
            event_budget: None,
            workers: 4,
            sample_interval: None,
            timeline: false,
        }
    }
}

/// One Table II row: one sample against both defenses.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyRow {
    /// The sample's family.
    pub family: MalwareFamily,
    /// Sample index within the family (0-based).
    pub sample_idx: u32,
    /// Whether nolisting blocked every message (✓ in the paper).
    pub nolisting_blocked: bool,
    /// Whether greylisting blocked every message.
    pub greylisting_blocked: bool,
}

/// The full matrix plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyResult {
    /// One row per sample, Table I order.
    pub rows: Vec<EfficacyRow>,
}

impl EfficacyResult {
    /// The (consistent-across-samples) verdicts for one family.
    pub fn family_row(&self, family_name: &str) -> Option<&EfficacyRow> {
        self.rows.iter().find(|r| r.family.name() == family_name)
    }

    /// Whether every sample of a family agrees with the first (the paper
    /// found no intra-family variation).
    pub fn family_consistent(&self, family: MalwareFamily) -> bool {
        let mut rows = self.rows.iter().filter(|r| r.family == family);
        let Some(first) = rows.next() else { return true };
        rows.all(|r| {
            r.nolisting_blocked == first.nolisting_blocked
                && r.greylisting_blocked == first.greylisting_blocked
        })
    }

    /// Share of *botnet* spam blocked by a defense, weighting each family
    /// by its Table I share.
    pub fn botnet_spam_blocked_pct(&self, nolisting: bool) -> f64 {
        MalwareFamily::ALL
            .iter()
            .filter_map(|&family| {
                let row = self.rows.iter().find(|r| r.family == family)?;
                let blocked =
                    if nolisting { row.nolisting_blocked } else { row.greylisting_blocked };
                blocked.then_some(family.botnet_spam_pct())
            })
            .sum()
    }
}

/// Runs the Table II experiment.
pub fn run(config: &EfficacyConfig) -> EfficacyResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the Table II experiment, aggregating protocol metrics from every
/// per-sample world into `reg` and (when `trace` is set) draining the
/// worlds' delivery traces into `trace_lines`.
pub fn run_with_obs(
    config: &EfficacyConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> EfficacyResult {
    run_with_telemetry(
        config,
        trace,
        reg,
        trace_lines,
        &mut TimeSeries::new(),
        &mut Timeline::disabled(),
    )
}

/// [`run_with_obs`] plus virtual-time telemetry capture: sampled series
/// merge into `samples` and lifecycle events into `timeline`, both in
/// fixed shard order so the accumulated bytes are identical for every
/// executor width. With telemetry off in the config both sinks stay
/// untouched and the engine event stream matches a run without them.
pub fn run_with_telemetry(
    config: &EfficacyConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
    samples: &mut TimeSeries,
    timeline: &mut Timeline,
) -> EfficacyResult {
    let roster = BotSample::table_i_roster(Ipv4Addr::new(203, 0, 113, 1));
    let horizon = SimTime::ZERO + config.window;
    let plan = ShardPlan::new(config.seed, EFFICACY_SHARDS);

    // Each shard runs the roster samples it owns, in roster order, into
    // its own registry; rows and traces come back tagged with the roster
    // index so the merged output keeps the serial order exactly.
    let shard_runs = run_sharded(&plan, config.workers, |shard| {
        let mut metrics = Registry::new();
        let mut shard_samples = TimeSeries::new();
        let mut shard_timeline = Timeline::disabled();
        let mut outputs: Vec<(usize, EfficacyRow, Vec<String>)> = Vec::new();
        for (idx, sample) in roster.iter().enumerate() {
            let key = format!("{}.sample{}", sample.family().name(), sample.sample_idx());
            if !plan.owns(shard, &key) {
                continue;
            }
            let (row, traces) = run_sample(
                config,
                sample,
                horizon,
                trace,
                &mut metrics,
                &mut shard_samples,
                &mut shard_timeline,
            );
            outputs.push((idx, row, traces));
        }
        (outputs, metrics, shard_samples, shard_timeline)
    });

    let mut tagged: Vec<&(usize, EfficacyRow, Vec<String>)> = Vec::new();
    for (shard, (outputs, metrics, shard_samples, shard_timeline)) in shard_runs.iter().enumerate()
    {
        let events = metrics.counter(spamward_mta::metrics::ENGINE_EVENTS).unwrap_or(0);
        spamward_mta::metrics::collect_shard_events(shard as u32, events, reg);
        reg.merge(metrics);
        samples.merge(shard_samples);
        timeline.merge(shard_timeline);
        if config.sample_interval.is_some() {
            samples.record_point(
                &format!("{SAMPLE_SHARD_PREFIX}{shard}.events"),
                horizon,
                i64::try_from(events).unwrap_or(i64::MAX),
            );
        }
        tagged.extend(outputs);
    }
    tagged.sort_by_key(|(idx, _, _)| *idx);

    let mut rows = Vec::new();
    for (_, row, traces) in tagged {
        rows.push(row.clone());
        trace_lines.extend_from_slice(traces);
    }
    EfficacyResult { rows }
}

/// Runs one roster sample against both defenses, folding the two worlds'
/// metrics into `metrics` (and their telemetry into `samples` /
/// `timeline`) and returning the Table II row plus any traces.
#[allow(clippy::too_many_arguments)]
fn run_sample(
    config: &EfficacyConfig,
    sample: &BotSample,
    horizon: SimTime,
    trace: bool,
    metrics: &mut Registry,
    samples: &mut TimeSeries,
    timeline: &mut Timeline,
) -> (EfficacyRow, Vec<String>) {
    let mut campaign_rng = DetRng::seed(config.seed)
        .fork(sample.family().name())
        .fork_idx("c", u64::from(sample.sample_idx()));
    let campaign = Campaign::synthetic(VICTIM_DOMAIN, config.recipients, &mut campaign_rng);
    let mut traces = Vec::new();
    let sample_key = format!("{}.s{}", sample.family().name(), sample.sample_idx());
    let telemetry = |mut world: spamward_mta::MailWorld, defense: &str| {
        if let Some(interval) = config.sample_interval {
            world = world.with_sampling(interval);
        }
        if config.timeline {
            world = world.with_timeline_scope(&format!("{defense}/{sample_key}"));
        }
        world
    };

    // (a) nolisting victim.
    let mut world = telemetry(worlds::nolisting_world(config.seed), "nolisting");
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    let mut bot = sample.clone();
    let nolisting_report = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, horizon);
    spamward_mta::metrics::collect_world(&world, metrics);
    spamward_botnet::metrics::collect_run(sample.family(), &nolisting_report, metrics);
    traces.extend(world.trace.events().map(|e| e.to_string()));
    samples.merge(&world.samples);
    timeline.merge(&world.timeline);

    // (b) greylisting victim.
    let mut world =
        telemetry(worlds::greylist_world(config.seed, config.greylist_delay), "greylist");
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    let mut bot = sample.clone();
    let greylist_report = bot.run_campaign(&mut world, &campaign, SimTime::ZERO, horizon);
    spamward_mta::metrics::collect_world(&world, metrics);
    spamward_botnet::metrics::collect_run(sample.family(), &greylist_report, metrics);
    traces.extend(world.trace.events().map(|e| e.to_string()));
    samples.merge(&world.samples);
    timeline.merge(&world.timeline);

    let row = EfficacyRow {
        family: sample.family(),
        sample_idx: sample.sample_idx(),
        nolisting_blocked: !nolisting_report.any_delivered(),
        greylisting_blocked: !greylist_report.any_delivered(),
    };
    (row, traces)
}

impl EfficacyResult {
    /// Table II as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mark = |blocked: bool| if blocked { "v".to_owned() } else { "x".to_owned() };
        let mut t = Table::new(vec!["Sample", "Greylisting", "Nolisting"])
            .with_title("Table II: v = defense blocked all spam, x = spam got through");
        let mut last_family = None;
        for r in &self.rows {
            if last_family != Some(r.family) {
                t.row(vec![format!("{}:", r.family), String::new(), String::new()]);
                last_family = Some(r.family);
            }
            t.row(vec![
                format!("  sample{}", r.sample_idx + 1),
                mark(r.greylisting_blocked),
                mark(r.nolisting_blocked),
            ]);
        }
        t
    }
}

impl fmt::Display for EfficacyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "botnet spam blocked: greylisting {:.2}%, nolisting {:.2}%",
            self.botnet_spam_blocked_pct(false),
            self.botnet_spam_blocked_pct(true)
        )
    }
}

/// Registry entry for the Table II per-family matrix.
pub struct EfficacyExperiment;

impl EfficacyExperiment {
    /// The module config a harness config maps to (shared with
    /// [`summary`](crate::experiments::summary), which replays Table II).
    pub fn config(harness: &HarnessConfig) -> EfficacyConfig {
        EfficacyConfig {
            seed: harness.seed_or(EfficacyConfig::default().seed),
            recipients: match harness.scale {
                Scale::Paper => EfficacyConfig::default().recipients,
                Scale::Quick => 5,
            },
            event_budget: harness.event_budget,
            workers: if harness.shards > 0 {
                harness.shard_workers()
            } else {
                EfficacyConfig::default().workers
            },
            sample_interval: harness.telemetry.sample_interval,
            timeline: harness.telemetry.timeline,
            ..Default::default()
        }
    }
}

impl Experiment for EfficacyExperiment {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Per-family efficacy matrix"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table II"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let mut samples = TimeSeries::new();
        let mut timeline = Timeline::disabled();
        let result = run_with_telemetry(
            &module_config,
            config.trace,
            report.metrics_mut(),
            &mut trace_lines,
            &mut samples,
            &mut timeline,
        );
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        *report.timeseries_mut() = samples;
        *report.timeline_mut() = timeline;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report
            .push_table(result.table())
            .push_scalar(
                "greylisting blocked (% of botnet spam)",
                result.botnet_spam_blocked_pct(false),
            )
            .push_scalar(
                "nolisting blocked (% of botnet spam)",
                result.botnet_spam_blocked_pct(true),
            );
        // Per-family verdicts as 0/1 scalars: the summary experiment reads
        // these through the registry instead of re-running the campaigns.
        for family in MalwareFamily::ALL {
            if let Some(row) = result.family_row(family.name()) {
                report.push_scalar(
                    &format!("greylisting blocks {}", family.name()),
                    f64::from(u8::from(row.greylisting_blocked)),
                );
                report.push_scalar(
                    &format!("nolisting blocks {}", family.name()),
                    f64::from(u8::from(row.nolisting_blocked)),
                );
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> EfficacyResult {
        run(&EfficacyConfig { recipients: 5, ..Default::default() })
    }

    #[test]
    fn matrix_matches_table_ii() {
        let r = quick();
        assert_eq!(r.rows.len(), 11, "eleven samples as in Table I");
        for row in &r.rows {
            let expect_nolisting = row.family == MalwareFamily::Kelihos;
            let expect_greylisting = row.family != MalwareFamily::Kelihos;
            assert_eq!(
                row.nolisting_blocked, expect_nolisting,
                "{} sample{}: nolisting",
                row.family, row.sample_idx
            );
            assert_eq!(
                row.greylisting_blocked, expect_greylisting,
                "{} sample{}: greylisting",
                row.family, row.sample_idx
            );
        }
    }

    #[test]
    fn families_are_internally_consistent() {
        let r = quick();
        for family in MalwareFamily::ALL {
            assert!(r.family_consistent(family), "{family} samples disagree");
        }
    }

    #[test]
    fn blocked_shares_match_paper_claims() {
        let r = quick();
        // Greylisting stops Cutwail + both Darkmailers: 56.69% of botnet
        // spam; nolisting stops Kelihos: 36.33%.
        assert!((r.botnet_spam_blocked_pct(false) - 56.69).abs() < 1e-9);
        assert!((r.botnet_spam_blocked_pct(true) - 36.33).abs() < 1e-9);
    }

    #[test]
    fn renders_matrix() {
        let out = quick().to_string();
        assert!(out.contains("Cutwail:"));
        assert!(out.contains("Kelihos:"));
        assert!(out.contains("sample6"));
        assert!(out.contains("botnet spam blocked"));
    }

    #[test]
    fn family_row_lookup() {
        let r = quick();
        assert!(r.family_row("Kelihos").unwrap().nolisting_blocked);
        assert!(r.family_row("Cutwail").unwrap().greylisting_blocked);
        assert!(r.family_row("Nonexistent").is_none());
    }
}
