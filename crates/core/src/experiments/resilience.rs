//! Resilience extension — fault profiles × defenses.
//!
//! The paper measures greylisting and nolisting against a *well-behaved*
//! internet. This experiment injects the deterministic fault profiles of
//! `spamward_net::faults` (host outages, link loss, DNS degradation,
//! mid-session SMTP aborts, greylist-store outages) under each defense and
//! measures whether a resilient sending MTA — the Table IV postfix
//! schedule hardened with [`RetryPolicy::resilient`]'s backoff and
//! per-destination circuit breaker — still delivers legitimate mail, and
//! at what cost in attempts and degraded greylist decisions.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_dns::{DomainName, Zone};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::{
    DegradationMode, MailWorld, MtaProfile, OutboundStatus, ReceivingMta, RetryPolicy, SendingMta,
    WorldSim,
};
use spamward_net::{FaultPlan, FaultProfile, FaultWindow};
use spamward_obs::Registry;
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// The defense configurations swept against every fault profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// No defense at all (baseline delivery under faults).
    Plain,
    /// Greylisting whose store outage admits mail unchecked.
    GreylistFailOpen,
    /// Greylisting whose store outage defers everything.
    GreylistFailClosed,
    /// Nolisting whose live secondary also has planned maintenance
    /// windows ([`worlds::planned_downtime_world`]).
    NolistingPlannedDowntime,
}

impl Defense {
    /// All defenses, sweep order.
    pub const ALL: [Defense; 4] = [
        Defense::Plain,
        Defense::GreylistFailOpen,
        Defense::GreylistFailClosed,
        Defense::NolistingPlannedDowntime,
    ];

    /// Human-readable label (table rows).
    pub fn label(&self) -> &'static str {
        match self {
            Defense::Plain => "plain",
            Defense::GreylistFailOpen => "greylist fail-open",
            Defense::GreylistFailClosed => "greylist fail-closed",
            Defense::NolistingPlannedDowntime => "nolisting planned-downtime",
        }
    }
}

/// Configuration of the resilience sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Legitimate messages submitted per cell (staggered across the fault
    /// windows).
    pub messages: usize,
    /// Engine event budget shared by every cell world (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { seed: 42, messages: 8, event_budget: None }
    }
}

/// One (fault profile, defense) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceCell {
    /// Fault profile name.
    pub profile: &'static str,
    /// Defense under test.
    pub defense: Defense,
    /// Messages that reached a mailbox.
    pub delivered: u64,
    /// Messages that out-lived the queue.
    pub expired: u64,
    /// Delivery attempts actually made.
    pub attempts: u64,
    /// Circuit-breaker openings.
    pub breaker_trips: u64,
    /// Attempts held back by an open breaker.
    pub breaker_skipped: u64,
    /// Retries pushed back by exponential backoff.
    pub backoffs: u64,
    /// Greylist decisions admitted unchecked during a store outage.
    pub fail_open: u64,
    /// Greylist decisions deferred during a store outage.
    pub fail_closed: u64,
}

/// The full profile × defense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceResult {
    /// One cell per (profile, defense), profile-major sweep order.
    pub cells: Vec<ResilienceCell>,
}

impl ResilienceResult {
    /// Looks up one cell.
    pub fn cell(&self, profile: &str, defense: Defense) -> Option<&ResilienceCell> {
        self.cells.iter().find(|c| c.profile == profile && c.defense == defense)
    }

    /// Total delivered across the whole sweep.
    pub fn total_delivered(&self) -> u64 {
        self.cells.iter().map(|c| c.delivered).sum()
    }

    /// Total messages lost (expired) across the whole sweep.
    pub fn total_expired(&self) -> u64 {
        self.cells.iter().map(|c| c.expired).sum()
    }

    /// The matrix as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Profile",
            "Defense",
            "Delivered",
            "Expired",
            "Attempts",
            "Trips",
            "Skips",
            "Backoffs",
            "FailOpen",
            "FailClosed",
        ])
        .with_title("Resilience: fault profiles x defenses (resilient postfix sender)");
        for c in &self.cells {
            t.row(vec![
                c.profile.to_owned(),
                c.defense.label().to_owned(),
                c.delivered.to_string(),
                c.expired.to_string(),
                c.attempts.to_string(),
                c.breaker_trips.to_string(),
                c.breaker_skipped.to_string(),
                c.backoffs.to_string(),
                c.fail_open.to_string(),
                c.fail_closed.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for ResilienceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "delivered {} / expired {} across {} cells",
            self.total_delivered(),
            self.total_expired(),
            self.cells.len()
        )
    }
}

fn victim_domain() -> DomainName {
    VICTIM_DOMAIN.parse().expect("victim domain is valid")
}

/// The planned maintenance windows of the nolisting defense: ten minutes
/// of downtime starting at t+10 min, squarely inside most fault windows.
fn maintenance_windows() -> Vec<FaultWindow> {
    vec![FaultWindow::new(
        SimTime::ZERO + SimDuration::from_mins(10),
        SimTime::ZERO + SimDuration::from_mins(20),
    )]
}

fn build_world(defense: Defense, seed: u64) -> MailWorld {
    match defense {
        Defense::Plain => worlds::plain_world(seed),
        Defense::GreylistFailOpen | Defense::GreylistFailClosed => {
            let mode = if defense == Defense::GreylistFailOpen {
                DegradationMode::FailOpen
            } else {
                DegradationMode::FailClosed
            };
            let cfg =
                GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
            let mut w = MailWorld::new(seed);
            w.install_server(
                ReceivingMta::new("mail.victim.example", VICTIM_MX_IP)
                    .with_greylist(Greylist::new(cfg))
                    .with_degradation(mode),
            );
            w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
            w
        }
        Defense::NolistingPlannedDowntime => {
            worlds::planned_downtime_world(seed, maintenance_windows())
        }
    }
}

/// Runs the sweep without observability.
pub fn run(config: &ResilienceConfig) -> ResilienceResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the sweep, folding every cell's world/sender metrics into `reg`
/// and (when `trace` is set) draining delivery traces into `trace_lines`.
pub fn run_with_obs(
    config: &ResilienceConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> ResilienceResult {
    let mut cells = Vec::new();
    for profile in FaultProfile::catalog() {
        for (d_idx, &defense) in Defense::ALL.iter().enumerate() {
            let mut cell_rng = DetRng::seed(config.seed)
                .fork("resilience")
                .fork(profile.name)
                .fork_idx("defense", d_idx as u64);
            let cell_seed = cell_rng.next_u64();
            let plan = FaultPlan::compile(&profile, cell_seed);

            let mut world = build_world(defense, cell_seed);
            world.event_budget = config.event_budget;
            if trace {
                world = world.with_tracing();
            }
            // Servers are installed; now wire the plan into network,
            // resolver, SMTP layer and greylist stores.
            world.install_faults(&plan);

            let mut sender = SendingMta::new(
                "relay.example",
                vec![Ipv4Addr::new(198, 51, 100, 1)],
                MtaProfile::postfix(),
            )
            .with_seed(cell_rng.next_u64())
            .with_retry_policy(RetryPolicy::resilient());
            for i in 0..config.messages {
                let at = SimTime::ZERO + SimDuration::from_mins(4) * (i as u64);
                sender.submit(
                    victim_domain(),
                    spamward_smtp::ReversePath::Address(
                        "sender@relay.example".parse().expect("valid sender"),
                    ),
                    vec![format!("user{i}@{VICTIM_DOMAIN}").parse().expect("valid recipient")],
                    spamward_smtp::Message::builder()
                        .header("Subject", &format!("resilience probe {i}"))
                        .body("legitimate mail under faults")
                        .build(),
                    at,
                );
            }

            let (sender, _outcome, _end) =
                WorldSim::drain_with_faults(&mut world, sender, &plan, SimTime::ZERO, None);

            spamward_mta::metrics::collect_world(&world, reg);
            spamward_mta::metrics::collect_sender(&sender, reg);
            trace_lines.extend(world.trace.events().map(|e| e.to_string()));

            let server_stats = world.server(VICTIM_MX_IP).map(|s| s.stats()).unwrap_or_default();
            cells.push(ResilienceCell {
                profile: profile.name,
                defense,
                delivered: sender
                    .queue()
                    .iter()
                    .filter(|m| m.status == OutboundStatus::Delivered)
                    .count() as u64,
                expired: sender
                    .queue()
                    .iter()
                    .filter(|m| m.status == OutboundStatus::Expired)
                    .count() as u64,
                attempts: sender.records().len() as u64,
                breaker_trips: sender.breaker_trips(),
                breaker_skipped: sender.breaker_skipped(),
                backoffs: sender.backoffs_applied(),
                fail_open: server_stats.greylist_failed_open,
                fail_closed: server_stats.greylist_failed_closed,
            });
        }
    }
    ResilienceResult { cells }
}

/// Registry entry for the resilience sweep.
pub struct ResilienceExperiment;

impl ResilienceExperiment {
    /// The module config a harness config maps to.
    pub fn config(harness: &HarnessConfig) -> ResilienceConfig {
        ResilienceConfig {
            seed: harness.seed_or(ResilienceConfig::default().seed),
            messages: match harness.scale {
                Scale::Paper => ResilienceConfig::default().messages,
                Scale::Quick => 3,
            },
            event_budget: harness.event_budget,
        }
    }
}

impl Experiment for ResilienceExperiment {
    fn id(&self) -> &'static str {
        "resilience"
    }

    fn title(&self) -> &'static str {
        "Fault injection and resilient delivery paths"
    }

    fn paper_artifact(&self) -> &'static str {
        "DESIGN.md fault model"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        let expected = (module_config.messages * result.cells.len()) as f64;
        report
            .push_table(result.table())
            .push_scalar("messages delivered (all cells)", result.total_delivered() as f64)
            .push_scalar("messages expired (all cells)", result.total_expired() as f64)
            .push_scalar("messages submitted (all cells)", expected)
            .push_scalar(
                "breaker trips (all cells)",
                result.cells.iter().map(|c| c.breaker_trips).sum::<u64>() as f64,
            )
            .push_scalar(
                "greylist fail-open admissions",
                result.cells.iter().map(|c| c.fail_open).sum::<u64>() as f64,
            )
            .push_scalar(
                "greylist fail-closed deferrals",
                result.cells.iter().map(|c| c.fail_closed).sum::<u64>() as f64,
            );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_mta::metrics as mta_metrics;
    use spamward_net::metrics as net_metrics;

    fn quick() -> ResilienceResult {
        run(&ResilienceConfig { messages: 3, ..Default::default() })
    }

    #[test]
    fn sweep_covers_every_profile_and_defense() {
        let r = quick();
        assert_eq!(r.cells.len(), FaultProfile::catalog().len() * Defense::ALL.len());
        for profile in FaultProfile::catalog() {
            for defense in Defense::ALL {
                assert!(r.cell(profile.name, defense).is_some(), "{} missing", profile.name);
            }
        }
    }

    #[test]
    fn baseline_profile_delivers_everything_without_resilience_machinery() {
        let r = quick();
        for defense in Defense::ALL {
            let c = r.cell("baseline", defense).unwrap();
            assert_eq!(c.delivered, 3, "{}: faultless runs deliver all", defense.label());
            assert_eq!(c.expired, 0);
            assert_eq!(c.fail_open + c.fail_closed, 0);
        }
    }

    #[test]
    fn every_message_eventually_delivers_under_all_faults() {
        // The acceptance bar: no experiment panics and no legitimate mail
        // is lost — every fault profile is survivable with the resilient
        // retry policy, because all fault windows close well before the
        // postfix queue lifetime.
        let r = quick();
        for c in &r.cells {
            assert_eq!(c.delivered, 3, "{} × {} lost mail", c.profile, c.defense.label());
            assert_eq!(c.expired, 0, "{} × {} expired mail", c.profile, c.defense.label());
        }
    }

    #[test]
    fn faults_cost_attempts_and_exercise_the_machinery() {
        let r = quick();
        let baseline: u64 =
            Defense::ALL.iter().map(|&d| r.cell("baseline", d).unwrap().attempts).sum();
        let chaos: u64 =
            Defense::ALL.iter().map(|&d| r.cell("all_faults", d).unwrap().attempts).sum();
        assert!(chaos > baseline, "faults must cost extra attempts ({chaos} vs {baseline})");

        let trips: u64 = r.cells.iter().map(|c| c.breaker_trips).sum();
        assert!(trips > 0, "outage profiles must trip the breaker");
        let fail_open: u64 = r.cells.iter().map(|c| c.fail_open).sum();
        let fail_closed: u64 = r.cells.iter().map(|c| c.fail_closed).sum();
        assert!(fail_open > 0, "store outages must admit mail in fail-open cells");
        assert!(fail_closed > 0, "store outages must defer mail in fail-closed cells");
    }

    #[test]
    fn degradation_counters_land_in_the_matching_cells() {
        // A store outage must *only* produce fail-open admissions in
        // fail-open cells and deferrals in fail-closed cells — the two
        // modes are mutually exclusive per server.
        let r = quick();
        for c in &r.cells {
            match c.defense {
                Defense::GreylistFailOpen => assert_eq!(c.fail_closed, 0, "{}", c.profile),
                Defense::GreylistFailClosed => assert_eq!(c.fail_open, 0, "{}", c.profile),
                _ => assert_eq!(c.fail_open + c.fail_closed, 0, "{}", c.profile),
            }
        }
        // smtp_chaos (store down 2–28 min) must exercise both modes; in
        // all_faults the fail-open cell's in-window RCPTs can all be eaten
        // by SMTP aborts first, so only the deferral side is asserted.
        assert!(r.cell("smtp_chaos", Defense::GreylistFailOpen).unwrap().fail_open > 0);
        assert!(r.cell("smtp_chaos", Defense::GreylistFailClosed).unwrap().fail_closed > 0);
    }

    #[test]
    fn registry_run_exports_fault_breaker_and_degraded_metrics() {
        let config = HarnessConfig { scale: Scale::Quick, ..Default::default() };
        let report = ResilienceExperiment.run(&config).unwrap();
        let reg = report.metrics();
        assert!(reg.counter(net_metrics::FAULT_LINK_DROPPED).unwrap_or(0) > 0);
        assert!(reg.counter(net_metrics::FAULT_OUTAGE_TIMEOUTS).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::BREAKER_TRIPS).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::BREAKER_BACKOFFS).is_some());
        assert!(reg.counter(mta_metrics::GREYLIST_DEGRADED_FAIL_OPEN).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::GREYLIST_DEGRADED_FAIL_CLOSED).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::FAULT_BOUNDARY_EVENTS).unwrap_or(0) > 0);
        assert!(report.scalar("messages delivered (all cells)").is_some());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = quick();
        let b = quick();
        assert_eq!(a, b);
    }
}
