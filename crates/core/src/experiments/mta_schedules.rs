//! Table IV — default retransmission schedules of popular MTAs.

use crate::harness::{Experiment, HarnessConfig, HarnessError, Report};
use spamward_analysis::Table;
use spamward_mta::MtaProfile;
use spamward_sim::SimDuration;
use std::fmt;

/// One Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRow {
    /// MTA name.
    pub mta: String,
    /// Retry times within the first ten hours, in minutes.
    pub retransmission_mins: Vec<f64>,
    /// Queue lifetime in days.
    pub max_queue_days: f64,
}

/// The regenerated Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulesResult {
    /// One row per MTA, paper order.
    pub rows: Vec<ScheduleRow>,
}

/// Regenerates Table IV from the executable schedules.
pub fn run() -> SchedulesResult {
    // Table IV's exim row lists 607.5 min, slightly past ten sharp hours;
    // use the paper's effective window.
    let horizon = SimDuration::from_mins(630);
    let rows = MtaProfile::table_iv()
        .into_iter()
        .map(|p| ScheduleRow {
            mta: p.name.clone(),
            retransmission_mins: p
                .schedule
                .retries_within(horizon)
                .iter()
                .map(|d| d.as_mins_f64())
                .collect(),
            max_queue_days: p.max_queue_time.as_secs_f64() / 86_400.0,
        })
        .collect();
    SchedulesResult { rows }
}

impl SchedulesResult {
    /// RFC 5321 suggests giving up only after 4–5 days; the paper singles
    /// out exchange as the one below that. Returns the non-compliant rows.
    pub fn below_rfc_queue_time(&self) -> Vec<&ScheduleRow> {
        self.rows.iter().filter(|r| r.max_queue_days < 4.0).collect()
    }
}

fn fmt_mins(m: f64) -> String {
    if (m - m.round()).abs() < 1e-9 {
        format!("{}", m.round() as u64)
    } else {
        format!("{m:.1}")
    }
}

impl SchedulesResult {
    /// Table IV as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["MTA", "Retransmission time (min)", "Max queue time (days)"])
            .with_title("Table IV: retransmission times of popular MTA servers (first 10 h)");
        for r in &self.rows {
            let mut shown: Vec<String> =
                r.retransmission_mins.iter().take(10).map(|&m| fmt_mins(m)).collect();
            if r.retransmission_mins.len() > 10 {
                shown.push(format!("... ({} in 10h)", r.retransmission_mins.len()));
            }
            t.row(vec![r.mta.clone(), shown.join(", "), fmt_mins(r.max_queue_days)]);
        }
        t
    }
}

impl fmt::Display for SchedulesResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// Registry entry for Table IV. The schedules are fixed catalogue data, so
/// the run ignores seed and scale.
pub struct SchedulesExperiment;

impl Experiment for SchedulesExperiment {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Default MTA retransmission schedules"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table IV"
    }

    fn seedable(&self) -> bool {
        false
    }

    fn run(&self, _config: &HarnessConfig) -> Result<Report, HarnessError> {
        let result = run();
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact());
        crate::metrics::collect_schedules(&result, report.metrics_mut());
        report
            .push_table(result.table())
            .push_scalar("MTAs", result.rows.len() as f64)
            .push_scalar("below RFC queue guidance", result.below_rfc_queue_time().len() as f64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_mtas_in_paper_order() {
        let r = run();
        let names: Vec<&str> = r.rows.iter().map(|x| x.mta.as_str()).collect();
        assert_eq!(names, vec!["sendmail", "exim", "postfix", "qmail", "courier", "exchange"]);
    }

    #[test]
    fn ladders_match_table_iv_prefixes() {
        let r = run();
        let mins = |name: &str, n: usize| -> Vec<u64> {
            r.rows
                .iter()
                .find(|x| x.mta == name)
                .unwrap()
                .retransmission_mins
                .iter()
                .take(n)
                .map(|&m| m.round() as u64)
                .collect()
        };
        assert_eq!(mins("sendmail", 6), vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(mins("postfix", 8), vec![5, 10, 15, 20, 25, 30, 45, 60]);
        assert_eq!(mins("qmail", 5), vec![7, 27, 60, 107, 167]); // 6.6, 26.6, ...
        assert_eq!(mins("courier", 6), vec![5, 10, 15, 30, 35, 40]);
        assert_eq!(mins("exchange", 4), vec![15, 30, 45, 60]);
        assert_eq!(mins("exim", 12).last().copied(), Some(608)); // 607.5 rounded
    }

    #[test]
    fn queue_lifetimes_match() {
        let r = run();
        let days = |name: &str| r.rows.iter().find(|x| x.mta == name).unwrap().max_queue_days;
        assert_eq!(days("sendmail"), 5.0);
        assert_eq!(days("exim"), 4.0);
        assert_eq!(days("postfix"), 5.0);
        assert_eq!(days("qmail"), 7.0);
        assert_eq!(days("courier"), 7.0);
        assert_eq!(days("exchange"), 2.0);
    }

    #[test]
    fn only_exchange_below_rfc_guidance() {
        let r = run();
        let below = r.below_rfc_queue_time();
        assert_eq!(below.len(), 1);
        assert_eq!(below[0].mta, "exchange");
    }

    #[test]
    fn renders() {
        let out = run().to_string();
        assert!(out.contains("Table IV"));
        assert!(out.contains("sendmail"));
        assert!(out.contains("6.7") || out.contains("6.6"), "qmail fractional minutes:\n{out}");
    }
}
