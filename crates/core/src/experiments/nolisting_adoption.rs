//! Fig. 2 — worldwide adoption of nolisting.
//!
//! The paper combined the zmap DNS-ANY dump with the IPv4 SMTP banner grab,
//! re-resolved the MX entries whose glue was missing, classified 42.6 M
//! mail setups, repeated the scan two months later, and cross-checked. The
//! reproduction runs the same pipeline over a synthetic population with
//! ground truth (see `spamward-scanner`), which additionally yields the
//! detector's precision/recall.
//!
//! The survey runs sharded: the population is a streaming generator
//! ([`PopulationStream`]) partitioned into [`ADOPTION_SHARDS`] fixed
//! shards by stable hash; each shard scans its domains in their own
//! mini-worlds and the per-shard [`ShardScanStats`] merge field-wise.
//! The partition is independent of the executor width, so
//! `repro fig2 --shards N` is byte-identical for every `N` — and memory
//! stays O(1) in the population size, which is what lets a 10 M-domain
//! scan run on a laptop.

use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use crate::metrics::SAMPLE_SHARD_PREFIX;
use spamward_analysis::Table;
use spamward_obs::{Registry, TimeSeries};
use spamward_scanner::{
    scan_shard, DetectorAccuracy, DomainClass, Fig2Stats, PopulationSpec, PopulationStream,
    ShardScanStats,
};
use spamward_sim::shard::run_sharded;
use spamward_sim::{ShardPlan, SimTime};
use std::fmt;

/// Fixed shard count of the survey's partition. Domains are assigned to
/// shards by stable hash of their name, never by worker id, so
/// [`AdoptionConfig::workers`] only picks how many shards run at once.
pub const ADOPTION_SHARDS: u32 = 8;

/// Configuration of the adoption survey.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptionConfig {
    /// Synthetic population size (the paper saw 135 M domains; default is
    /// laptop-scale with the same mix).
    pub domains: usize,
    /// RNG seed.
    pub seed: u64,
    /// Scan epochs (paper: two scans, 2015-02-28 and 2015-04-25).
    pub epochs: Vec<u64>,
    /// Shard-executor width: how many of the [`ADOPTION_SHARDS`] run
    /// concurrently. Output bytes are identical for every value.
    pub workers: usize,
    /// Population knobs (class mix, host flakiness).
    pub spec: PopulationSpec,
}

impl Default for AdoptionConfig {
    fn default() -> Self {
        let domains = 30_000;
        AdoptionConfig {
            domains,
            seed: 2015,
            epochs: vec![0, 1],
            workers: 4,
            spec: PopulationSpec::fig2(domains),
        }
    }
}

/// The survey output.
#[derive(Debug, Clone)]
pub struct AdoptionResult {
    /// Fig. 2's class percentages.
    pub stats: Fig2Stats,
    /// Detector accuracy vs ground truth.
    pub accuracy: DetectorAccuracy,
    /// Detected-nolisting counts within the top-k popular domains, for the
    /// paper's Alexa cross-check (k = 15, 500, 1000).
    pub top_k: Vec<(u32, usize)>,
    /// MX entries whose glue the parallel scanner had to resolve.
    pub glue_resolved: usize,
    /// Change in detected-nolisting count between consecutive epochs, as a
    /// fraction (paper: 0.01%).
    pub between_scan_change: f64,
}

/// Runs the Fig. 2 survey.
///
/// # Panics
///
/// Panics if fewer than two scan epochs are configured (the cross-check
/// needs at least two).
pub fn run(config: &AdoptionConfig) -> AdoptionResult {
    run_with_obs(config, &mut Registry::new())
}

/// Runs the Fig. 2 survey, exporting scan-pipeline, classification and
/// per-shard metrics into `reg`. (The survey has no mail world, so there
/// is no trace stream to drain.)
///
/// # Panics
///
/// Panics if fewer than two scan epochs are configured.
pub fn run_with_obs(config: &AdoptionConfig, reg: &mut Registry) -> AdoptionResult {
    run_with_telemetry(config, reg, &mut TimeSeries::new())
}

/// [`run_with_obs`] plus the scan's virtual-time series: the streaming
/// scanner's per-bucket samples merge into `samples` (order-insensitive,
/// so the bytes match for every executor width), and each shard of the
/// fixed partition appends its event total at the scan's virtual end.
///
/// # Panics
///
/// Panics if fewer than two scan epochs are configured.
pub fn run_with_telemetry(
    config: &AdoptionConfig,
    reg: &mut Registry,
    samples: &mut TimeSeries,
) -> AdoptionResult {
    assert!(config.epochs.len() >= 2, "the cross-check needs at least two scans");
    let mut spec = config.spec.clone();
    spec.domains = config.domains;
    let stream = PopulationStream::new(spec, config.seed);
    let plan = ShardPlan::new(config.seed, ADOPTION_SHARDS);
    let ks = [15u32, 500, 1000];
    let per_shard =
        run_sharded(&plan, config.workers, |s| scan_shard(&stream, &plan, s, &config.epochs, &ks));

    // Merge in shard order; every shard of the fixed partition records its
    // event count, so the metric set never depends on `workers`. The scan
    // streams one domain per virtual second, so its virtual end is the
    // population size in seconds.
    let scan_end = SimTime::from_secs(config.domains as u64);
    let mut total = ShardScanStats::empty(config.epochs.len(), &ks);
    for (shard, stats) in per_shard.iter().enumerate() {
        spamward_mta::metrics::collect_shard_events(shard as u32, stats.events, reg);
        samples.record_point(
            &format!("{SAMPLE_SHARD_PREFIX}{shard}.events"),
            scan_end,
            i64::try_from(stats.events).unwrap_or(i64::MAX),
        );
        total.merge(stats);
    }
    samples.merge(&total.samples);
    spamward_scanner::metrics::collect_shard_scan(&total, reg);

    let between_scan_change = if total.per_epoch_nolisting[0] == 0 {
        0.0
    } else {
        (total.per_epoch_nolisting[1] as f64 - total.per_epoch_nolisting[0] as f64).abs()
            / total.per_epoch_nolisting[0] as f64
    };

    AdoptionResult {
        stats: total.fig2(),
        accuracy: total.accuracy,
        top_k: total.top_k.iter().map(|&(k, n)| (k, n as usize)).collect(),
        glue_resolved: total.glue_resolved as usize,
        between_scan_change,
    }
}

impl AdoptionResult {
    /// The Fig. 2 class breakdown as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Class", "Domains", "Share"])
            .with_title("Figure 2: nolisting mail server statistics");
        for (class, count) in &self.stats.counts {
            t.row(vec![
                class.to_string(),
                count.to_string(),
                format!("{:.2}%", self.stats.pct(*class)),
            ]);
        }
        t
    }
}

impl fmt::Display for AdoptionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "glue re-resolved: {} entries; between-scan drift: {:.3}%",
            self.glue_resolved,
            self.between_scan_change * 100.0
        )?;
        writeln!(
            f,
            "detector vs ground truth: precision {:.3}, recall {:.3}",
            self.accuracy.precision(),
            self.accuracy.recall()
        )?;
        for (k, n) in &self.top_k {
            writeln!(f, "nolisting among top-{k} popular domains: {n}")?;
        }
        Ok(())
    }
}

/// Registry entry for the Fig. 2 adoption survey.
pub struct AdoptionExperiment;

impl AdoptionExperiment {
    /// The module config a harness config maps to (shared with
    /// [`variance`](crate::experiments::variance)).
    pub fn config(harness: &HarnessConfig) -> AdoptionConfig {
        let domains = match harness.scale {
            Scale::Paper => AdoptionConfig::default().domains,
            Scale::Quick => 4_000,
        };
        AdoptionConfig {
            domains,
            seed: harness.seed_or(AdoptionConfig::default().seed),
            workers: if harness.shards > 0 {
                harness.shard_workers()
            } else {
                AdoptionConfig::default().workers
            },
            ..Default::default()
        }
    }
}

impl Experiment for AdoptionExperiment {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Worldwide nolisting adoption survey"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig. 2"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let result = if config.telemetry.sample_interval.is_some() {
            let mut samples = TimeSeries::new();
            let r = run_with_telemetry(&module_config, report.metrics_mut(), &mut samples);
            *report.timeseries_mut() = samples;
            r
        } else {
            run_with_obs(&module_config, report.metrics_mut())
        };
        report
            .push_table(result.table())
            .push_scalar("nolisting share (%)", result.stats.pct(DomainClass::Nolisting))
            .push_scalar("one-MX share (%)", result.stats.pct(DomainClass::OneMx))
            .push_scalar("multi-MX share (%)", result.stats.pct(DomainClass::MultiMxNoNolisting))
            .push_scalar(
                "DNS misconfigured share (%)",
                result.stats.pct(DomainClass::DnsMisconfigured),
            )
            .push_scalar("detector precision", result.accuracy.precision())
            .push_scalar("detector recall", result.accuracy.recall())
            .push_scalar("glue re-resolved", result.glue_resolved as f64)
            .push_scalar("between-scan drift (%)", result.between_scan_change * 100.0);
        for (k, n) in &result.top_k {
            report.push_scalar(&format!("nolisting among top-{k}"), *n as f64);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AdoptionConfig {
        AdoptionConfig { domains: 5_000, ..Default::default() }
    }

    #[test]
    fn reproduces_fig2_shares() {
        let r = run(&small_config());
        assert!((r.stats.pct(DomainClass::OneMx) - 47.73).abs() < 3.0);
        assert!((r.stats.pct(DomainClass::MultiMxNoNolisting) - 45.97).abs() < 3.0);
        assert!((r.stats.pct(DomainClass::DnsMisconfigured) - 5.78).abs() < 2.0);
        let nolisting = r.stats.pct(DomainClass::Nolisting);
        assert!(nolisting > 0.05 && nolisting < 2.0, "nolisting share {nolisting}");
    }

    #[test]
    fn glue_pass_does_work_and_detector_is_accurate() {
        let r = run(&small_config());
        assert!(r.glue_resolved > 0, "the parallel resolver must have work");
        assert!(r.accuracy.precision() > 0.5);
        assert!(r.accuracy.recall() > 0.8);
    }

    #[test]
    fn between_scan_drift_is_small() {
        // The paper reports 0.01% change between the two scans; with mild
        // flakiness ours stays within a few percent.
        let r = run(&small_config());
        assert!(r.between_scan_change < 0.25, "drift {}", r.between_scan_change);
    }

    #[test]
    fn top_k_counts_are_monotone() {
        let r = run(&small_config());
        assert_eq!(r.top_k.len(), 3);
        assert!(r.top_k[0].1 <= r.top_k[1].1);
        assert!(r.top_k[1].1 <= r.top_k[2].1);
    }

    #[test]
    fn renders() {
        let out = run(&small_config()).to_string();
        assert!(out.contains("using nolisting"));
        assert!(out.contains("precision"));
        assert!(out.contains("top-15"));
    }

    #[test]
    #[should_panic(expected = "at least two scans")]
    fn one_epoch_rejected() {
        let mut c = small_config();
        c.epochs = vec![0];
        let _ = run(&c);
    }
}
