//! Fig. 2 — worldwide adoption of nolisting.
//!
//! The paper combined the zmap DNS-ANY dump with the IPv4 SMTP banner grab,
//! re-resolved the MX entries whose glue was missing, classified 42.6 M
//! mail setups, repeated the scan two months later, and cross-checked. The
//! reproduction runs the same pipeline over a synthetic population with
//! ground truth (see `spamward-scanner`), which additionally yields the
//! detector's precision/recall.

use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_obs::Registry;
use spamward_scanner::{
    resolve_missing, BannerGrab, DetectorAccuracy, DnsAnyScan, DomainClass, Fig2Stats,
    NolistingDetector, Population, PopulationSpec, ScanRound,
};
use std::fmt;

/// Configuration of the adoption survey.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptionConfig {
    /// Synthetic population size (the paper saw 135 M domains; default is
    /// laptop-scale with the same mix).
    pub domains: usize,
    /// RNG seed.
    pub seed: u64,
    /// Scan epochs (paper: two scans, 2015-02-28 and 2015-04-25).
    pub epochs: Vec<u64>,
    /// Parallel resolver threads for the missing-glue pass.
    pub workers: usize,
    /// Population knobs (class mix, host flakiness).
    pub spec: PopulationSpec,
}

impl Default for AdoptionConfig {
    fn default() -> Self {
        let domains = 30_000;
        AdoptionConfig {
            domains,
            seed: 2015,
            epochs: vec![0, 1],
            workers: 4,
            spec: PopulationSpec::fig2(domains),
        }
    }
}

/// The survey output.
#[derive(Debug, Clone)]
pub struct AdoptionResult {
    /// Fig. 2's class percentages.
    pub stats: Fig2Stats,
    /// Detector accuracy vs ground truth.
    pub accuracy: DetectorAccuracy,
    /// Detected-nolisting counts within the top-k popular domains, for the
    /// paper's Alexa cross-check (k = 15, 500, 1000).
    pub top_k: Vec<(u32, usize)>,
    /// MX entries whose glue the parallel scanner had to resolve.
    pub glue_resolved: usize,
    /// Change in detected-nolisting count between consecutive epochs, as a
    /// fraction (paper: 0.01%).
    pub between_scan_change: f64,
}

/// Runs the Fig. 2 survey.
///
/// # Panics
///
/// Panics if fewer than two scan epochs are configured (the cross-check
/// needs at least two).
pub fn run(config: &AdoptionConfig) -> AdoptionResult {
    run_with_obs(config, &mut Registry::new())
}

/// Runs the Fig. 2 survey, exporting scan-pipeline and classification
/// metrics into `reg`. (The survey has no mail world, so there is no trace
/// stream to drain.)
///
/// # Panics
///
/// Panics if fewer than two scan epochs are configured.
pub fn run_with_obs(config: &AdoptionConfig, reg: &mut Registry) -> AdoptionResult {
    assert!(config.epochs.len() >= 2, "the cross-check needs at least two scans");
    let mut spec = config.spec.clone();
    spec.domains = config.domains;
    let mut pop = Population::generate(&spec, config.seed);
    let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();

    let mut rounds = Vec::new();
    let mut glue_resolved = 0;
    for &epoch in &config.epochs {
        let mut dns_scan = DnsAnyScan::collect(&mut pop.dns, &names);
        glue_resolved += resolve_missing(&mut dns_scan, &pop.dns, config.workers);
        let banner = BannerGrab::collect(&pop.network, epoch);
        rounds.push(ScanRound { dns: dns_scan, banner });
    }

    // Per-epoch single-scan counts, for the between-scan drift number.
    let mut per_epoch_nolisting = Vec::new();
    for round in &rounds {
        let (stats, _) = NolistingDetector::run(std::slice::from_ref(round), &names);
        per_epoch_nolisting.push(
            stats
                .counts
                .iter()
                .find(|(c, _)| *c == DomainClass::Nolisting)
                .map(|(_, n)| *n)
                .unwrap_or(0),
        );
    }
    let between_scan_change = if per_epoch_nolisting[0] == 0 {
        0.0
    } else {
        (per_epoch_nolisting[1] as f64 - per_epoch_nolisting[0] as f64).abs()
            / per_epoch_nolisting[0] as f64
    };

    let (stats, verdicts) = NolistingDetector::run(&rounds, &names);
    let accuracy = NolistingDetector::score(&pop, &verdicts);
    spamward_scanner::metrics::collect_rounds(&rounds, reg);
    spamward_scanner::metrics::collect_fig2(&stats, reg);
    spamward_scanner::metrics::collect_accuracy(&accuracy, reg);

    let top_k = [15u32, 500, 1000]
        .iter()
        .map(|&k| {
            let count = pop
                .domains
                .iter()
                .filter(|d| {
                    d.alexa_rank <= k && verdicts.get(&d.name) == Some(&DomainClass::Nolisting)
                })
                .count();
            (k, count)
        })
        .collect();

    AdoptionResult { stats, accuracy, top_k, glue_resolved, between_scan_change }
}

impl AdoptionResult {
    /// The Fig. 2 class breakdown as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Class", "Domains", "Share"])
            .with_title("Figure 2: nolisting mail server statistics");
        for (class, count) in &self.stats.counts {
            t.row(vec![
                class.to_string(),
                count.to_string(),
                format!("{:.2}%", self.stats.pct(*class)),
            ]);
        }
        t
    }
}

impl fmt::Display for AdoptionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "glue re-resolved: {} entries; between-scan drift: {:.3}%",
            self.glue_resolved,
            self.between_scan_change * 100.0
        )?;
        writeln!(
            f,
            "detector vs ground truth: precision {:.3}, recall {:.3}",
            self.accuracy.precision(),
            self.accuracy.recall()
        )?;
        for (k, n) in &self.top_k {
            writeln!(f, "nolisting among top-{k} popular domains: {n}")?;
        }
        Ok(())
    }
}

/// Registry entry for the Fig. 2 adoption survey.
pub struct AdoptionExperiment;

impl AdoptionExperiment {
    /// The module config a harness config maps to (shared with
    /// [`variance`](crate::experiments::variance)).
    pub fn config(harness: &HarnessConfig) -> AdoptionConfig {
        let domains = match harness.scale {
            Scale::Paper => AdoptionConfig::default().domains,
            Scale::Quick => 4_000,
        };
        AdoptionConfig {
            domains,
            seed: harness.seed_or(AdoptionConfig::default().seed),
            ..Default::default()
        }
    }
}

impl Experiment for AdoptionExperiment {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Worldwide nolisting adoption survey"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig. 2"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let result = run_with_obs(&module_config, report.metrics_mut());
        report
            .push_table(result.table())
            .push_scalar("nolisting share (%)", result.stats.pct(DomainClass::Nolisting))
            .push_scalar("one-MX share (%)", result.stats.pct(DomainClass::OneMx))
            .push_scalar("multi-MX share (%)", result.stats.pct(DomainClass::MultiMxNoNolisting))
            .push_scalar(
                "DNS misconfigured share (%)",
                result.stats.pct(DomainClass::DnsMisconfigured),
            )
            .push_scalar("detector precision", result.accuracy.precision())
            .push_scalar("detector recall", result.accuracy.recall())
            .push_scalar("glue re-resolved", result.glue_resolved as f64)
            .push_scalar("between-scan drift (%)", result.between_scan_change * 100.0);
        for (k, n) in &result.top_k {
            report.push_scalar(&format!("nolisting among top-{k}"), *n as f64);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AdoptionConfig {
        AdoptionConfig { domains: 5_000, ..Default::default() }
    }

    #[test]
    fn reproduces_fig2_shares() {
        let r = run(&small_config());
        assert!((r.stats.pct(DomainClass::OneMx) - 47.73).abs() < 3.0);
        assert!((r.stats.pct(DomainClass::MultiMxNoNolisting) - 45.97).abs() < 3.0);
        assert!((r.stats.pct(DomainClass::DnsMisconfigured) - 5.78).abs() < 2.0);
        let nolisting = r.stats.pct(DomainClass::Nolisting);
        assert!(nolisting > 0.05 && nolisting < 2.0, "nolisting share {nolisting}");
    }

    #[test]
    fn glue_pass_does_work_and_detector_is_accurate() {
        let r = run(&small_config());
        assert!(r.glue_resolved > 0, "the parallel resolver must have work");
        assert!(r.accuracy.precision() > 0.5);
        assert!(r.accuracy.recall() > 0.8);
    }

    #[test]
    fn between_scan_drift_is_small() {
        // The paper reports 0.01% change between the two scans; with mild
        // flakiness ours stays within a few percent.
        let r = run(&small_config());
        assert!(r.between_scan_change < 0.25, "drift {}", r.between_scan_change);
    }

    #[test]
    fn top_k_counts_are_monotone() {
        let r = run(&small_config());
        assert_eq!(r.top_k.len(), 3);
        assert!(r.top_k[0].1 <= r.top_k[1].1);
        assert!(r.top_k[1].1 <= r.top_k[2].1);
    }

    #[test]
    fn renders() {
        let out = run(&small_config()).to_string();
        assert!(out.contains("using nolisting"));
        assert!(out.contains("precision"));
        assert!(out.contains("top-15"));
    }

    #[test]
    #[should_panic(expected = "at least two scans")]
    fn one_epoch_rejected() {
        let mut c = small_config();
        c.epochs = vec![0];
        let _ = run(&c);
    }
}
