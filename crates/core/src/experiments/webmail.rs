//! Table III — webmail delivery attempts against a 6-hour greylist.
//!
//! Each of the ten provider models sends one message to the victim server
//! greylisting at 21 600 s; we record every attempt's delay, the number of
//! distinct source addresses, and whether the message eventually arrived.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report};
use spamward_analysis::{fmt_min_sec, Table};
use spamward_mta::OutboundStatus;
use spamward_obs::Registry;
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{EmailAddress, Message, ReversePath};
use spamward_webmail::WebmailProvider;
use std::collections::HashSet;
use std::fmt;
use std::net::Ipv4Addr;

/// Configuration of the webmail experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WebmailConfig {
    /// RNG seed.
    pub seed: u64,
    /// The greylisting threshold (paper: 6 hours).
    pub threshold: SimDuration,
    /// Spread each provider's pool across /24s instead of within one
    /// (ablation; the paper-consistent default is one subnet).
    pub spread_subnets: bool,
    /// Engine event budget shared by every per-provider world
    /// (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for WebmailConfig {
    fn default() -> Self {
        WebmailConfig {
            seed: 360,
            threshold: SimDuration::from_hours(6),
            spread_subnets: false,
            event_budget: None,
        }
    }
}

/// One Table III row.
#[derive(Debug, Clone, PartialEq)]
pub struct WebmailRow {
    /// Provider name.
    pub provider: String,
    /// Whether all attempts used one source address.
    pub same_ip: bool,
    /// Distinct addresses used.
    pub distinct_ips: usize,
    /// Total delivery attempts.
    pub attempts: u32,
    /// Whether the message was delivered.
    pub delivered: bool,
    /// Delay of each retry (not counting the initial attempt) since
    /// submission.
    pub delays: Vec<SimDuration>,
    /// The paper's attempt count, for comparison.
    pub attempts_in_paper: u32,
    /// The paper's delivery verdict, for comparison.
    pub delivered_in_paper: bool,
}

/// The regenerated Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct WebmailResult {
    /// One row per provider, paper order.
    pub rows: Vec<WebmailRow>,
    /// The threshold used.
    pub threshold: SimDuration,
}

/// Runs the Table III experiment.
pub fn run(config: &WebmailConfig) -> WebmailResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the Table III experiment, exporting per-provider retry metrics and
/// per-world protocol metrics into `reg` and (when `trace` is set) draining
/// delivery traces into `trace_lines`.
pub fn run_with_obs(
    config: &WebmailConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> WebmailResult {
    let mut rows = Vec::new();
    for (idx, provider) in WebmailProvider::table_iii().into_iter().enumerate() {
        // Fresh victim per provider so triplet state never leaks across
        // rows.
        let mut world = worlds::greylist_world(config.seed, config.threshold);
        world.event_budget = config.event_budget;
        if trace {
            world = world.with_tracing();
        }
        let pool_base = Ipv4Addr::new(198, 18, idx as u8, 1);
        let mut sender = if config.spread_subnets {
            provider.build_sender_spread(pool_base, config.seed)
        } else {
            provider.build_sender(pool_base, config.seed)
        };

        let sender_addr: EmailAddress =
            format!("tester@{}", provider.name).parse().expect("valid provider sender");
        let rcpt: EmailAddress =
            format!("testaccount@{VICTIM_DOMAIN}").parse().expect("valid recipient");
        let message = Message::builder()
            .header("Subject", "greylisting probe")
            .body("hello from the webmail experiment")
            .build();
        sender.submit(
            VICTIM_DOMAIN.parse().expect("valid victim domain"),
            ReversePath::Address(sender_addr),
            vec![rcpt],
            message,
            SimTime::ZERO,
        );
        sender.drain(SimTime::ZERO, &mut world);
        spamward_webmail::metrics::collect_provider(&provider, &sender, reg);
        spamward_mta::metrics::collect_world(&world, reg);
        trace_lines.extend(world.trace.events().map(|e| e.to_string()));

        let records = sender.records();
        let used_ips: HashSet<Ipv4Addr> = records.iter().map(|r| r.source_ip).collect();
        let delivered = sender.queue()[0].status == OutboundStatus::Delivered;
        let delays = records.iter().skip(1).map(|r| r.since_enqueue).collect();
        debug_assert_eq!(
            world.server(VICTIM_MX_IP).expect("victim").mailbox().len(),
            usize::from(delivered)
        );

        rows.push(WebmailRow {
            provider: provider.name.clone(),
            same_ip: used_ips.len() == 1,
            distinct_ips: used_ips.len(),
            attempts: records.len() as u32,
            delivered,
            delays,
            attempts_in_paper: provider.attempts_in_paper,
            delivered_in_paper: provider.delivered_in_paper,
        });
    }
    WebmailResult { rows, threshold: config.threshold }
}

impl WebmailResult {
    /// Rows where the measured deliver-verdict matches the paper's.
    pub fn verdict_matches(&self) -> usize {
        self.rows.iter().filter(|r| r.delivered == r.delivered_in_paper).count()
    }
}

impl WebmailResult {
    /// Table III as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t =
            Table::new(vec!["Provider", "Same IP", "Attempts", "Deliver", "Delays (min:sec)"])
                .with_title(&format!(
                    "Table III: webmail delivery attempts with a {} greylisting threshold",
                    self.threshold
                ));
        for r in &self.rows {
            let same_ip =
                if r.same_ip { "v".to_owned() } else { format!("x ({})", r.distinct_ips) };
            let mut delays: Vec<String> =
                r.delays.iter().take(8).map(|&d| fmt_min_sec(d)).collect();
            if r.delays.len() > 8 {
                delays.push(format!("... ({} total)", r.delays.len()));
            }
            t.row(vec![
                r.provider.clone(),
                same_ip,
                r.attempts.to_string(),
                if r.delivered { "v".into() } else { "x".into() },
                delays.join(", "),
            ]);
        }
        t
    }
}

impl fmt::Display for WebmailResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// Registry entry for the Table III webmail probes.
pub struct WebmailExperiment;

impl Experiment for WebmailExperiment {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "Webmail retries at a 6 h greylisting threshold"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table III"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        // Ten providers, one message each: already quick at paper scale.
        let module_config = WebmailConfig {
            seed: config.seed_or(WebmailConfig::default().seed),
            event_budget: config.event_budget,
            ..Default::default()
        };
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report
            .push_table(result.table())
            .push_scalar("providers", result.rows.len() as f64)
            .push_scalar("verdicts matching paper", result.verdict_matches() as f64);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> WebmailResult {
        run(&WebmailConfig::default())
    }

    #[test]
    fn deliver_column_matches_paper_exactly() {
        let r = result();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.verdict_matches(), 10, "{r}");
        let aol = r.rows.iter().find(|x| x.provider == "aol.com").unwrap();
        assert!(!aol.delivered, "aol gives up after 31 minutes");
        assert_eq!(aol.attempts, 5);
    }

    #[test]
    fn attempt_counts_close_to_paper() {
        // qq.com's published row is internally inconsistent (delivered,
        // but its listed ladder stops at 204:56 < 6 h); our model recovers
        // every other provider's count exactly.
        let r = result();
        for row in &r.rows {
            if row.provider == "qq.com" {
                assert!(row.delivered);
                assert!((row.attempts as i64 - row.attempts_in_paper as i64).abs() <= 2);
                continue;
            }
            assert_eq!(
                row.attempts, row.attempts_in_paper,
                "{}: measured {} vs paper {}",
                row.provider, row.attempts, row.attempts_in_paper
            );
        }
    }

    #[test]
    fn same_ip_column_matches_paper() {
        let r = result();
        for row in &r.rows {
            let provider =
                WebmailProvider::table_iii().into_iter().find(|p| p.name == row.provider).unwrap();
            assert_eq!(row.same_ip, provider.same_ip(), "{}", row.provider);
            assert_eq!(row.distinct_ips.min(7), provider.distinct_ips.min(7), "{}", row.provider);
        }
    }

    #[test]
    fn gmail_delays_match_published_ladder() {
        let r = result();
        let gmail = r.rows.iter().find(|x| x.provider == "gmail.com").unwrap();
        let rendered: Vec<String> = gmail.delays.iter().map(|&d| fmt_min_sec(d)).collect();
        assert_eq!(
            rendered,
            vec!["6:02", "29:02", "56:36", "98:44", "162:03", "229:44", "309:05", "434:46"]
        );
        assert!(gmail.delivered);
    }

    #[test]
    fn delivery_always_past_threshold() {
        let r = result();
        for row in r.rows.iter().filter(|r| r.delivered) {
            let last = *row.delays.last().unwrap();
            assert!(last >= r.threshold, "{} delivered at {last} before threshold", row.provider);
        }
    }

    #[test]
    fn subnet_spread_ablation_slows_multi_ip_providers() {
        let base = run(&WebmailConfig::default());
        let spread = run(&WebmailConfig { spread_subnets: true, ..Default::default() });
        let attempts = |r: &WebmailResult, name: &str| {
            r.rows.iter().find(|x| x.provider == name).unwrap().attempts
        };
        // mail.ru rotates 7 addresses on a dense ladder: with each address
        // in its own /24 every address must independently age past 6 h,
        // costing extra attempts. (gmail's sparser ladder happens to line
        // up so that the rotation costs nothing — the ablation shows the
        // effect is ladder-dependent.)
        assert!(
            attempts(&spread, "mail.ru") > attempts(&base, "mail.ru"),
            "spread {} !> base {}",
            attempts(&spread, "mail.ru"),
            attempts(&base, "mail.ru")
        );
        // Single-IP providers are unaffected.
        assert_eq!(attempts(&spread, "yahoo.co.uk"), attempts(&base, "yahoo.co.uk"));
    }

    #[test]
    fn renders_table() {
        let out = result().to_string();
        assert!(out.contains("Table III"));
        assert!(out.contains("gmail.com"));
        assert!(out.contains("434:46"));
        assert!(out.contains("x (7)") || out.contains("x (2)"));
    }
}
