//! Shared world builders: the lab setups of §III.
//!
//! Public so that integration tests and downstream users can reuse the
//! paper's exact victim configurations.

use spamward_dns::{DomainName, Zone};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::{MailWorld, ReceivingMta};
use spamward_net::{PortState, SMTP_PORT};
use spamward_sim::SimDuration;
use std::net::Ipv4Addr;

/// The victim domain every lab experiment targets.
pub const VICTIM_DOMAIN: &str = "victim.example";

/// Address of the (live) victim mail server.
pub const VICTIM_MX_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);

/// Address of the nolisting dead primary.
pub const VICTIM_DEAD_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 11);

fn victim_domain() -> DomainName {
    VICTIM_DOMAIN.parse().expect("victim domain is valid")
}

/// An unprotected victim server (baseline).
pub fn plain_world(seed: u64) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.install_server(ReceivingMta::new("mail.victim.example", VICTIM_MX_IP));
    w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    w
}

/// A victim protected by nolisting: dead primary (port 25 closed), working
/// secondary — the paper's §IV DNS configuration.
pub fn nolisting_world(seed: u64) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.network
        .host("smtp.victim.example")
        .ip(VICTIM_DEAD_IP)
        .port(SMTP_PORT, PortState::Closed)
        .build();
    w.install_server(ReceivingMta::new("smtp1.victim.example", VICTIM_MX_IP));
    w.dns.publish(Zone::nolisting(victim_domain(), VICTIM_DEAD_IP, VICTIM_MX_IP));
    w
}

/// A victim protected by greylisting at `delay` (Postgrey-like defaults,
/// auto-whitelist off so repeated experiments stay independent), with an
/// unprotected `postmaster` control address as in §V-A.
pub fn greylist_world(seed: u64, delay: SimDuration) -> MailWorld {
    let mut cfg = GreylistConfig::with_delay(delay).without_auto_whitelist();
    cfg.whitelist_recipients.add_local_part("postmaster");
    let mut w = MailWorld::new(seed);
    w.install_server(
        ReceivingMta::new("mail.victim.example", VICTIM_MX_IP).with_greylist(Greylist::new(cfg)),
    );
    w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_net::ProbeResult;

    #[test]
    fn worlds_have_expected_shape() {
        let w = plain_world(1);
        assert!(w.server(VICTIM_MX_IP).is_some());

        let w = nolisting_world(1);
        assert_eq!(w.network.probe(VICTIM_DEAD_IP, SMTP_PORT, 0), ProbeResult::Rst);
        assert_eq!(w.network.probe(VICTIM_MX_IP, SMTP_PORT, 0), ProbeResult::SynAck);

        let w = greylist_world(1, SimDuration::from_secs(300));
        let gl = w.server(VICTIM_MX_IP).unwrap().greylist().unwrap();
        assert_eq!(gl.config().delay, SimDuration::from_secs(300));
        assert_eq!(gl.config().auto_whitelist_after, None);
    }
}
