//! Shared world builders: the lab setups of §III.
//!
//! Public so that integration tests and downstream users can reuse the
//! paper's exact victim configurations.

use spamward_dns::{DomainName, Zone};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::{DegradationMode, MailWorld, ReceivingMta};
use spamward_net::{Availability, FaultWindow, PortState, SMTP_PORT};
use spamward_sim::SimDuration;
use std::net::Ipv4Addr;

/// The victim domain every lab experiment targets.
pub const VICTIM_DOMAIN: &str = "victim.example";

/// Address of the (live) victim mail server.
pub const VICTIM_MX_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);

/// Address of the nolisting dead primary.
pub const VICTIM_DEAD_IP: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 11);

fn victim_domain() -> DomainName {
    VICTIM_DOMAIN.parse().expect("victim domain is valid")
}

/// An unprotected victim server (baseline).
pub fn plain_world(seed: u64) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.install_server(ReceivingMta::new("mail.victim.example", VICTIM_MX_IP));
    w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    w
}

/// A victim protected by nolisting: dead primary (port 25 closed), working
/// secondary — the paper's §IV DNS configuration.
pub fn nolisting_world(seed: u64) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.network
        .host("smtp.victim.example")
        .ip(VICTIM_DEAD_IP)
        .port(SMTP_PORT, PortState::Closed)
        .build();
    w.install_server(ReceivingMta::new("smtp1.victim.example", VICTIM_MX_IP));
    w.dns.publish(Zone::nolisting(victim_domain(), VICTIM_DEAD_IP, VICTIM_MX_IP));
    w
}

/// A victim protected by greylisting at `delay` (Postgrey-like defaults,
/// auto-whitelist off so repeated experiments stay independent), with an
/// unprotected `postmaster` control address as in §V-A.
pub fn greylist_world(seed: u64, delay: SimDuration) -> MailWorld {
    let mut cfg = GreylistConfig::with_delay(delay).without_auto_whitelist();
    cfg.whitelist_recipients.add_local_part("postmaster");
    custom_greylist_world(seed, Greylist::new(cfg))
}

/// The standard victim behind an arbitrary pre-configured [`Greylist`] —
/// the shared base of every keying/capacity/AWL variation the ablations
/// and extension experiments test.
pub fn custom_greylist_world(seed: u64, greylist: Greylist) -> MailWorld {
    greylist_world_at(seed, VICTIM_DOMAIN, "mail.victim.example", greylist)
}

/// A single-MX deployment at an arbitrary `domain` whose server `host`
/// runs the given greylist (e.g. the Fig. 5 campus deployment).
///
/// # Panics
///
/// Panics if `domain` is not a valid DNS name.
pub fn greylist_world_at(seed: u64, domain: &str, host: &str, greylist: Greylist) -> MailWorld {
    let domain: DomainName = domain.parse().expect("deployment domain is valid");
    let mut w = MailWorld::new(seed);
    w.install_server(ReceivingMta::new(host, VICTIM_MX_IP).with_greylist(greylist));
    w.dns.publish(Zone::single_mx(domain, VICTIM_MX_IP));
    w
}

/// The standard greylist victim with an explicit store-outage degradation
/// mode — [`custom_greylist_world`] plus the fail-open/fail-closed policy
/// the `policy_backend` experiment exercises against store faults.
pub fn degraded_greylist_world(seed: u64, greylist: Greylist, mode: DegradationMode) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.install_server(
        ReceivingMta::new("mail.victim.example", VICTIM_MX_IP)
            .with_greylist(greylist)
            .with_degradation(mode),
    );
    w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    w
}

/// Nolisting *and* greylisting stacked: the dead primary of
/// [`nolisting_world`] in front of a secondary running `greylist`.
pub fn stacked_world(seed: u64, greylist: Greylist) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.network
        .host("smtp.victim.example")
        .ip(VICTIM_DEAD_IP)
        .port(SMTP_PORT, PortState::Closed)
        .build();
    w.install_server(
        ReceivingMta::new("smtp1.victim.example", VICTIM_MX_IP).with_greylist(greylist),
    );
    w.dns.publish(Zone::nolisting(victim_domain(), VICTIM_DEAD_IP, VICTIM_MX_IP));
    w
}

/// A nolisting victim whose *live* secondary additionally observes planned
/// maintenance windows ([`Availability::Windows`]): connections during a
/// window time out exactly like an unplanned outage, and resume as soon as
/// the window closes. The resilience experiment uses this to measure how
/// retry policies ride out scheduled downtime.
pub fn planned_downtime_world(seed: u64, down: Vec<FaultWindow>) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.network
        .host("smtp.victim.example")
        .ip(VICTIM_DEAD_IP)
        .port(SMTP_PORT, PortState::Closed)
        .build();
    w.network
        .host("smtp1.victim.example")
        .ip(VICTIM_MX_IP)
        .smtp_open()
        .availability(Availability::Windows { down })
        .build();
    w.install_server(ReceivingMta::new("smtp1.victim.example", VICTIM_MX_IP));
    w.dns.publish(Zone::nolisting(victim_domain(), VICTIM_DEAD_IP, VICTIM_MX_IP));
    w
}

/// A victim whose *only* defense is postscreen-style pregreet (early-talker)
/// rejection — no delay is inflicted on anyone.
pub fn pregreet_world(seed: u64) -> MailWorld {
    let mut w = MailWorld::new(seed);
    w.install_server(
        ReceivingMta::new("mail.victim.example", VICTIM_MX_IP).with_pregreet_rejection(),
    );
    w.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_net::ProbeResult;

    #[test]
    fn worlds_have_expected_shape() {
        let w = plain_world(1);
        assert!(w.server(VICTIM_MX_IP).is_some());

        let w = nolisting_world(1);
        assert_eq!(w.network.probe(VICTIM_DEAD_IP, SMTP_PORT, 0), ProbeResult::Rst);
        assert_eq!(w.network.probe(VICTIM_MX_IP, SMTP_PORT, 0), ProbeResult::SynAck);

        let w = greylist_world(1, SimDuration::from_secs(300));
        let gl = w.server(VICTIM_MX_IP).unwrap().greylist().unwrap();
        assert_eq!(gl.config().delay, SimDuration::from_secs(300));
        assert_eq!(gl.config().auto_whitelist_after, None);
    }

    #[test]
    fn planned_downtime_world_times_out_inside_windows_only() {
        use spamward_sim::SimTime;
        let window = FaultWindow::new(SimTime::from_secs(600), SimTime::from_secs(1200));
        let mut w = planned_downtime_world(3, vec![window]);
        assert!(w.network.connect_at(VICTIM_MX_IP, SMTP_PORT, 0, SimTime::ZERO).is_ok());
        assert!(w.network.connect_at(VICTIM_MX_IP, SMTP_PORT, 0, SimTime::from_secs(600)).is_err());
        assert!(w.network.connect_at(VICTIM_MX_IP, SMTP_PORT, 0, SimTime::from_secs(1200)).is_ok());
        // The dead primary stays dead regardless of the schedule.
        assert_eq!(w.network.probe(VICTIM_DEAD_IP, SMTP_PORT, 0), ProbeResult::Rst);
    }

    #[test]
    fn custom_builders_have_expected_shape() {
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(60)).without_auto_whitelist();
        cfg.netmask = 32;
        let w = custom_greylist_world(2, Greylist::new(cfg.clone()));
        let gl = w.server(VICTIM_MX_IP).unwrap().greylist().unwrap();
        assert_eq!(gl.config().netmask, 32);
        assert_eq!(gl.config().delay, SimDuration::from_secs(60));

        let w = greylist_world_at(2, "campus.example", "mx.campus.example", Greylist::new(cfg));
        assert!(w.server(VICTIM_MX_IP).unwrap().greylist().is_some());

        let w = stacked_world(2, Greylist::new(GreylistConfig::default()));
        assert_eq!(w.network.probe(VICTIM_DEAD_IP, SMTP_PORT, 0), ProbeResult::Rst);
        assert!(w.server(VICTIM_MX_IP).unwrap().greylist().is_some());

        let w = pregreet_world(2);
        assert!(w.server(VICTIM_MX_IP).unwrap().greylist().is_none());

        let w = degraded_greylist_world(
            2,
            Greylist::new(GreylistConfig::default()),
            DegradationMode::FailClosed,
        );
        assert!(w.server(VICTIM_MX_IP).unwrap().greylist().is_some());
    }
}
