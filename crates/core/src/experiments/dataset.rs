//! Table I — the malware dataset inventory.

use crate::harness::{Experiment, HarnessConfig, HarnessError, Report};
use spamward_analysis::Table;
use spamward_botnet::{MalwareFamily, BOTNET_FRACTION_OF_GLOBAL_SPAM};
use std::fmt;

/// Table I as produced data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// One row per family: name, % of 2014 botnet spam, sample count.
    pub rows: Vec<(String, f64, u32)>,
    /// The families' combined share of botnet spam (paper: 93.02%).
    pub total_botnet_pct: f64,
    /// Their combined share of global spam (paper: 70.69%).
    pub total_global_pct: f64,
}

/// Regenerates Table I from the family models.
pub fn run() -> Table1 {
    let rows = MalwareFamily::table_i()
        .into_iter()
        .map(|r| (r.family.name().to_owned(), r.botnet_spam_pct, r.samples))
        .collect();
    Table1 {
        rows,
        total_botnet_pct: MalwareFamily::total_botnet_pct(),
        total_global_pct: MalwareFamily::total_global_pct(),
    }
}

impl Table1 {
    /// Table I as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Malware Family", "% of Botnet Spam (2014)", "Samples"])
            .with_title("Table I: malware samples used in the experiments");
        for (name, pct, samples) in &self.rows {
            t.row(vec![name.clone(), format!("{pct:.2}%"), samples.to_string()]);
        }
        t.row(vec![
            "Total Botnet Spam".into(),
            format!("{:.2}%", self.total_botnet_pct),
            self.rows.iter().map(|r| r.2).sum::<u32>().to_string(),
        ]);
        t.row(vec![
            "Total Global Spam".into(),
            format!("{:.2}%", self.total_global_pct),
            String::new(),
        ]);
        t
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "(botnets account for {:.0}% of global spam)",
            BOTNET_FRACTION_OF_GLOBAL_SPAM * 100.0
        )
    }
}

/// Registry entry for Table I. The inventory is a fixed catalogue, so the
/// run ignores seed and scale.
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Malware dataset inventory"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table I"
    }

    fn seedable(&self) -> bool {
        false
    }

    fn run(&self, _config: &HarnessConfig) -> Result<Report, HarnessError> {
        let t = run();
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact());
        crate::metrics::collect_table1(&t, report.metrics_mut());
        report
            .push_table(t.table())
            .push_text(&format!(
                "(botnets account for {:.0}% of global spam)",
                BOTNET_FRACTION_OF_GLOBAL_SPAM * 100.0
            ))
            .push_scalar("total botnet spam (%)", t.total_botnet_pct)
            .push_scalar("total global spam (%)", t.total_global_pct);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_totals() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        assert!((t.total_botnet_pct - 93.02).abs() < 1e-9);
        assert!((t.total_global_pct - 70.69).abs() < 0.01);
    }

    #[test]
    fn renders_all_rows() {
        let out = run().to_string();
        for name in ["Cutwail", "Kelihos", "Darkmailer", "Darkmailer(v3)", "Total Botnet Spam"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("46.90%"));
        assert!(out.contains("93.02%"));
    }
}
