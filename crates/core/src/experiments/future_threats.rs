//! §VI forward-looking analysis: when do the defenses become obsolete?
//!
//! The paper ends on a warning — both techniques work only until malware
//! adapts, and "it is important to know when they will become obsolete".
//! This experiment runs the plausible adaptations (see
//! [`spamward_botnet::AdaptiveBot`]) against each defense configuration
//! and reports which combinations still hold.

use crate::experiments::worlds::{self, VICTIM_DOMAIN};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_botnet::{AdaptiveBot, Campaign};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::MailWorld;
use spamward_obs::Registry;
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// Configuration of the future-threats matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureThreatsConfig {
    /// RNG seed.
    pub seed: u64,
    /// Victims per campaign.
    pub recipients: usize,
    /// Observation horizon.
    pub horizon: SimDuration,
    /// Engine event budget shared by every per-cell world
    /// (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for FutureThreatsConfig {
    fn default() -> Self {
        FutureThreatsConfig {
            seed: 2030,
            recipients: 10,
            horizon: SimDuration::from_secs(200_000),
            event_budget: None,
        }
    }
}

/// Defense configurations tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseSetup {
    /// Nolisting only.
    Nolisting,
    /// Greylisting at 300 s, /24 keying (Postgrey defaults).
    GreylistNet24,
    /// Greylisting at 300 s, exact-IP keying.
    GreylistExact,
    /// Nolisting + greylisting stacked.
    Stack,
}

impl fmt::Display for DefenseSetup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefenseSetup::Nolisting => "nolisting",
            DefenseSetup::GreylistNet24 => "greylist (/24 key)",
            DefenseSetup::GreylistExact => "greylist (exact key)",
            DefenseSetup::Stack => "nolisting + greylist",
        };
        f.write_str(s)
    }
}

impl DefenseSetup {
    /// All tested setups.
    pub const ALL: [DefenseSetup; 4] = [
        DefenseSetup::Nolisting,
        DefenseSetup::GreylistNet24,
        DefenseSetup::GreylistExact,
        DefenseSetup::Stack,
    ];
}

/// One cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatCell {
    /// The attacking bot model.
    pub bot: String,
    /// The defense it ran against.
    pub defense: DefenseSetup,
    /// Fraction of the campaign delivered.
    pub delivery_rate: f64,
}

/// The full matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureThreatsResult {
    /// One cell per (bot, defense) pair.
    pub cells: Vec<ThreatCell>,
}

impl FutureThreatsResult {
    /// The delivery rate of a specific pair.
    pub fn rate(&self, bot: &str, defense: DefenseSetup) -> Option<f64> {
        self.cells.iter().find(|c| c.bot == bot && c.defense == defense).map(|c| c.delivery_rate)
    }
}

fn build_world(seed: u64, setup: DefenseSetup) -> MailWorld {
    let greylist = |netmask: u8| {
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
        cfg.netmask = netmask;
        Greylist::new(cfg)
    };
    match setup {
        DefenseSetup::Nolisting => worlds::nolisting_world(seed),
        DefenseSetup::GreylistNet24 => worlds::custom_greylist_world(seed, greylist(24)),
        DefenseSetup::GreylistExact => worlds::custom_greylist_world(seed, greylist(32)),
        DefenseSetup::Stack => worlds::stacked_world(seed, greylist(24)),
    }
}

fn bots() -> Vec<AdaptiveBot> {
    let cross_subnet: Vec<Ipv4Addr> = (0..8u8).map(|i| Ipv4Addr::new(203, 0, 100 + i, 7)).collect();
    vec![
        AdaptiveBot::full_compliance(Ipv4Addr::new(203, 0, 113, 90)),
        AdaptiveBot::distributed_retry(cross_subnet),
        AdaptiveBot::subnet_botnet(Ipv4Addr::new(203, 0, 113, 10), 20),
    ]
}

/// Runs the full (bot × defense) matrix.
pub fn run(config: &FutureThreatsConfig) -> FutureThreatsResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the full (bot × defense) matrix, aggregating per-world protocol
/// metrics into `reg` and (when `trace` is set) draining delivery traces
/// into `trace_lines`.
pub fn run_with_obs(
    config: &FutureThreatsConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> FutureThreatsResult {
    let mut cells = Vec::new();
    for template in bots() {
        for defense in DefenseSetup::ALL {
            let mut world = build_world(config.seed, defense);
            world.event_budget = config.event_budget;
            if trace {
                world = world.with_tracing();
            }
            let mut rng = DetRng::seed(config.seed).fork("future");
            let campaign = Campaign::synthetic(VICTIM_DOMAIN, config.recipients, &mut rng);
            let mut bot = template.clone();
            let report = bot.run_campaign(
                &mut world,
                &campaign,
                SimTime::ZERO,
                SimTime::ZERO + config.horizon,
            );
            spamward_mta::metrics::collect_world(&world, reg);
            trace_lines.extend(world.trace.events().map(|e| e.to_string()));
            cells.push(ThreatCell {
                bot: template.name.clone(),
                defense,
                delivery_rate: report.delivery_rate(),
            });
        }
    }
    FutureThreatsResult { cells }
}

const READING_NOTE: &str = "Reading: a fully RFC-compliant retrying bot ends the story for both\n\
     defenses; distributed retry is self-defeating UNLESS the botnet owns a\n\
     whole /24 — in which case only exact-IP keying holds.";

impl FutureThreatsResult {
    /// The matrix as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Hypothetical bot",
            "nolisting",
            "greylist /24",
            "greylist exact",
            "stack",
        ])
        .with_title(
            "Section VI outlook: spam delivered by adapted malware (100% = defense obsolete)",
        );
        let mut bots: Vec<&str> = self.cells.iter().map(|c| c.bot.as_str()).collect();
        bots.dedup();
        for bot in bots {
            let cell = |d: DefenseSetup| {
                self.rate(bot, d).map(|r| format!("{:.0}%", r * 100.0)).unwrap_or_default()
            };
            t.row(vec![
                bot.to_owned(),
                cell(DefenseSetup::Nolisting),
                cell(DefenseSetup::GreylistNet24),
                cell(DefenseSetup::GreylistExact),
                cell(DefenseSetup::Stack),
            ]);
        }
        t
    }
}

impl fmt::Display for FutureThreatsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(f, "{READING_NOTE}")
    }
}

/// Registry entry for the §VI adaptation matrix.
pub struct FutureThreatsExperiment;

impl Experiment for FutureThreatsExperiment {
    fn id(&self) -> &'static str {
        "future"
    }

    fn title(&self) -> &'static str {
        "Adapted-malware obsolescence matrix"
    }

    fn paper_artifact(&self) -> &'static str {
        "§VI outlook"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = FutureThreatsConfig {
            seed: config.seed_or(FutureThreatsConfig::default().seed),
            recipients: match config.scale {
                Scale::Paper => FutureThreatsConfig::default().recipients,
                Scale::Quick => 4,
            },
            event_budget: config.event_budget,
            ..Default::default()
        };
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report.push_table(result.table()).push_text(READING_NOTE);
        for cell in &result.cells {
            report.push_scalar(
                &format!("delivered (%): {} vs {}", cell.bot, cell.defense),
                cell.delivery_rate * 100.0,
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> FutureThreatsResult {
        run(&FutureThreatsConfig { recipients: 4, ..Default::default() })
    }

    #[test]
    fn full_compliance_defeats_everything() {
        let r = result();
        for defense in DefenseSetup::ALL {
            assert_eq!(
                r.rate("full-compliance", defense),
                Some(1.0),
                "full compliance must defeat {defense}"
            );
        }
    }

    #[test]
    fn distributed_retry_beaten_by_any_greylist() {
        let r = result();
        // It walks MXs, so nolisting alone doesn't stop it...
        assert_eq!(r.rate("distributed-retry", DefenseSetup::Nolisting), Some(1.0));
        // ...but every greylist variant does.
        for d in [DefenseSetup::GreylistNet24, DefenseSetup::GreylistExact, DefenseSetup::Stack] {
            assert_eq!(r.rate("distributed-retry", d), Some(0.0), "{d}");
        }
    }

    #[test]
    fn subnet_botnet_splits_on_keying() {
        let r = result();
        assert_eq!(r.rate("subnet-botnet", DefenseSetup::GreylistNet24), Some(1.0));
        assert_eq!(r.rate("subnet-botnet", DefenseSetup::GreylistExact), Some(0.0));
        // The stack uses /24 keying, and the bot walks MXs: it wins there
        // too.
        assert_eq!(r.rate("subnet-botnet", DefenseSetup::Stack), Some(1.0));
    }

    #[test]
    fn renders_matrix() {
        let out = result().to_string();
        assert!(out.contains("full-compliance"));
        assert!(out.contains("subnet-botnet"));
        assert!(out.contains("obsolete"));
    }
}
