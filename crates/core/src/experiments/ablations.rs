//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each function isolates one knob:
//!
//! 1. [`threshold_sweep`] — the §VI trade-off: spam blocked vs. benign
//!    delay across greylisting thresholds.
//! 2. [`netmask_ablation`] — /24 vs exact-IP triplet keying against a
//!    multi-address sender.
//! 3. [`second_campaign`] — the "second spam task slips through" effect
//!    the paper's postmaster control had to rule out.
//! 4. [`scan_rounds_ablation`] — nolisting-detector false positives as a
//!    function of how many scans are cross-checked.
//! 5. [`store_cap_ablation`] — bounded triplet stores under spam load
//!    (the §VI "cost for the system" angle).
//! 6. [`pregreet_ablation`] — postscreen-style early-talker rejection as a
//!    zero-delay alternative: which families it stops, and whether it ever
//!    costs benign mail.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::reduce::ordered_sum;
use spamward_analysis::Table;
use spamward_botnet::{BotSample, Campaign, MalwareFamily};
use spamward_greylist::{Greylist, GreylistConfig, TripletStore};
use spamward_mta::{MtaProfile, OutboundStatus, SendingMta};
use spamward_scanner::{
    resolve_missing, BannerGrab, DnsAnyScan, NolistingDetector, Population, PopulationSpec,
    ScanRound,
};
use spamward_sim::{DetRng, SimDuration, SimTime};
use spamward_smtp::{Message, ReversePath};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------
// 1. Threshold sweep
// ---------------------------------------------------------------------

/// One point of the threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The greylisting delay.
    pub threshold: SimDuration,
    /// Fraction of botnet spam blocked (share-weighted, Table I weights).
    pub spam_blocked_pct: f64,
    /// Benign delivery delay through this threshold for a postfix sender.
    pub benign_delay: SimDuration,
}

/// Sweeps the greylisting threshold across the paper's range (plus
/// extremes), measuring both sides of the §VI trade-off.
pub fn threshold_sweep(seed: u64) -> Vec<ThresholdPoint> {
    let thresholds = [
        SimDuration::from_secs(5),
        SimDuration::from_secs(60),
        SimDuration::from_secs(300),
        SimDuration::from_secs(1_800),
        SimDuration::from_hours(6),
        SimDuration::from_hours(30),
    ];
    thresholds
        .iter()
        .map(|&threshold| {
            // Spam side: run each family once.
            let mut blocked_parts = Vec::new();
            for family in MalwareFamily::ALL {
                let mut world = worlds::greylist_world(seed, threshold);
                let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 10));
                let mut rng = DetRng::seed(seed).fork("sweep");
                let campaign = Campaign::synthetic(VICTIM_DOMAIN, 5, &mut rng);
                let report = bot.run_campaign(
                    &mut world,
                    &campaign,
                    SimTime::ZERO,
                    SimTime::from_secs(200_000),
                );
                if !report.any_delivered() {
                    blocked_parts.push(family.botnet_spam_pct());
                }
            }
            let blocked = ordered_sum(blocked_parts);
            // Benign side: a postfix sender's delivery delay.
            let mut world = worlds::greylist_world(seed, threshold);
            let mut sender = SendingMta::new(
                "relay.example",
                vec![Ipv4Addr::new(198, 51, 100, 9)],
                MtaProfile::postfix(),
            );
            sender.submit(
                VICTIM_DOMAIN.parse().expect("valid domain"),
                ReversePath::Address("a@relay.example".parse().expect("valid sender")),
                vec![format!("user@{VICTIM_DOMAIN}").parse().expect("valid rcpt")],
                Message::builder().body("x").build(),
                SimTime::ZERO,
            );
            sender.drain(SimTime::ZERO, &mut world);
            let benign_delay = sender
                .records()
                .iter()
                .find(|r| r.delivered)
                .map(|r| r.since_enqueue)
                .unwrap_or(SimDuration::from_days(5));
            ThresholdPoint { threshold, spam_blocked_pct: blocked, benign_delay }
        })
        .collect()
}

// ---------------------------------------------------------------------
// 2. Netmask keying
// ---------------------------------------------------------------------

/// Result of the netmask ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetmaskAblation {
    /// Attempts a two-address (same /24) sender needed at /24 keying.
    pub attempts_with_net24: u32,
    /// Attempts the same sender needed at exact-IP keying.
    pub attempts_with_exact: u32,
}

/// Compares /24 (Postgrey default) against exact-IP triplet keying for a
/// sender alternating between two addresses in one subnet.
pub fn netmask_ablation(seed: u64) -> NetmaskAblation {
    let run_with = |netmask: u8| -> u32 {
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
        cfg.netmask = netmask;
        let mut world = worlds::custom_greylist_world(seed, Greylist::new(cfg));
        let pool = vec![Ipv4Addr::new(198, 51, 100, 1), Ipv4Addr::new(198, 51, 100, 2)];
        // sendmail's first retry (10 min) is comfortably past the 300 s
        // delay, so the /24-vs-exact difference is not confounded by
        // borderline timing.
        let mut sender = SendingMta::new("relay.example", pool, MtaProfile::sendmail())
            .with_ip_selection(spamward_mta::IpSelection::RoundRobin);
        sender.submit(
            VICTIM_DOMAIN.parse().expect("valid domain"),
            ReversePath::Address("a@relay.example".parse().expect("valid sender")),
            vec![format!("user@{VICTIM_DOMAIN}").parse().expect("valid rcpt")],
            Message::builder().body("x").build(),
            SimTime::ZERO,
        );
        sender.drain(SimTime::ZERO, &mut world);
        sender.records().len() as u32
    };
    NetmaskAblation { attempts_with_net24: run_with(24), attempts_with_exact: run_with(32) }
}

// ---------------------------------------------------------------------
// 3. Second-campaign slip-through
// ---------------------------------------------------------------------

/// Result of the second-campaign experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondCampaign {
    /// Was the first campaign's message delivered? (It must not be.)
    pub first_delivered: bool,
    /// Was the *second* campaign's different message delivered, despite the
    /// sender never retrying anything?
    pub second_delivered: bool,
    /// Gap between the campaigns.
    pub gap: SimDuration,
}

/// Demonstrates the subtlety of §V-A: greylisting keys ignore the message,
/// so a fire-and-forget bot that receives a *new* spam job for the same
/// (sender, recipient) pair after the delay effectively "retries" the old
/// triplet and the new message sails through.
pub fn second_campaign(seed: u64) -> SecondCampaign {
    let gap = SimDuration::from_hours(1);
    let mut world = worlds::greylist_world(seed, SimDuration::from_secs(300));
    let mut bot = BotSample::new(MalwareFamily::Cutwail, 0, Ipv4Addr::new(203, 0, 113, 77));

    let mut rng = DetRng::seed(seed).fork("campaigns");
    let first = Campaign::synthetic(VICTIM_DOMAIN, 3, &mut rng);
    let report1 = bot.run_campaign(&mut world, &first, SimTime::ZERO, SimTime::ZERO + gap);

    // Same botmaster job list, *different* message, one hour later.
    let mut second = Campaign::synthetic(VICTIM_DOMAIN, 3, &mut rng);
    second.sender = first.sender.clone();
    second.recipients = first.recipients.clone();
    assert_ne!(first.message.digest(), second.message.digest());
    let report2 =
        bot.run_campaign(&mut world, &second, SimTime::ZERO + gap, SimTime::ZERO + gap * 2);

    SecondCampaign {
        first_delivered: report1.any_delivered(),
        second_delivered: report2.any_delivered(),
        gap,
    }
}

// ---------------------------------------------------------------------
// 4. Scan rounds
// ---------------------------------------------------------------------

/// One point of the scan-round ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRoundsPoint {
    /// Rounds cross-checked.
    pub rounds: usize,
    /// Detector false positives.
    pub false_positives: usize,
    /// Detector false negatives.
    pub false_negatives: usize,
}

/// Measures nolisting-detection error against the number of cross-checked
/// scan rounds, on a deliberately flaky population.
pub fn scan_rounds_ablation(seed: u64, domains: usize, max_rounds: usize) -> Vec<ScanRoundsPoint> {
    let mut spec = PopulationSpec::fig2(domains);
    spec.flaky_hosts = 0.2;
    let mut pop = Population::generate(&spec, seed);
    let names: Vec<_> = pop.domains.iter().map(|d| d.name.clone()).collect();

    let mut all_rounds = Vec::new();
    for epoch in 0..max_rounds as u64 {
        let mut dns_scan = DnsAnyScan::collect(&mut pop.dns, &names);
        resolve_missing(&mut dns_scan, &pop.dns, 4);
        let banner = BannerGrab::collect(&pop.network, epoch);
        all_rounds.push(ScanRound { dns: dns_scan, banner });
    }

    (1..=max_rounds)
        .map(|n| {
            let (_, verdicts) = NolistingDetector::run(&all_rounds[..n], &names);
            let acc = NolistingDetector::score(&pop, &verdicts);
            ScanRoundsPoint {
                rounds: n,
                false_positives: acc.false_positives,
                false_negatives: acc.false_negatives,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// 5. Triplet-store capacity
// ---------------------------------------------------------------------

/// Result of the store-capacity ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreCapAblation {
    /// Store capacity tested.
    pub capacity: usize,
    /// Evictions under the spam load.
    pub evictions: u64,
    /// Whether the (slow, benign) sender still got its message through.
    pub benign_delivered: bool,
}

/// Floods a capacity-bounded greylist with one-shot spam triplets while a
/// benign postfix sender is waiting out its delay, then checks whether the
/// benign pending entry survived the LRU pressure.
pub fn store_cap_ablation(seed: u64, capacity: usize, spam_triplets: usize) -> StoreCapAblation {
    let cfg = GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
    let greylist = Greylist::new(cfg).with_store(TripletStore::new().with_capacity_bound(capacity));
    let mut world = worlds::custom_greylist_world(seed, greylist);

    // Benign sender's first attempt creates its pending triplet at t=0.
    let mut sender = SendingMta::new(
        "relay.example",
        vec![Ipv4Addr::new(198, 51, 100, 50)],
        MtaProfile::postfix(),
    );
    sender.submit(
        VICTIM_DOMAIN.parse().expect("valid domain"),
        ReversePath::Address("benign@relay.example".parse().expect("valid sender")),
        vec![format!("user@{VICTIM_DOMAIN}").parse().expect("valid rcpt")],
        Message::builder().body("legit").build(),
        SimTime::ZERO,
    );
    sender.run_due(SimTime::ZERO, &mut world);

    // Spam flood between t=0 and the benign retry at t=300 s: one-shot
    // bots, each with a unique triplet.
    let mut bot_ip_pool = spamward_net::IpPool::new(Ipv4Addr::new(203, 0, 0, 1));
    let mut rng = DetRng::seed(seed).fork("flood");
    for i in 0..spam_triplets {
        let mut bot = BotSample::new(MalwareFamily::Cutwail, 0, bot_ip_pool.next_ip());
        let mut campaign = Campaign::synthetic(VICTIM_DOMAIN, 1, &mut rng);
        campaign.recipients =
            vec![format!("victim{}@{VICTIM_DOMAIN}", i % 500).parse().expect("valid rcpt")];
        let at = SimTime::from_secs(1 + (i as u64 * 290 / spam_triplets.max(1) as u64));
        bot.run_campaign(&mut world, &campaign, at, at + SimDuration::from_secs(1));
    }

    // Benign retry at its scheduled 5-minute mark.
    let end = sender.drain(SimTime::ZERO, &mut world);
    let _ = end;
    let benign_delivered = sender.queue()[0].status == OutboundStatus::Delivered;
    let evictions = world
        .server(VICTIM_MX_IP)
        .expect("victim")
        .greylist()
        .expect("greylist")
        .store()
        .evictions();
    StoreCapAblation { capacity, evictions, benign_delivered }
}

// ---------------------------------------------------------------------
// 6. Pregreet (early-talker) filtering
// ---------------------------------------------------------------------

/// Result of the pregreet ablation for one sender.
#[derive(Debug, Clone, PartialEq)]
pub struct PregreetPoint {
    /// Sender label.
    pub sender: String,
    /// Whether it delivered through a pregreet-filtering (but otherwise
    /// open) server.
    pub delivered: bool,
}

/// Runs every malware family and a compliant sender against a server whose
/// *only* defense is early-talker rejection. No delay is inflicted on
/// anyone — the filter acts purely on protocol manners.
pub fn pregreet_ablation(seed: u64) -> Vec<PregreetPoint> {
    let mut out = Vec::new();
    let build_world = || worlds::pregreet_world(seed);
    for family in MalwareFamily::ALL {
        let mut world = build_world();
        let mut bot = BotSample::new(family, 0, Ipv4Addr::new(203, 0, 113, 30));
        let mut rng = DetRng::seed(seed).fork("pregreet");
        let campaign = Campaign::synthetic(VICTIM_DOMAIN, 3, &mut rng);
        let report =
            bot.run_campaign(&mut world, &campaign, SimTime::ZERO, SimTime::from_secs(200_000));
        out.push(PregreetPoint {
            sender: family.name().to_owned(),
            delivered: report.any_delivered(),
        });
    }
    // The compliant control.
    let mut world = build_world();
    let mut sender = SendingMta::new(
        "relay.example",
        vec![Ipv4Addr::new(198, 51, 100, 40)],
        MtaProfile::postfix(),
    );
    sender.submit(
        VICTIM_DOMAIN.parse().expect("valid domain"),
        ReversePath::Address("a@relay.example".parse().expect("valid sender")),
        vec![format!("user@{VICTIM_DOMAIN}").parse().expect("valid rcpt")],
        Message::builder().body("x").build(),
        SimTime::ZERO,
    );
    sender.drain(SimTime::ZERO, &mut world);
    out.push(PregreetPoint {
        sender: "compliant-mta".into(),
        delivered: sender.records().iter().any(|r| r.delivered),
    });
    out
}

// ---------------------------------------------------------------------
// Aggregate run (the registry entry)
// ---------------------------------------------------------------------

/// Configuration of the combined ablation run. One seed drives all six
/// sub-ablations uniformly (the per-function seeds `repro` used to
/// hardcode are gone).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationsConfig {
    /// RNG seed for every sub-ablation.
    pub seed: u64,
    /// Population size of the scan-rounds ablation.
    pub scan_domains: usize,
    /// Scan rounds cross-checked.
    pub scan_rounds: usize,
    /// Spam triplets flooded at the bounded store.
    pub store_flood: usize,
}

impl Default for AblationsConfig {
    fn default() -> Self {
        AblationsConfig { seed: 2015, scan_domains: 4_000, scan_rounds: 3, store_flood: 300 }
    }
}

/// All six ablation outputs together.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationsResult {
    /// Ablation 1: the threshold sweep.
    pub sweep: Vec<ThresholdPoint>,
    /// Ablation 2: /24 vs exact keying.
    pub netmask: NetmaskAblation,
    /// Ablation 3: second-campaign slip-through.
    pub second: SecondCampaign,
    /// Ablation 4: scan rounds vs detector error.
    pub scan_rounds: Vec<ScanRoundsPoint>,
    /// Ablation 5: bounded triplet stores (one entry per tested capacity).
    pub store_caps: Vec<StoreCapAblation>,
    /// Ablation 6: pregreet filtering alone.
    pub pregreet: Vec<PregreetPoint>,
}

/// Runs all six ablations with one seed.
pub fn run(config: &AblationsConfig) -> AblationsResult {
    AblationsResult {
        sweep: threshold_sweep(config.seed),
        netmask: netmask_ablation(config.seed),
        second: second_campaign(config.seed),
        scan_rounds: scan_rounds_ablation(config.seed, config.scan_domains, config.scan_rounds),
        store_caps: [1_000_000, 500, 50]
            .iter()
            .map(|&cap| store_cap_ablation(config.seed, cap, config.store_flood))
            .collect(),
        pregreet: pregreet_ablation(config.seed),
    }
}

impl AblationsResult {
    /// The six ablations as typed [`Table`]s, in order.
    pub fn tables(&self) -> Vec<Table> {
        let mut sweep = Table::new(vec!["Threshold", "Spam blocked", "Benign delay"])
            .with_title("Ablation 1: greylisting threshold sweep");
        for p in &self.sweep {
            sweep.row(vec![
                p.threshold.to_string(),
                format!("{:.2}%", p.spam_blocked_pct),
                p.benign_delay.to_string(),
            ]);
        }

        let mut netmask = Table::new(vec!["Triplet keying", "Attempts to deliver"])
            .with_title("Ablation 2: triplet keying granularity");
        netmask.row(vec!["/24".into(), self.netmask.attempts_with_net24.to_string()]);
        netmask.row(vec!["exact IP".into(), self.netmask.attempts_with_exact.to_string()]);

        let mut second = Table::new(vec!["Campaign", "Delivered"])
            .with_title("Ablation 3: second spam campaign vs the triplet");
        second.row(vec!["first".into(), yes_no(self.second.first_delivered)]);
        second.row(vec![
            format!("second (new message, {} later)", self.second.gap),
            yes_no(self.second.second_delivered),
        ]);

        let mut rounds = Table::new(vec!["Rounds", "False positives", "False negatives"])
            .with_title("Ablation 4: scan rounds vs detector error");
        for p in &self.scan_rounds {
            rounds.row(vec![
                p.rounds.to_string(),
                p.false_positives.to_string(),
                p.false_negatives.to_string(),
            ]);
        }

        let mut caps = Table::new(vec!["Capacity", "Evictions", "Benign delivered"])
            .with_title("Ablation 5: triplet-store capacity under spam load");
        for c in &self.store_caps {
            caps.row(vec![
                c.capacity.to_string(),
                c.evictions.to_string(),
                yes_no(c.benign_delivered),
            ]);
        }

        let mut pregreet = Table::new(vec!["Sender", "Delivered"])
            .with_title("Ablation 6: pregreet (early-talker) filtering alone");
        for p in &self.pregreet {
            pregreet.row(vec![
                p.sender.clone(),
                if p.delivered { "yes".into() } else { "no (caught talking early)".into() },
            ]);
        }

        vec![sweep, netmask, second, rounds, caps, pregreet]
    }
}

fn yes_no(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

/// Registry entry for the combined design-choice ablations.
pub struct AblationsExperiment;

impl Experiment for AblationsExperiment {
    fn id(&self) -> &'static str {
        "ablations"
    }

    fn title(&self) -> &'static str {
        "Design-choice ablations (threshold, keying, store, pregreet)"
    }

    fn paper_artifact(&self) -> &'static str {
        "DESIGN.md sweeps"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = match config.scale {
            Scale::Paper => AblationsConfig {
                seed: config.seed_or(AblationsConfig::default().seed),
                ..Default::default()
            },
            Scale::Quick => AblationsConfig {
                seed: config.seed_or(AblationsConfig::default().seed),
                scan_domains: 2_000,
                store_flood: 200,
                ..Default::default()
            },
        };
        let result = run(&module_config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        crate::metrics::collect_ablations(&result, report.metrics_mut());
        for table in result.tables() {
            report.push_table(table);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_the_tradeoff() {
        let points = threshold_sweep(5);
        assert_eq!(points.len(), 6);
        // Spam blocked is flat at 93.02% until the threshold passes
        // Kelihos' last retry window (~90 ks), where it stays 93.02 only
        // if >25 h... the 30 h point blocks everything.
        let last = points.last().unwrap();
        assert!((last.spam_blocked_pct - 93.02).abs() < 1e-9, "30 h blocks all: {last:?}");
        let at_300 = &points[2];
        assert!((at_300.spam_blocked_pct - 56.69).abs() < 1e-9, "300 s blocks all but Kelihos");
        // Benign delay grows with the threshold.
        for w in points.windows(2) {
            assert!(w[1].benign_delay >= w[0].benign_delay);
        }
        // At 5 s, benign mail arrives on the first (5 min) retry.
        assert_eq!(points[0].benign_delay, SimDuration::from_mins(5));
    }

    #[test]
    fn netmask_24_saves_the_pool_sender() {
        let r = netmask_ablation(7);
        assert_eq!(r.attempts_with_net24, 2, "same-/24 retry passes immediately");
        assert!(r.attempts_with_exact > r.attempts_with_net24);
    }

    #[test]
    fn second_campaign_slips_through() {
        let r = second_campaign(11);
        assert!(!r.first_delivered, "fire-and-forget first campaign dies on the greylist");
        assert!(
            r.second_delivered,
            "the second, different message must pass: greylisting never saw the content"
        );
    }

    #[test]
    fn more_scan_rounds_fewer_false_positives() {
        let points = scan_rounds_ablation(3, 3_000, 3);
        assert_eq!(points.len(), 3);
        assert!(points[0].false_positives > points[1].false_positives);
        assert!(points[1].false_positives >= points[2].false_positives);
    }

    #[test]
    fn pregreet_stops_early_talkers_only() {
        let points = pregreet_ablation(13);
        let get = |name: &str| points.iter().find(|p| p.sender == name).unwrap().delivered;
        // Cutwail and Kelihos blast before the banner: stopped, with zero
        // added delay for anyone.
        assert!(!get("Cutwail"));
        assert!(!get("Kelihos"));
        // The Darkmailers wait politely: pregreet filtering alone cannot
        // stop them (greylisting can — the defenses are complementary).
        assert!(get("Darkmailer"));
        assert!(get("Darkmailer(v3)"));
        // Benign mail flows instantly.
        assert!(get("compliant-mta"));
    }

    #[test]
    fn aggregate_run_collects_all_six() {
        let r =
            run(&AblationsConfig { scan_domains: 1_500, store_flood: 100, ..Default::default() });
        assert_eq!(r.sweep.len(), 6);
        assert_eq!(r.scan_rounds.len(), 3);
        assert_eq!(r.store_caps.len(), 3);
        assert_eq!(r.pregreet.len(), 5);
        let tables = r.tables();
        assert_eq!(tables.len(), 6);
        assert!(tables[0].title().unwrap_or_default().contains("threshold sweep"));
        assert!(tables[1].cell("/24", "Attempts to deliver").is_some());
    }

    #[test]
    fn tight_store_cap_evicts_and_can_hurt_benign_mail() {
        // Unbounded (huge) cap: no evictions, benign mail fine.
        let roomy = store_cap_ablation(9, 1_000_000, 200);
        assert_eq!(roomy.evictions, 0);
        assert!(roomy.benign_delivered);
        // Tiny cap: heavy eviction; the benign pending triplet is likely
        // evicted by the flood, so the sender needs extra rounds — it may
        // still deliver eventually (postfix retries for days) but the
        // store must show the churn.
        let tight = store_cap_ablation(9, 50, 400);
        assert!(tight.evictions > 100, "evictions {}", tight.evictions);
    }
}
