//! Fig. 5 — greylisting at a real deployment.
//!
//! The paper analyzed four months of anonymized greylist logs from the
//! University of Milan's CS department (threshold 300 s) and found the
//! benign delivery-delay CDF rising far more slowly than the malware
//! curves: only ~half the messages arrive within 10 minutes and a tail
//! stretches past 50. The reproduction replays a realistic *sender mix* —
//! the Table IV MTA fleet, the Table III webmail tiers, and the
//! notification scripts that retry hourly or never — through the same
//! greylist, then analyzes the server's anonymized log exactly as the
//! paper did.
//!
//! The replay runs sharded: every message is a pure function of its index
//! (its own RNG fork, its own source address), messages partition into
//! [`DEPLOYMENT_SHARDS`] fixed shards by stable hash of their relay name,
//! and each shard drains its messages through its own victim world.
//! Senders are triplet-independent, so per-shard worlds see exactly the
//! traffic a single world would have; logs, bounces and metrics merge in
//! shard order, and the partition never depends on the executor width.

use crate::experiments::worlds::{self, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::log::GreylistLogAnalysis;
use spamward_analysis::reduce::ordered_sum;
use spamward_analysis::{plot, Cdf, Series};
use spamward_dns::DomainName;
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::{MailWorld, MtaProfile, RetrySchedule, SendingMta};
use spamward_net::indexed_ip;
use spamward_obs::Registry;
use spamward_sim::shard::run_sharded;
use spamward_sim::{DetRng, ShardPlan, SimDuration, SimTime};
use spamward_smtp::{EmailAddress, Message, ReversePath};
use spamward_webmail::WebmailProvider;
use std::fmt;
use std::net::Ipv4Addr;

/// The deployment's domain.
pub const DEPLOYMENT_DOMAIN: &str = "cs-dept.example";

/// Fixed shard count of the replay's partition. Messages are assigned to
/// shards by stable hash of their relay name, never by worker id, so
/// [`DeploymentConfig::workers`] only picks how many shards run at once.
pub const DEPLOYMENT_SHARDS: u32 = 8;

/// CGNAT-range base the replay's source addresses are indexed from.
const SOURCE_IP_BASE: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 1);

/// Relative weights of the benign sender classes.
#[derive(Debug, Clone, PartialEq)]
pub struct SenderMix {
    /// Table IV MTAs: (profile, weight).
    pub mtas: Vec<(MtaProfile, f64)>,
    /// Webmail tiers: weight of drawing *some* provider (uniform across
    /// the ten).
    pub webmail: f64,
    /// Custom notification scripts retrying hourly.
    pub hourly_script: f64,
    /// Custom scripts that never retry (lost to greylisting).
    pub no_retry_script: f64,
}

impl Default for SenderMix {
    /// A plausible campus inbound mix.
    fn default() -> Self {
        SenderMix {
            mtas: vec![
                (MtaProfile::postfix(), 0.16),
                (MtaProfile::sendmail(), 0.10),
                (MtaProfile::exim(), 0.12),
                (MtaProfile::qmail(), 0.04),
                (MtaProfile::courier(), 0.04),
                (MtaProfile::exchange(), 0.12),
            ],
            webmail: 0.24,
            hourly_script: 0.12,
            no_retry_script: 0.06,
        }
    }
}

/// Configuration of the deployment replay.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentConfig {
    /// RNG seed.
    pub seed: u64,
    /// Messages to replay (the four-month log, compressed).
    pub messages: usize,
    /// Greylisting threshold (the deployment used 300 s).
    pub threshold: SimDuration,
    /// Arrival window over which messages are spread.
    pub window: SimDuration,
    /// The sender mix.
    pub mix: SenderMix,
    /// Engine event budget for each shard's replay world (`None` =
    /// unbounded).
    pub event_budget: Option<u64>,
    /// Shard-executor width: how many of the [`DEPLOYMENT_SHARDS`] run
    /// concurrently. Output bytes are identical for every value.
    pub workers: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            seed: 300,
            messages: 2_000,
            threshold: SimDuration::from_secs(300),
            window: SimDuration::from_days(120),
            mix: SenderMix::default(),
            event_budget: None,
            workers: 4,
        }
    }
}

/// The Fig. 5 output.
#[derive(Debug, Clone)]
pub struct DeploymentResult {
    /// Delivery-delay CDF of greylisted-then-delivered messages.
    pub cdf: Cdf,
    /// Fraction delivered within 10 minutes (paper: ≈ half).
    pub within_10min: f64,
    /// Fraction delivered later than 50 minutes.
    pub beyond_50min: f64,
    /// Fraction of greylisted messages whose sender gave up entirely.
    pub abandonment_rate: f64,
    /// Non-delivery reports the senders generated (mail lost to the
    /// greylist turns into bounce traffic — a §VI cost the paper does not
    /// quantify).
    pub bounces_generated: usize,
    /// Total messages replayed.
    pub messages: usize,
}

fn hourly_script_profile() -> MtaProfile {
    MtaProfile {
        name: "cron-script-hourly".into(),
        schedule: RetrySchedule::Arithmetic {
            first: SimDuration::from_hours(1),
            step: SimDuration::from_hours(1),
        },
        max_queue_time: SimDuration::from_days(2),
    }
}

fn no_retry_profile() -> MtaProfile {
    MtaProfile {
        name: "cron-script-oneshot".into(),
        schedule: RetrySchedule::Explicit { times: vec![], tail_interval: None },
        max_queue_time: SimDuration::from_days(1),
    }
}

fn build_world(config: &DeploymentConfig) -> MailWorld {
    let mut world = worlds::greylist_world_at(
        config.seed,
        DEPLOYMENT_DOMAIN,
        "mail.cs-dept.example",
        Greylist::new(GreylistConfig::with_delay(config.threshold).without_auto_whitelist()),
    );
    world.event_budget = config.event_budget;
    world
}

/// The nominal relay name of message `i` — what the shard partition
/// hashes, whatever sender class the message ends up drawing.
fn relay_name(i: usize) -> String {
    format!("relay{i}.example")
}

/// Builds message `i`'s pre-submitted sender, tagged with its arrival
/// instant. A pure function of (config, i) — each message draws from its
/// own RNG fork and takes its source address by index — so any shard can
/// synthesize exactly the messages it owns without generating the rest.
fn build_message(
    config: &DeploymentConfig,
    providers: &[WebmailProvider],
    domain: &DomainName,
    i: usize,
) -> (SimTime, SendingMta) {
    let mut rng = DetRng::seed(config.seed).fork_idx("deployment.msg", i as u64);
    let arrival =
        SimTime::ZERO + SimDuration::from_micros(rng.below(config.window.as_micros().max(1)));
    let source_ip = indexed_ip(SOURCE_IP_BASE, i as u64);
    let sender_addr: EmailAddress =
        format!("user{i}@{}", relay_name(i)).parse().expect("synthetic sender is valid");
    let rcpt: EmailAddress =
        format!("staff{}@{DEPLOYMENT_DOMAIN}", i % 50).parse().expect("valid recipient");
    let message = Message::builder()
        .header("Subject", &format!("message {i}"))
        .body("benign mail body")
        .build();

    let mta_weight: f64 = ordered_sum(config.mix.mtas.iter().map(|(_, w)| *w));
    let total_weight =
        mta_weight + config.mix.webmail + config.mix.hourly_script + config.mix.no_retry_script;

    // Draw the sender class.
    let mut x = rng.unit_f64() * total_weight;
    let mut sender: SendingMta = 'pick: {
        for (profile, w) in &config.mix.mtas {
            if x < *w {
                break 'pick SendingMta::new(&relay_name(i), vec![source_ip], profile.clone());
            }
            x -= w;
        }
        if x < config.mix.webmail {
            let provider = rng.pick(providers).clone();
            break 'pick provider.build_sender(source_ip, config.seed ^ i as u64);
        }
        x -= config.mix.webmail;
        if x < config.mix.hourly_script {
            break 'pick SendingMta::new(&relay_name(i), vec![source_ip], hourly_script_profile());
        }
        SendingMta::new(&relay_name(i), vec![source_ip], no_retry_profile())
    };

    sender.submit(domain.clone(), ReversePath::Address(sender_addr), vec![rcpt], message, arrival);
    (arrival, sender)
}

/// What one shard's replay leaves behind, as plain data so shards merge
/// in shard order whatever the executor width.
struct ShardRun {
    events: u64,
    bounces: usize,
    log_text: String,
    trace_lines: Vec<String>,
    metrics: Registry,
}

fn summarize(log_text: &str, bounces_generated: usize, messages: usize) -> DeploymentResult {
    // Analyze the *server's* anonymized log, as the paper did. Keys are
    // triplet hashes, so concatenating the shard logs loses nothing.
    let analysis =
        GreylistLogAnalysis::from_lines(log_text.lines()).expect("MTA log lines are well-formed");
    let cdf = analysis.delay_cdf();
    let within_10min = if cdf.is_empty() { 0.0 } else { cdf.fraction_at_or_below(600.0) };
    let beyond_50min = if cdf.is_empty() { 0.0 } else { 1.0 - cdf.fraction_at_or_below(3_000.0) };

    DeploymentResult {
        within_10min,
        beyond_50min,
        abandonment_rate: analysis.abandonment_rate(),
        bounces_generated,
        cdf,
        messages,
    }
}

/// Runs the deployment replay, draining each sender to completion in turn
/// (senders are triplet-independent, so ordering is immaterial).
pub fn run(config: &DeploymentConfig) -> DeploymentResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// The same replay, exporting per-sender, victim-world and per-shard
/// metrics into `reg` and (when `trace` is set) draining delivery traces
/// into `trace_lines`.
pub fn run_with_obs(
    config: &DeploymentConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> DeploymentResult {
    let plan = ShardPlan::new(config.seed, DEPLOYMENT_SHARDS);
    let domain: DomainName = DEPLOYMENT_DOMAIN.parse().expect("valid deployment domain");
    let providers = WebmailProvider::table_iii();
    let shard_runs = run_sharded(&plan, config.workers, |shard| {
        let mut world = build_world(config);
        if trace {
            world = world.with_tracing();
        }
        let mut senders = Vec::new();
        for i in 0..config.messages {
            if !plan.owns(shard, &relay_name(i)) {
                continue;
            }
            let (arrival, mut sender) = build_message(config, &providers, &domain, i);
            sender.drain(arrival, &mut world);
            senders.push(sender);
        }
        let mut metrics = Registry::new();
        for sender in &senders {
            spamward_mta::metrics::collect_sender(sender, &mut metrics);
        }
        spamward_mta::metrics::collect_world(&world, &mut metrics);
        ShardRun {
            events: world.engine_stats.events,
            bounces: senders.iter().map(|s| s.bounces().len()).sum(),
            log_text: world.server(VICTIM_MX_IP).expect("deployment server").log_text(),
            trace_lines: world.trace.events().map(|e| e.to_string()).collect(),
            metrics,
        }
    });

    let mut log_text = String::new();
    let mut bounces = 0;
    for (shard, run) in shard_runs.iter().enumerate() {
        spamward_mta::metrics::collect_shard_events(shard as u32, run.events, reg);
        reg.merge(&run.metrics);
        trace_lines.extend_from_slice(&run.trace_lines);
        log_text.push_str(&run.log_text);
        bounces += run.bounces;
    }
    summarize(&log_text, bounces, config.messages)
}

impl DeploymentResult {
    /// The Fig. 5 curve (x = seconds, y = F(x)).
    pub fn fig5_series(&self) -> Series {
        Series::new("benign-delay-cdf-300s", self.cdf.to_points(120))
    }
}

impl fmt::Display for DeploymentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Figure 5: benign delivery delay under 300 s greylisting ==")?;
        writeln!(f, "messages replayed:        {}", self.messages)?;
        writeln!(f, "greylisted & delivered:   {}", self.cdf.len())?;
        if !self.cdf.is_empty() {
            writeln!(f, "median delay:             {:.0} s", self.cdf.quantile(0.5))?;
            writeln!(f, "delivered within 10 min:  {:.1}%", self.within_10min * 100.0)?;
            writeln!(f, "delivered after 50 min:   {:.1}%", self.beyond_50min * 100.0)?;
        }
        writeln!(f, "sender gave up (lost):    {:.1}%", self.abandonment_rate * 100.0)?;
        writeln!(f, "bounce DSNs generated:    {}", self.bounces_generated)
    }
}

/// Registry entry for the Fig. 5 deployment replay.
pub struct DeploymentExperiment;

impl DeploymentExperiment {
    /// The module config a harness config maps to (shared with
    /// [`variance`](crate::experiments::variance)).
    pub fn config(harness: &HarnessConfig) -> DeploymentConfig {
        DeploymentConfig {
            seed: harness.seed_or(DeploymentConfig::default().seed),
            messages: match harness.scale {
                Scale::Paper => DeploymentConfig::default().messages,
                Scale::Quick => 300,
            },
            event_budget: harness.event_budget,
            workers: if harness.shards > 0 {
                harness.shard_workers()
            } else {
                DeploymentConfig::default().workers
            },
            ..Default::default()
        }
    }
}

impl Experiment for DeploymentExperiment {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "Benign delivery delay at a real greylisting deployment"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig. 5"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report
            .push_text(&format!(
                "benign delivery-delay CDF (x = seconds):\n{}",
                plot::ascii_cdf(&result.cdf, 60, 10)
            ))
            .push_scalar("messages replayed", result.messages as f64)
            .push_scalar("greylisted & delivered", result.cdf.len() as f64)
            .push_scalar("median delay (s)", result.cdf.quantile(0.5))
            .push_scalar("delivered <10 min (%)", result.within_10min * 100.0)
            .push_scalar("delivered >50 min (%)", result.beyond_50min * 100.0)
            .push_scalar("abandonment (%)", result.abandonment_rate * 100.0)
            .push_scalar("bounce DSNs", result.bounces_generated as f64)
            .push_series(result.fig5_series());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DeploymentResult {
        run(&DeploymentConfig { messages: 400, ..Default::default() })
    }

    #[test]
    fn fig5_shape_holds() {
        let r = quick();
        assert!(r.cdf.len() > 200, "most messages should be greylisted+delivered");
        // Paper: "only half of the messages get delivered in less than 10
        // minutes" — allow a generous band around one half.
        assert!(
            (0.35..=0.75).contains(&r.within_10min),
            "within-10min fraction {} out of band",
            r.within_10min
        );
        // Tail past 50 minutes exists.
        assert!(r.beyond_50min > 0.02, "no >50 min tail: {}", r.beyond_50min);
        // Some senders never retried.
        assert!(r.abandonment_rate > 0.01, "abandonment {}", r.abandonment_rate);
    }

    #[test]
    fn benign_cdf_slower_than_kelihos() {
        // The surprising Fig. 5 observation: the *benign* CDF rises more
        // slowly than the malware CDF of Fig. 3.
        let benign = quick();
        let kelihos =
            crate::experiments::kelihos::run(&crate::experiments::kelihos::KelihosConfig {
                recipients: 40,
                ..Default::default()
            });
        let benign_median = benign.cdf.quantile(0.5);
        let kelihos_median = kelihos.default.cdf.quantile(0.5);
        assert!(
            benign_median > kelihos_median,
            "benign median {benign_median} should exceed Kelihos median {kelihos_median}"
        );
    }

    #[test]
    fn no_message_beats_the_threshold() {
        let r = quick();
        assert!(r.cdf.min() >= 300.0, "delivery below the greylist delay: {}", r.cdf.min());
    }

    #[test]
    fn deterministic() {
        let cfg = DeploymentConfig { messages: 150, ..Default::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.cdf, b.cdf);
        assert_eq!(a.abandonment_rate, b.abandonment_rate);
    }

    #[test]
    fn abandoned_mail_turns_into_bounces() {
        let r = quick();
        // Every no-retry/hourly-script give-up owes its sender a DSN.
        assert!(r.bounces_generated > 0);
        let abandoned = (r.abandonment_rate * r.messages as f64).round() as usize;
        // Bounces ≈ abandoned messages (hourly scripts that expire later
        // also bounce, so allow a margin).
        assert!(
            r.bounces_generated >= abandoned / 2,
            "bounces {} vs abandoned {abandoned}",
            r.bounces_generated
        );
    }

    #[test]
    fn tiny_event_budget_is_a_typed_error() {
        // Satellite of the single-scheduler refactor: a run the budget
        // truncates must surface as a typed harness error, never as a
        // report with silently wrong numbers.
        let config =
            HarnessConfig { scale: Scale::Quick, event_budget: Some(10), ..Default::default() };
        match DeploymentExperiment.run(&config) {
            Err(HarnessError::BudgetExhausted { id, episodes_cut, events }) => {
                assert_eq!(id, "fig5");
                assert!(episodes_cut > 0);
                // The budget caps each shard world independently.
                let cap = 10 * u64::from(DEPLOYMENT_SHARDS);
                assert!(events <= cap, "budget must cap executed events, got {events}");
            }
            Ok(_) => panic!("a 10-event budget cannot complete a 300-message replay"),
        }
    }

    #[test]
    fn renders_and_exports() {
        let r = quick();
        let out = r.to_string();
        assert!(out.contains("Figure 5"));
        assert!(out.contains("within 10 min"));
        assert!(!r.fig5_series().is_empty());
    }
}
