//! Extension — key policies × store backends as an experiment axis.
//!
//! The paper's Table III pins the webmail retry cost of exactly one keying
//! choice: Postgrey's full `(client/24, sender, recipient)` triplet against
//! an in-process store. Real deployments vary both halves — qdgrey keys on
//! `(sender, recipient)` so any pool member's retry matches, sites shard or
//! outsource the triplet database — and the choice changes how much pain a
//! multi-IP webmail pool suffers and what a store outage does. This sweep
//! runs every [`KeyPolicy`] against every [`StoreBackend`] flavour under
//! two provider pool layouts (all addresses in one /24 vs one /24 each),
//! with a pure greylist-store outage ([`FaultProfile::store_degraded`])
//! and a periodic store-maintenance actor in every cell.
//!
//! The store contract says decisions are backend-independent, so within a
//! (policy, layout) group the delivery trajectory must be identical across
//! the three backends — the backends differ only in the store-shape and
//! remote-traffic columns. The *policy* axis is where Table III moves:
//! `sender_recipient` collapses the spread-pool retry cost back to the
//! same-/24 number, `full_triplet` pays it in full.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::{fmt_min_sec, Table};
use spamward_greylist::{
    Greylist, GreylistConfig, KeyPolicy, PartitionedStore, RemoteStore, StoreBackend,
};
use spamward_mta::{DegradationMode, OutboundStatus, SendingMta, WorldSim};
use spamward_net::{FaultPlan, FaultProfile};
use spamward_obs::Registry;
use spamward_sim::shard::run_partitioned;
use spamward_sim::{DetRng, SimDuration, SimTime};
use spamward_webmail::WebmailProvider;
use std::fmt;
use std::net::Ipv4Addr;

/// Partition count of the sharded in-process backend cells.
pub const PARTITIONED_SHARDS: usize = 4;

/// Virtual round-trip time to the remote store (qdgrey/redis-style).
pub const REMOTE_RTT: SimDuration = SimDuration::from_millis(2);

/// The key policies swept, label order.
pub const POLICIES: [KeyPolicy; 3] = [
    KeyPolicy::FullTriplet { netmask: 24 },
    KeyPolicy::SenderRecipient,
    KeyPolicy::ClientNet { netmask: 24 },
];

/// The store backend flavours swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Today's in-process [`spamward_greylist::TripletStore`].
    InMemory,
    /// [`PARTITIONED_SHARDS`] hash-routed in-process shards.
    Partitioned,
    /// A request–reply store actor paying [`REMOTE_RTT`] per lookup.
    Remote,
}

impl BackendKind {
    /// All backends, sweep order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::InMemory, BackendKind::Partitioned, BackendKind::Remote];

    /// Stable row label, matching [`StoreBackend`]'s names.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::InMemory => "in_memory",
            BackendKind::Partitioned => "partitioned",
            BackendKind::Remote => "remote",
        }
    }

    /// A fresh store of this flavour.
    pub fn build(&self) -> StoreBackend {
        match self {
            BackendKind::InMemory => StoreBackend::default(),
            BackendKind::Partitioned => {
                StoreBackend::Partitioned(PartitionedStore::new(PARTITIONED_SHARDS))
            }
            BackendKind::Remote => StoreBackend::Remote(RemoteStore::new(REMOTE_RTT)),
        }
    }
}

/// How each provider's outbound pool is laid out (the Table III axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolLayout {
    /// All pool addresses inside one /24 — the paper-consistent layout.
    Pooled,
    /// Every pool address in its own /24 — the layout that restarts the
    /// full-triplet clock on each rotation.
    Spread,
}

impl PoolLayout {
    /// Both layouts, sweep order.
    pub const ALL: [PoolLayout; 2] = [PoolLayout::Pooled, PoolLayout::Spread];

    /// Stable row label.
    pub fn label(&self) -> &'static str {
        match self {
            PoolLayout::Pooled => "one_/24",
            PoolLayout::Spread => "spread_/24s",
        }
    }
}

/// Configuration of the policy × backend sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyBackendConfig {
    /// RNG seed.
    pub seed: u64,
    /// The greylisting threshold (paper scale: Table III's 6 h).
    pub delay: SimDuration,
    /// Virtual horizon each cell runs to (bounds the maintenance clock).
    pub horizon: SimTime,
    /// Store-maintenance sweep interval.
    pub maintenance_interval: SimDuration,
    /// Shard-executor width for the cell grid (`repro --shards`). Cells
    /// are independent worlds merged in grid order, so output bytes are
    /// identical for every value.
    pub workers: usize,
    /// Engine event budget shared by every cell world (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for PolicyBackendConfig {
    fn default() -> Self {
        PolicyBackendConfig {
            seed: 1604,
            delay: SimDuration::from_hours(6),
            horizon: SimTime::ZERO + SimDuration::from_hours(24),
            maintenance_interval: SimDuration::from_mins(30),
            workers: 1,
            event_budget: None,
        }
    }
}

/// One (policy, backend, pool layout) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyBackendCell {
    /// Key-policy slug.
    pub policy: &'static str,
    /// Backend label.
    pub backend: &'static str,
    /// Pool-layout label.
    pub pool: &'static str,
    /// Delivery attempts across both providers.
    pub attempts: u64,
    /// RCPTs deferred by a greylist decision.
    pub deferred: u64,
    /// RCPTs tempfailed by fail-closed degradation during the outage.
    pub degraded: u64,
    /// Messages delivered (of [`providers`]`().len()`).
    pub delivered: u64,
    /// Worst delivery delay since enqueue among delivered messages.
    pub worst_delay: SimDuration,
    /// Live triplet-store entries at the end of the run.
    pub store_keys: u64,
    /// Approximate resident store bytes at the end of the run.
    pub store_bytes: u64,
    /// Requests the remote store answered (0 for in-process backends).
    pub remote_ops: u64,
    /// Requests the remote store refused inside the outage window.
    pub remote_unavailable: u64,
}

/// The full policy × backend × layout grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyBackendResult {
    /// One cell per grid point, policy-major then backend then layout.
    pub cells: Vec<PolicyBackendCell>,
}

impl PolicyBackendResult {
    /// Looks up one cell.
    pub fn cell(&self, policy: &str, backend: &str, pool: &str) -> Option<&PolicyBackendCell> {
        self.cells.iter().find(|c| c.policy == policy && c.backend == backend && c.pool == pool)
    }

    /// Total attempts in the spread-pool cells of one policy (summed over
    /// backends — identical per backend by the store contract).
    pub fn spread_attempts(&self, policy: &str) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.policy == policy && c.pool == PoolLayout::Spread.label())
            .map(|c| c.attempts)
            .sum()
    }

    /// The grid as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Policy",
            "Backend",
            "Pool",
            "Attempts",
            "Deferred",
            "Degraded",
            "Delivered",
            "WorstDelay",
            "Keys",
            "Bytes",
            "RemoteOps",
            "Refused",
        ])
        .with_title("Key policy x store backend x webmail pool layout");
        for c in &self.cells {
            t.row(vec![
                c.policy.to_owned(),
                c.backend.to_owned(),
                c.pool.to_owned(),
                c.attempts.to_string(),
                c.deferred.to_string(),
                c.degraded.to_string(),
                c.delivered.to_string(),
                if c.delivered > 0 { fmt_min_sec(c.worst_delay) } else { "-".to_owned() },
                c.store_keys.to_string(),
                c.store_bytes.to_string(),
                c.remote_ops.to_string(),
                c.remote_unavailable.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for PolicyBackendResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// The provider models each cell drives: qq.com's dense early ladder lands
/// retries inside the store-outage window, mail.ru's 7-address pool is the
/// rotation that makes the key policy matter.
pub fn providers() -> Vec<WebmailProvider> {
    vec![WebmailProvider::qq(), WebmailProvider::mail_ru()]
}

/// Everything one cell run produces; merged into the report in grid order.
struct CellOutput {
    cell: PolicyBackendCell,
    metrics: Registry,
    trace_lines: Vec<String>,
}

fn run_cell(
    config: &PolicyBackendConfig,
    policy: KeyPolicy,
    backend: BackendKind,
    layout: PoolLayout,
    trace: bool,
) -> CellOutput {
    let mut cell_rng = DetRng::seed(config.seed)
        .fork("policy_backend")
        .fork(policy.slug())
        .fork(backend.label())
        .fork(layout.label());
    let world_seed = cell_rng.next_u64();

    let gl_config =
        GreylistConfig::with_delay(config.delay).without_auto_whitelist().with_key_policy(policy);
    let greylist = Greylist::new(gl_config).with_backend(backend.build());
    let mut world =
        worlds::degraded_greylist_world(world_seed, greylist, DegradationMode::FailClosed)
            .with_store_maintenance(config.maintenance_interval);
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    let plan = FaultPlan::compile(&FaultProfile::store_degraded(), world_seed);
    world.install_faults(&plan);

    let mut metrics = Registry::new();
    let mut attempts = 0u64;
    let mut delivered = 0u64;
    let mut worst_delay = SimDuration::ZERO;
    for (idx, provider) in providers().into_iter().enumerate() {
        // Well-separated bases: under the spread layout each provider
        // claims `distinct_ips` *consecutive* /24s, so adjacent bases
        // would overlap and let `client_net` cross-mature providers.
        let pool_base = Ipv4Addr::new(198, 18 + 10 * idx as u8, 0, 1);
        let sender_seed = cell_rng.next_u64();
        let mut sender: SendingMta = match layout {
            PoolLayout::Pooled => provider.build_sender(pool_base, sender_seed),
            PoolLayout::Spread => provider.build_sender_spread(pool_base, sender_seed),
        };
        sender.submit(
            VICTIM_DOMAIN.parse().expect("valid victim domain"),
            spamward_smtp::ReversePath::Address(
                format!("tester@{}", provider.name).parse().expect("valid provider sender"),
            ),
            vec![format!("testaccount@{VICTIM_DOMAIN}").parse().expect("valid recipient")],
            spamward_smtp::Message::builder()
                .header("Subject", "policy x backend probe")
                .body("webmail retry under a pluggable greylist store")
                .build(),
            SimTime::ZERO,
        );
        let (sender, _outcome, _end) = WorldSim::drain_with_faults(
            &mut world,
            sender,
            &plan,
            SimTime::ZERO,
            Some(config.horizon),
        );
        spamward_mta::metrics::collect_sender(&sender, &mut metrics);
        let records = sender.records();
        attempts += records.len() as u64;
        if sender.queue()[0].status == OutboundStatus::Delivered {
            delivered += 1;
            if let Some(last) = records.last() {
                worst_delay = worst_delay.max(last.since_enqueue);
            }
        }
    }
    spamward_mta::metrics::collect_world(&world, &mut metrics);
    let server = world.server(VICTIM_MX_IP).expect("victim server");
    let stats = server.stats();
    let gl = server.greylist().expect("greylisted victim");
    spamward_greylist::metrics::collect_backend(gl, &mut metrics);
    let (remote_ops, remote_unavailable) = match gl.store().as_remote() {
        Some(r) => (r.ops(), r.unavailable()),
        None => (0, 0),
    };

    CellOutput {
        cell: PolicyBackendCell {
            policy: policy.slug(),
            backend: backend.label(),
            pool: layout.label(),
            attempts,
            deferred: stats.rcpt_greylisted,
            degraded: stats.greylist_failed_closed,
            delivered,
            worst_delay,
            store_keys: gl.store().len() as u64,
            store_bytes: gl.store().approx_bytes() as u64,
            remote_ops,
            remote_unavailable,
        },
        trace_lines: world.trace.events().map(|e| e.to_string()).collect(),
        metrics,
    }
}

/// Runs the sweep without observability.
pub fn run(config: &PolicyBackendConfig) -> PolicyBackendResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the sweep, folding every cell's metrics into `reg` (grid order,
/// independent of [`PolicyBackendConfig::workers`]) and (when `trace` is
/// set) draining delivery traces into `trace_lines`.
pub fn run_with_obs(
    config: &PolicyBackendConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> PolicyBackendResult {
    let mut grid = Vec::new();
    for policy in POLICIES {
        for backend in BackendKind::ALL {
            for layout in PoolLayout::ALL {
                grid.push((policy, backend, layout));
            }
        }
    }
    // Each cell is an independent world; the executor width only picks how
    // many run at once, and outputs merge in grid order either way.
    let outputs = run_partitioned(grid, config.workers.max(1), |(policy, backend, layout)| {
        run_cell(config, policy, backend, layout, trace)
    });
    let mut cells = Vec::new();
    for out in outputs {
        reg.merge(&out.metrics);
        trace_lines.extend(out.trace_lines);
        cells.push(out.cell);
    }
    PolicyBackendResult { cells }
}

/// Registry entry for the policy × backend sweep.
pub struct PolicyBackendExperiment;

impl PolicyBackendExperiment {
    /// The module config a harness config maps to.
    pub fn config(harness: &HarnessConfig) -> PolicyBackendConfig {
        let defaults = PolicyBackendConfig::default();
        let (delay, horizon) = match harness.scale {
            Scale::Paper => (defaults.delay, defaults.horizon),
            // Same code path at a 300 s threshold: the spread-pool ladder
            // still needs an address to repeat, so differences survive.
            Scale::Quick => {
                (SimDuration::from_secs(300), SimTime::ZERO + SimDuration::from_hours(8))
            }
        };
        PolicyBackendConfig {
            seed: harness.seed_or(defaults.seed),
            delay,
            horizon,
            workers: harness.shard_workers(),
            event_budget: harness.event_budget,
            ..defaults
        }
    }
}

impl Experiment for PolicyBackendExperiment {
    fn id(&self) -> &'static str {
        "policy_backend"
    }

    fn title(&self) -> &'static str {
        "Greylist key policies across store backends"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table III extension"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report
            .push_table(result.table())
            .push_scalar("cells", result.cells.len() as f64)
            .push_scalar(
                "messages delivered (all cells)",
                result.cells.iter().map(|c| c.delivered).sum::<u64>() as f64,
            )
            .push_scalar(
                "delivery attempts (all cells)",
                result.cells.iter().map(|c| c.attempts).sum::<u64>() as f64,
            )
            .push_scalar(
                "store-outage refusals (remote cells)",
                result.cells.iter().map(|c| c.remote_unavailable).sum::<u64>() as f64,
            );
        for policy in POLICIES {
            report.push_scalar(
                &format!("spread-pool attempts ({})", policy.slug()),
                result.spread_attempts(policy.slug()) as f64,
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PolicyBackendConfig {
        PolicyBackendConfig {
            delay: SimDuration::from_secs(300),
            horizon: SimTime::ZERO + SimDuration::from_hours(8),
            ..Default::default()
        }
    }

    #[test]
    fn grid_covers_every_policy_backend_and_layout() {
        let r = run(&quick());
        assert_eq!(r.cells.len(), POLICIES.len() * BackendKind::ALL.len() * PoolLayout::ALL.len());
        for policy in POLICIES {
            for backend in BackendKind::ALL {
                for layout in PoolLayout::ALL {
                    assert!(
                        r.cell(policy.slug(), backend.label(), layout.label()).is_some(),
                        "{} x {} x {} missing",
                        policy.slug(),
                        backend.label(),
                        layout.label()
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_are_backend_independent_within_each_policy_and_layout() {
        // The store contract, observed at experiment level: backends may
        // differ in store shape and remote traffic, never in decisions.
        let r = run(&quick());
        for policy in POLICIES {
            for layout in PoolLayout::ALL {
                let probe = |b: BackendKind| {
                    let c = r.cell(policy.slug(), b.label(), layout.label()).unwrap();
                    (c.attempts, c.deferred, c.degraded, c.delivered, c.worst_delay, c.store_keys)
                };
                let reference = probe(BackendKind::InMemory);
                for backend in [BackendKind::Partitioned, BackendKind::Remote] {
                    assert_eq!(
                        probe(backend),
                        reference,
                        "{} x {} diverges on {}",
                        policy.slug(),
                        layout.label(),
                        backend.label()
                    );
                }
            }
        }
    }

    #[test]
    fn sender_recipient_collapses_the_spread_pool_penalty() {
        // Table III's lesson, quantified per policy: keying without the
        // client makes the spread pool behave like the same-/24 pool,
        // while the full triplet pays extra attempts for every rotation.
        let r = run(&quick());
        let attempts =
            |policy: &str, pool: &str| r.cell(policy, "in_memory", pool).unwrap().attempts;
        assert_eq!(
            attempts("sender_recipient", PoolLayout::Pooled.label()),
            attempts("sender_recipient", PoolLayout::Spread.label()),
            "sender_recipient must not see the pool layout"
        );
        assert!(
            attempts("full_triplet", PoolLayout::Spread.label())
                > attempts("full_triplet", PoolLayout::Pooled.label()),
            "full_triplet must pay for the rotation"
        );
    }

    #[test]
    fn store_outage_degrades_and_remote_cells_account_refusals() {
        let r = run(&quick());
        for c in &r.cells {
            assert!(
                c.degraded > 0,
                "{} x {} x {}: qq's early ladder must hit the outage",
                c.policy,
                c.backend,
                c.pool
            );
            if c.backend == "remote" {
                assert!(c.remote_ops > 0, "remote cells must pay protocol traffic");
                assert_eq!(
                    c.remote_unavailable, c.degraded,
                    "every refusal routes through degradation"
                );
            } else {
                assert_eq!(c.remote_ops, 0);
                assert_eq!(c.remote_unavailable, 0);
            }
        }
    }

    #[test]
    fn client_net_tracks_networks_not_envelopes() {
        let r = run(&quick());
        // Pooled: one /24 per provider → two keys; spread: one per address.
        let pooled = r.cell("client_net", "in_memory", PoolLayout::Pooled.label()).unwrap();
        assert_eq!(pooled.store_keys, 2);
        let spread = r.cell("client_net", "in_memory", PoolLayout::Spread.label()).unwrap();
        assert!(spread.store_keys > pooled.store_keys);
        // And the full triplet tracks at least as many keys as client_net.
        let full = r.cell("full_triplet", "in_memory", PoolLayout::Pooled.label()).unwrap();
        assert!(full.store_keys >= pooled.store_keys);
    }

    #[test]
    fn sweep_is_deterministic_and_worker_invariant() {
        let serial = run(&quick());
        let wide = run(&PolicyBackendConfig { workers: 4, ..quick() });
        assert_eq!(serial, wide, "executor width must not change results");
        let again = run(&quick());
        assert_eq!(serial, again);
    }

    #[test]
    fn registry_run_exports_backend_metrics_and_scalars() {
        use spamward_greylist::metrics as gl_metrics;
        let config = HarnessConfig { scale: Scale::Quick, ..Default::default() };
        let report = PolicyBackendExperiment.run(&config).unwrap();
        let reg = report.metrics();
        assert!(reg.counter(gl_metrics::BACKEND_OPS).unwrap_or(0) > 0);
        assert!(reg.counter(gl_metrics::BACKEND_UNAVAILABLE).unwrap_or(0) > 0);
        assert!(reg.counter(gl_metrics::BACKEND_LATENCY_US).unwrap_or(0) > 0);
        assert!(reg.gauge(gl_metrics::STORE_BYTES).unwrap_or(0) > 0);
        assert!(reg.gauge(gl_metrics::POLICY_CLIENT_NETS).unwrap_or(0) > 0);
        assert!(report.scalar("cells").is_some());
        assert!(
            report.scalar("spread-pool attempts (full_triplet)").unwrap()
                > report.scalar("spread-pool attempts (sender_recipient)").unwrap()
        );
    }
}
