//! Seed-variance analysis: every headline number as mean ± 95% CI.
//!
//! The paper's numbers are single measurements of a live system; ours are
//! draws from a seeded simulator, so we can quantify how much each
//! reported quantity moves across worlds. Tight intervals mean the
//! reproduction's conclusions don't hinge on a lucky seed.

use crate::experiments::{deployment, nolisting_adoption};
use crate::runner::run_seeds;
use spamward_analysis::ci::ConfidenceInterval;
use spamward_analysis::AsciiTable;
use spamward_scanner::DomainClass;
use std::fmt;

/// Configuration of the variance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceConfig {
    /// Seeds to run (default: 12 consecutive seeds).
    pub seeds: Vec<u64>,
    /// Worker threads.
    pub workers: usize,
    /// Fig. 2 population size per run.
    pub fig2_domains: usize,
    /// Fig. 5 messages per run.
    pub fig5_messages: usize,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            seeds: (100..112).collect(),
            workers: 4,
            fig2_domains: 4_000,
            fig5_messages: 400,
        }
    }
}

/// One tracked quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceRow {
    /// Quantity name.
    pub quantity: String,
    /// The paper's published value.
    pub paper_value: f64,
    /// Mean ± CI across seeds.
    pub ci: ConfidenceInterval,
}

/// The variance report.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceResult {
    /// One row per tracked quantity.
    pub rows: Vec<VarianceRow>,
}

impl VarianceResult {
    /// Looks a row up by name.
    pub fn row(&self, quantity: &str) -> Option<&VarianceRow> {
        self.rows.iter().find(|r| r.quantity == quantity)
    }
}

/// Runs the Fig. 2 and Fig. 5 headline quantities across seeds.
pub fn run(config: &VarianceConfig) -> VarianceResult {
    // Fig. 2 quantities per seed.
    let fig2_domains = config.fig2_domains;
    let fig2_runs = run_seeds(&config.seeds, config.workers, move |seed| {
        let cfg = nolisting_adoption::AdoptionConfig {
            domains: fig2_domains,
            seed,
            ..Default::default()
        };
        let r = nolisting_adoption::run(&cfg);
        (
            r.stats.pct(DomainClass::Nolisting),
            r.stats.pct(DomainClass::OneMx),
            r.accuracy.precision(),
        )
    });
    // Fig. 5 quantities per seed.
    let fig5_messages = config.fig5_messages;
    let fig5_runs = run_seeds(&config.seeds, config.workers, move |seed| {
        let cfg =
            deployment::DeploymentConfig { messages: fig5_messages, seed, ..Default::default() };
        let r = deployment::run(&cfg);
        (r.within_10min * 100.0, r.abandonment_rate * 100.0)
    });

    let collect = |f: &dyn Fn(usize) -> f64, n: usize| -> Vec<f64> { (0..n).map(f).collect() };
    let n2 = fig2_runs.len();
    let n5 = fig5_runs.len();
    let rows = vec![
        VarianceRow {
            quantity: "fig2 nolisting share (%)".into(),
            paper_value: 0.52,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.0, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig2 one-MX share (%)".into(),
            paper_value: 47.73,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.1, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig2 detector precision".into(),
            paper_value: f64::NAN, // the paper could not measure this
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.2, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig5 delivered <10min (%)".into(),
            paper_value: 50.0,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig5_runs[i].output.0, n5))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig5 abandonment (%)".into(),
            paper_value: f64::NAN,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig5_runs[i].output.1, n5))
                .expect("enough seeds"),
        },
    ];
    VarianceResult { rows }
}

impl fmt::Display for VarianceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = AsciiTable::new(vec!["Quantity", "Paper", "Measured (mean ± 95% CI)"])
            .with_title("Seed variance of the headline quantities");
        for r in &self.rows {
            let paper = if r.paper_value.is_nan() {
                "n/a".to_owned()
            } else {
                format!("{:.2}", r.paper_value)
            };
            t.row(vec![r.quantity.clone(), paper, r.ci.to_string()]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> VarianceResult {
        run(&VarianceConfig {
            seeds: (100..106).collect(),
            fig2_domains: 2_000,
            fig5_messages: 150,
            ..Default::default()
        })
    }

    #[test]
    fn paper_values_inside_or_near_intervals() {
        let r = quick();
        // The one-MX share is set by construction; its CI must cover the
        // paper's value.
        let one_mx = r.row("fig2 one-MX share (%)").unwrap();
        assert!(
            (one_mx.ci.mean - 47.73).abs() < 3.0,
            "one-MX mean {} drifted from the generator mix",
            one_mx.ci.mean
        );
        // Fig. 5's "about half in 10 minutes" lands in a sane band.
        let ten = r.row("fig5 delivered <10min (%)").unwrap();
        assert!((30.0..=80.0).contains(&ten.ci.mean), "{}", ten.ci.mean);
    }

    #[test]
    fn intervals_are_tight_enough_to_be_meaningful() {
        let r = quick();
        for row in &r.rows {
            assert!(row.ci.n >= 6);
            assert!(
                row.ci.half_width <= row.ci.mean.abs().max(1.0),
                "{}: CI wider than the mean ({})",
                row.quantity,
                row.ci
            );
        }
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("Seed variance"));
        assert!(out.contains("±"));
        assert!(out.contains("n/a"));
    }
}
