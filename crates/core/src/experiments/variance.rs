//! Seed-variance analysis: every headline number as mean ± 95% CI.
//!
//! The paper's numbers are single measurements of a live system; ours are
//! draws from a seeded simulator, so we can quantify how much each
//! reported quantity moves across worlds. Tight intervals mean the
//! reproduction's conclusions don't hinge on a lucky seed.
//!
//! The sweep consumes the Fig. 2 and Fig. 5 experiments through the
//! harness registry: each seed becomes a [`HarnessConfig`] and the tracked
//! quantities are read back from the sibling reports' scalars.

use crate::harness::{self, Experiment, HarnessConfig, HarnessError, Report, Scale};
use crate::runner::run_seeds;
use spamward_analysis::ci::ConfidenceInterval;
use spamward_analysis::Table;
use std::fmt;

/// Configuration of the variance sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceConfig {
    /// Seeds to run (default: 12 consecutive seeds).
    pub seeds: Vec<u64>,
    /// Worker threads.
    pub workers: usize,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig { seeds: (100..112).collect(), workers: 4 }
    }
}

/// One tracked quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceRow {
    /// Quantity name.
    pub quantity: String,
    /// The paper's published value.
    pub paper_value: f64,
    /// Mean ± CI across seeds.
    pub ci: ConfidenceInterval,
}

/// The variance report.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceResult {
    /// One row per tracked quantity.
    pub rows: Vec<VarianceRow>,
}

impl VarianceResult {
    /// Looks a row up by name.
    pub fn row(&self, quantity: &str) -> Option<&VarianceRow> {
        self.rows.iter().find(|r| r.quantity == quantity)
    }
}

/// Runs the Fig. 2 and Fig. 5 headline quantities across seeds. Each
/// per-seed run uses [`Scale::Quick`] — the sweep trades per-run size for
/// seed count, exactly as the old hand-tuned population knobs did.
pub fn run(config: &VarianceConfig) -> VarianceResult {
    // Per-seed runs never set an event budget, so an Err here is a bug.
    let per_seed =
        |seed: u64| HarnessConfig { seed: Some(seed), scale: Scale::Quick, ..Default::default() };

    let fig2 = harness::find("fig2").expect("fig2 is registered");
    let fig2_runs = run_seeds(&config.seeds, config.workers, move |seed| {
        let r = fig2.run(&per_seed(seed)).expect("unbudgeted fig2 run completes");
        (
            r.scalar("nolisting share (%)").expect("fig2 reports the nolisting share"),
            r.scalar("one-MX share (%)").expect("fig2 reports the one-MX share"),
            r.scalar("detector precision").expect("fig2 reports the detector precision"),
        )
    });
    let fig5 = harness::find("fig5").expect("fig5 is registered");
    let fig5_runs = run_seeds(&config.seeds, config.workers, move |seed| {
        let r = fig5.run(&per_seed(seed)).expect("unbudgeted fig5 run completes");
        (
            r.scalar("delivered <10 min (%)").expect("fig5 reports the <10 min share"),
            r.scalar("abandonment (%)").expect("fig5 reports the abandonment rate"),
        )
    });

    let collect = |f: &dyn Fn(usize) -> f64, n: usize| -> Vec<f64> { (0..n).map(f).collect() };
    let n2 = fig2_runs.len();
    let n5 = fig5_runs.len();
    let rows = vec![
        VarianceRow {
            quantity: "fig2 nolisting share (%)".into(),
            paper_value: 0.52,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.0, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig2 one-MX share (%)".into(),
            paper_value: 47.73,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.1, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig2 detector precision".into(),
            paper_value: f64::NAN, // the paper could not measure this
            ci: ConfidenceInterval::ci95(&collect(&|i| fig2_runs[i].output.2, n2))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig5 delivered <10min (%)".into(),
            paper_value: 50.0,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig5_runs[i].output.0, n5))
                .expect("enough seeds"),
        },
        VarianceRow {
            quantity: "fig5 abandonment (%)".into(),
            paper_value: f64::NAN,
            ci: ConfidenceInterval::ci95(&collect(&|i| fig5_runs[i].output.1, n5))
                .expect("enough seeds"),
        },
    ];
    VarianceResult { rows }
}

impl VarianceResult {
    /// The per-quantity intervals as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Quantity", "Paper", "Measured (mean ± 95% CI)"])
            .with_title("Seed variance of the headline quantities");
        for r in &self.rows {
            let paper = if r.paper_value.is_nan() {
                "n/a".to_owned()
            } else {
                format!("{:.2}", r.paper_value)
            };
            t.row(vec![r.quantity.clone(), paper, r.ci.to_string()]);
        }
        t
    }
}

impl fmt::Display for VarianceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// Registry entry for the seed-variance sweep. The harness seed shifts the
/// base of the seed window; the scale knob sets how many seeds it spans.
pub struct VarianceExperiment;

impl VarianceExperiment {
    /// The module config a harness config maps to.
    pub fn config(harness: &HarnessConfig) -> VarianceConfig {
        let base = harness.seed_or(100);
        let span = match harness.scale {
            Scale::Paper => 12,
            Scale::Quick => 6,
        };
        VarianceConfig { seeds: (base..base + span).collect(), workers: 4 }
    }
}

impl Experiment for VarianceExperiment {
    fn id(&self) -> &'static str {
        "variance"
    }

    fn title(&self) -> &'static str {
        "Seed variance of the headline quantities"
    }

    fn paper_artifact(&self) -> &'static str {
        "DESIGN.md variance"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let result = run(&module_config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(config.seed_or(100));
        crate::metrics::collect_variance(&result, report.metrics_mut());
        report.push_table(result.table());
        for row in &result.rows {
            report.push_scalar(&format!("mean: {}", row.quantity), row.ci.mean);
            report.push_scalar(&format!("ci95 half-width: {}", row.quantity), row.ci.half_width);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> VarianceResult {
        run(&VarianceConfig { seeds: (100..106).collect(), ..Default::default() })
    }

    #[test]
    fn paper_values_inside_or_near_intervals() {
        let r = quick();
        // The one-MX share is set by construction; its CI must cover the
        // paper's value.
        let one_mx = r.row("fig2 one-MX share (%)").unwrap();
        assert!(
            (one_mx.ci.mean - 47.73).abs() < 3.0,
            "one-MX mean {} drifted from the generator mix",
            one_mx.ci.mean
        );
        // Fig. 5's "about half in 10 minutes" lands in a sane band.
        let ten = r.row("fig5 delivered <10min (%)").unwrap();
        assert!((30.0..=80.0).contains(&ten.ci.mean), "{}", ten.ci.mean);
    }

    #[test]
    fn intervals_are_tight_enough_to_be_meaningful() {
        let r = quick();
        for row in &r.rows {
            assert!(row.ci.n >= 6);
            assert!(
                row.ci.half_width <= row.ci.mean.abs().max(1.0),
                "{}: CI wider than the mean ({})",
                row.quantity,
                row.ci
            );
        }
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("Seed variance"));
        assert!(out.contains("±"));
        assert!(out.contains("n/a"));
    }
}
