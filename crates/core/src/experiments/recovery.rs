//! Recovery extension — crash–restart faults × greylist durability.
//!
//! The paper assumes the greylisting MTA never loses its triplet store.
//! This experiment crashes the victim MTA mid-day
//! ([`spamward_net::FaultSpec::MtaCrashRestart`]) and sweeps what the
//! server remembered when it came back: nothing
//! ([`DurabilityMode::Volatile`]), the last periodic checkpoint
//! ([`DurabilityMode::Snapshot`]), or checkpoint plus write-ahead log
//! ([`DurabilityMode::SnapshotPlusWal`]) — across two checkpoint
//! cadences and two crash timings, against a no-crash baseline per
//! timing.
//!
//! The traffic is shaped so each durability tier has something distinct
//! to lose:
//!
//! * **regulars** mature their triplets (and the client-net
//!   auto-whitelist) early, then send again after the restart — only a
//!   volatile store re-defers them;
//! * a **drifter** matures between the 10-minute and 30-minute
//!   checkpoint ticks and sends again after the restart — the checkpoint
//!   *cadence* decides whether a snapshot saves it;
//! * **late joiners** first appear after the last checkpoint, so their
//!   pending triplets live only in the WAL;
//! * a **retrying spam bot** shows the flip side: a crash re-pends its
//!   matured triplet, but the bot retries straight through the fresh
//!   delay window and is re-admitted anyway.

use crate::experiments::worlds::{VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_dns::{DomainName, Zone};
use spamward_greylist::{DurabilityMode, Greylist, GreylistConfig};
use spamward_mta::{
    ChaosActor, FaultActor, MailWorld, MtaProfile, OutboundStatus, ReceivingMta, RetryPolicy,
    SenderActor, SendingMta, WorldSim,
};
use spamward_net::{FaultPlan, FaultProfile};
use spamward_obs::Registry;
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// The victim hostname the crash fault targets (must match the installed
/// server for [`spamward_net::FaultPlan::crash_windows_for`] to route).
const VICTIM_HOST: &str = "mail.victim.example";

/// Greylist delay, Postgrey's 300 s default (also postfix's first retry).
const GREYLIST_DELAY: SimDuration = SimDuration::from_secs(300);

/// Client nets auto-whitelist after this many matured triplets.
const AWL_AFTER: u32 = 3;

/// How long the crashed MTA stays down.
const DOWNTIME: SimDuration = SimDuration::from_mins(2);

/// Episode horizon: one working day's worth of simulated mail.
const HORIZON_MINS: u64 = 480;

/// When in the day the crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTiming {
    /// Two hours in — most of the day's triplets form afterwards.
    Early,
    /// Five hours in — the store is at its richest.
    Late,
}

impl CrashTiming {
    /// Both timings, sweep order.
    pub const ALL: [CrashTiming; 2] = [CrashTiming::Early, CrashTiming::Late];

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            CrashTiming::Early => "early",
            CrashTiming::Late => "late",
        }
    }

    /// Minutes into the episode the crash fires. Multiples of both
    /// checkpoint cadences, so the last pre-crash tick is exactly one
    /// interval before the crash for either cadence.
    pub fn crash_min(&self) -> u64 {
        match self {
            CrashTiming::Early => 120,
            CrashTiming::Late => 300,
        }
    }
}

/// The checkpoint cadences swept (minutes).
pub const CHECKPOINT_INTERVALS_MINS: [u64; 2] = [10, 30];

/// Configuration of the recovery sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// RNG seed.
    pub seed: u64,
    /// Ham senders whose triplets mature long before the crash and who
    /// send a second wave after the restart.
    pub regulars: usize,
    /// Ham senders whose first contact lands *after* the last checkpoint
    /// tick, so only a WAL remembers them.
    pub late_joiners: usize,
    /// Engine event budget shared by every cell world (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { seed: 42, regulars: 4, late_joiners: 2, event_budget: None }
    }
}

/// One cell of the durability × cadence × timing sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCell {
    /// Durability label (`"baseline"` for the no-crash reference cells).
    pub mode: &'static str,
    /// Checkpoint cadence in minutes (0 in baseline cells).
    pub interval_mins: u64,
    /// Crash timing label (baseline cells keep the timing label they
    /// share a submission schedule with).
    pub timing: &'static str,
    /// Whether this cell actually crashed.
    pub crashed: bool,
    /// Ham messages that reached the mailbox.
    pub ham_delivered: u64,
    /// Total queue-to-mailbox latency over all delivered ham, seconds.
    pub ham_delay_s: u64,
    /// Ham delivery attempts actually made.
    pub ham_attempts: u64,
    /// Spam messages that reached the mailbox.
    pub spam_delivered: u64,
    /// Spam delivery attempts actually made.
    pub spam_attempts: u64,
    /// Spam delivered post-restart only after paying a *fresh* greylist
    /// window — re-admitted through the re-pending window the crash
    /// opened.
    pub spam_readmitted: u64,
    /// Auto-whitelist passes the server granted over the whole day (the
    /// AWL-survival sub-axis: a lost counter means fewer passes).
    pub awl_passes: u64,
    /// Checkpoints the server took (including the post-restart re-baseline).
    pub checkpoints: u64,
    /// Triplets restored from the checkpoint at restart.
    pub entries_restored: u64,
    /// WAL records replayed on top of the checkpoint at restart.
    pub wal_replayed: u64,
    /// Triplets the restart lost versus the in-memory store at crash.
    pub entries_lost: u64,
}

/// The full sweep: per timing, one baseline cell plus the durability ×
/// cadence matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// Sweep cells, timing-major.
    pub cells: Vec<RecoveryCell>,
}

impl RecoveryResult {
    /// Looks up one crash cell.
    pub fn cell(&self, mode: &str, interval_mins: u64, timing: &str) -> Option<&RecoveryCell> {
        self.cells
            .iter()
            .find(|c| c.mode == mode && c.interval_mins == interval_mins && c.timing == timing)
    }

    /// The no-crash reference cell sharing `timing`'s submission schedule.
    pub fn baseline(&self, timing: &str) -> Option<&RecoveryCell> {
        self.cells.iter().find(|c| c.mode == "baseline" && c.timing == timing)
    }

    /// Ham delay a crash cell paid beyond its timing's baseline, seconds.
    pub fn extra_ham_delay_s(&self, cell: &RecoveryCell) -> u64 {
        let base = self.baseline(cell.timing).map(|b| b.ham_delay_s).unwrap_or(0);
        cell.ham_delay_s.saturating_sub(base)
    }

    /// Ham attempts a crash cell paid beyond its timing's baseline.
    pub fn extra_ham_attempts(&self, cell: &RecoveryCell) -> u64 {
        let base = self.baseline(cell.timing).map(|b| b.ham_attempts).unwrap_or(0);
        cell.ham_attempts.saturating_sub(base)
    }

    /// The sweep as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Mode",
            "Ckpt(min)",
            "Crash",
            "HamDeliv",
            "HamDelay(s)",
            "ExtraDelay(s)",
            "HamAttempts",
            "SpamDeliv",
            "SpamReadmit",
            "AwlPasses",
            "Ckpts",
            "Restored",
            "WalReplay",
            "Lost",
        ])
        .with_title("Recovery: durability x checkpoint cadence x crash timing");
        for c in &self.cells {
            t.row(vec![
                c.mode.to_owned(),
                if c.crashed { c.interval_mins.to_string() } else { "-".to_owned() },
                if c.crashed { c.timing.to_owned() } else { format!("none ({})", c.timing) },
                c.ham_delivered.to_string(),
                c.ham_delay_s.to_string(),
                self.extra_ham_delay_s(c).to_string(),
                c.ham_attempts.to_string(),
                c.spam_delivered.to_string(),
                c.spam_readmitted.to_string(),
                c.awl_passes.to_string(),
                c.checkpoints.to_string(),
                c.entries_restored.to_string(),
                c.wal_replayed.to_string(),
                c.entries_lost.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for RecoveryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        let lost: u64 = self.cells.iter().map(|c| c.entries_lost).sum();
        let readmitted: u64 = self.cells.iter().map(|c| c.spam_readmitted).sum();
        writeln!(
            f,
            "{} cells; {} greylist entries lost, {} spam re-admitted through re-pending windows",
            self.cells.len(),
            lost,
            readmitted
        )
    }
}

fn victim_domain() -> DomainName {
    VICTIM_DOMAIN.parse().expect("victim domain is valid")
}

fn at_min(mins: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(mins)
}

fn at_secs(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// One cell's identity within the sweep.
struct CellSpec {
    /// `None` = no-crash baseline.
    durability: Option<DurabilityMode>,
    /// Checkpoint cadence (`None` = baseline).
    interval: Option<SimDuration>,
    interval_mins: u64,
    timing: CrashTiming,
}

/// Seeds shared by every cell of one crash timing. Keeping the world and
/// sender seeds identical across a timing's cells makes the sweep a
/// *controlled* comparison: latency draws and retry jitter are the same
/// everywhere, so cells differ only through durability and checkpoint
/// cadence — exactly the quantities under test.
struct CellSeeds {
    world: u64,
    regulars: u64,
    edge: u64,
    bot: u64,
}

impl CellSeeds {
    fn for_timing(seed: u64, timing: CrashTiming) -> Self {
        let mut rng = DetRng::seed(seed).fork("recovery").fork(timing.label());
        CellSeeds {
            world: rng.next_u64(),
            regulars: rng.next_u64(),
            edge: rng.next_u64(),
            bot: rng.next_u64(),
        }
    }
}

fn submit_ham(sender: &mut SendingMta, name: &str, index: usize, at: SimTime, subject: &str) {
    sender.submit(
        victim_domain(),
        spamward_smtp::ReversePath::Address(
            format!("{name}{index}@{}", sender.fqdn()).parse().expect("valid sender"),
        ),
        vec![format!("{name}{index}@{VICTIM_DOMAIN}").parse().expect("valid recipient")],
        spamward_smtp::Message::builder()
            .header("Subject", subject)
            .body("legitimate mail across the crash")
            .build(),
        at,
    );
}

/// Delivered-message latency plus attempt count for one sender.
fn ham_tally(sender: &SendingMta) -> (u64, u64, u64) {
    let delivered =
        sender.queue().iter().filter(|m| m.status == OutboundStatus::Delivered).count() as u64;
    let delay_s: u64 =
        sender.records().iter().filter(|r| r.delivered).map(|r| r.since_enqueue.as_secs()).sum();
    (delivered, delay_s, sender.records().len() as u64)
}

/// Spam delivered post-restart only after a fresh deferral post-restart.
fn spam_readmitted(sender: &SendingMta, restart: Option<SimTime>) -> u64 {
    let Some(restart) = restart else { return 0 };
    sender
        .records()
        .iter()
        .filter(|r| r.delivered && r.at >= restart)
        .filter(|done| {
            sender
                .records()
                .iter()
                .any(|r| r.message_id == done.message_id && !r.delivered && r.at >= restart)
        })
        .count() as u64
}

fn run_cell(
    config: &RecoveryConfig,
    spec: &CellSpec,
    seeds: &CellSeeds,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> RecoveryCell {
    let crash_min = spec.timing.crash_min();
    let crash_at = at_min(crash_min);
    let restart_at = crash_at + DOWNTIME;

    let profile = match spec.durability {
        Some(_) => FaultProfile::crash_restart(VICTIM_HOST, crash_at, DOWNTIME),
        None => FaultProfile::none(),
    };
    let plan = FaultPlan::compile(&profile, seeds.world);

    let mut greylist_config = GreylistConfig::with_delay(GREYLIST_DELAY);
    greylist_config.auto_whitelist_after = Some(AWL_AFTER);
    let mut world = MailWorld::new(seeds.world);
    world.install_server(
        ReceivingMta::new(VICTIM_HOST, VICTIM_MX_IP)
            .with_greylist(Greylist::new(greylist_config))
            .with_durability(spec.durability.unwrap_or_default()),
    );
    world.dns.publish(Zone::single_mx(victim_domain(), VICTIM_MX_IP));
    if let Some(interval) = spec.interval {
        world = world.with_checkpointing(interval);
    }
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    world.install_faults(&plan);

    // Regulars: triplets (and the relay's auto-whitelist standing) mature
    // in the first hours; a second wave lands after the restart.
    let mut regulars = SendingMta::new(
        "relay.example",
        vec![Ipv4Addr::new(198, 51, 100, 1)],
        MtaProfile::postfix(),
    )
    .with_seed(seeds.regulars)
    .with_retry_policy(RetryPolicy::resilient());
    for i in 0..config.regulars {
        submit_ham(&mut regulars, "regular", i, at_min(7 * i as u64), "morning wave");
        submit_ham(
            &mut regulars,
            "regular",
            i,
            at_min(crash_min + 12 + 3 * i as u64),
            "after the restart",
        );
    }

    // The edge relay (a different client /24, so the regulars' whitelist
    // standing cannot mask its triplets): one drifter maturing between
    // the two checkpoint cadences' last ticks, then the late joiners
    // whose first contact outruns every checkpoint.
    let mut edge = SendingMta::new(
        "edge-relay.example",
        vec![Ipv4Addr::new(203, 0, 113, 9)],
        MtaProfile::postfix(),
    )
    .with_seed(seeds.edge)
    .with_retry_policy(RetryPolicy::resilient());
    submit_ham(&mut edge, "drifter", 0, at_min(crash_min - 20), "between the ticks");
    submit_ham(&mut edge, "drifter", 0, at_min(crash_min + 22), "did the snapshot see me");
    for j in 0..config.late_joiners {
        submit_ham(
            &mut edge,
            "joiner",
            j,
            at_secs((crash_min - 4) * 60 + 30 * j as u64),
            "after the last checkpoint",
        );
    }

    // A retry-capable spam bot: one message matures its triplet in the
    // morning, a second probes the store right after the restart.
    let mut bot = SendingMta::new(
        "harvester.example",
        vec![Ipv4Addr::new(198, 18, 5, 7)],
        MtaProfile::postfix(),
    )
    .with_seed(seeds.bot)
    .with_retry_policy(RetryPolicy::resilient());
    for s in 0..2u64 {
        let at = if s == 0 {
            at_min(5)
        } else {
            at_min(crash_min) + DOWNTIME + SimDuration::from_mins(2)
        };
        bot.submit(
            victim_domain(),
            spamward_smtp::ReversePath::Address(
                "spam@harvester.example".parse().expect("valid sender"),
            ),
            vec![format!("regular0@{VICTIM_DOMAIN}").parse().expect("valid recipient")],
            spamward_smtp::Message::builder()
                .header("Subject", "cheap watches")
                .body("unsolicited bulk mail")
                .build(),
            at,
        );
    }

    // All three senders and the fault timeline share one event stream, so
    // the crash edges are ordered against the attempts they disturb (and
    // serial vs --jobs runs see the identical sequence).
    let mut cast = Vec::new();
    for mta in [regulars, edge, bot] {
        let first = mta.next_due().unwrap_or(SimTime::ZERO);
        cast.push((ChaosActor::Sender(Box::new(SenderActor::new(mta))), first));
    }
    let fault_actor = FaultActor::new(&plan);
    if let Some(first) = fault_actor.first_wake() {
        cast.push((ChaosActor::Faults(fault_actor), first));
    }
    let (actors, _outcome, _end) =
        WorldSim::episode_with(&mut world, cast, Some(at_min(HORIZON_MINS)));
    let mut senders: Vec<SendingMta> = actors
        .into_iter()
        .filter_map(|a| match a {
            ChaosActor::Sender(s) => Some(s.into_inner()),
            ChaosActor::Faults(_) => None,
        })
        .collect();
    let bot = senders.pop().expect("bot actor survives");
    let edge = senders.pop().expect("edge actor survives");
    let regulars = senders.pop().expect("regulars actor survives");

    spamward_mta::metrics::collect_world(&world, reg);
    spamward_mta::metrics::collect_sender(&regulars, reg);
    spamward_mta::metrics::collect_sender(&edge, reg);
    spamward_mta::metrics::collect_sender(&bot, reg);
    trace_lines.extend(world.trace.events().map(|e| e.to_string()));

    let server = world.server(VICTIM_MX_IP).expect("victim server installed");
    let crash_stats = server.crash_stats();
    let greylist_stats = server.greylist().map(|g| g.stats()).unwrap_or_default();
    let (r_deliv, r_delay, r_attempts) = ham_tally(&regulars);
    let (e_deliv, e_delay, e_attempts) = ham_tally(&edge);
    let (s_deliv, _s_delay, s_attempts) = ham_tally(&bot);
    RecoveryCell {
        mode: spec.durability.map(|d| d.label()).unwrap_or("baseline"),
        interval_mins: spec.interval_mins,
        timing: spec.timing.label(),
        crashed: spec.durability.is_some(),
        ham_delivered: r_deliv + e_deliv,
        ham_delay_s: r_delay + e_delay,
        ham_attempts: r_attempts + e_attempts,
        spam_delivered: s_deliv,
        spam_attempts: s_attempts,
        spam_readmitted: spam_readmitted(&bot, spec.durability.map(|_| restart_at)),
        awl_passes: greylist_stats.passed_auto_whitelist,
        checkpoints: crash_stats.checkpoints,
        entries_restored: crash_stats.entries_restored,
        wal_replayed: crash_stats.wal_records_replayed,
        entries_lost: crash_stats.entries_lost,
    }
}

/// Runs the sweep without observability.
pub fn run(config: &RecoveryConfig) -> RecoveryResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the sweep, folding every cell's world/sender metrics into `reg`
/// and (when `trace` is set) draining delivery traces into `trace_lines`.
pub fn run_with_obs(
    config: &RecoveryConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> RecoveryResult {
    let mut cells = Vec::new();
    for timing in CrashTiming::ALL {
        let seeds = CellSeeds::for_timing(config.seed, timing);
        cells.push(run_cell(
            config,
            &CellSpec { durability: None, interval: None, interval_mins: 0, timing },
            &seeds,
            trace,
            reg,
            trace_lines,
        ));
        for &interval_mins in &CHECKPOINT_INTERVALS_MINS {
            for durability in DurabilityMode::all() {
                cells.push(run_cell(
                    config,
                    &CellSpec {
                        durability: Some(durability),
                        interval: Some(SimDuration::from_mins(interval_mins)),
                        interval_mins,
                        timing,
                    },
                    &seeds,
                    trace,
                    reg,
                    trace_lines,
                ));
            }
        }
    }
    RecoveryResult { cells }
}

/// Registry entry for the recovery sweep.
pub struct RecoveryExperiment;

impl RecoveryExperiment {
    /// The module config a harness config maps to.
    pub fn config(harness: &HarnessConfig) -> RecoveryConfig {
        RecoveryConfig {
            seed: harness.seed_or(RecoveryConfig::default().seed),
            regulars: match harness.scale {
                Scale::Paper => RecoveryConfig::default().regulars,
                Scale::Quick => 2,
            },
            late_joiners: match harness.scale {
                Scale::Paper => RecoveryConfig::default().late_joiners,
                Scale::Quick => 1,
            },
            event_budget: harness.event_budget,
        }
    }
}

impl Experiment for RecoveryExperiment {
    fn id(&self) -> &'static str {
        "recovery"
    }

    fn title(&self) -> &'static str {
        "Crash-restart durability and greylist recovery"
    }

    fn paper_artifact(&self) -> &'static str {
        "DESIGN.md durability model"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = Self::config(config);
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        let extra = |mode: &str| -> f64 {
            result
                .cells
                .iter()
                .filter(|c| c.mode == mode)
                .map(|c| result.extra_ham_delay_s(c))
                .sum::<u64>() as f64
        };
        report
            .push_table(result.table())
            .push_scalar("extra ham delay s (volatile cells)", extra("volatile"))
            .push_scalar("extra ham delay s (snapshot cells)", extra("snapshot"))
            .push_scalar("extra ham delay s (snapshot_wal cells)", extra("snapshot_wal"))
            .push_scalar(
                "spam re-admitted through re-pending windows",
                result.cells.iter().map(|c| c.spam_readmitted).sum::<u64>() as f64,
            )
            .push_scalar(
                "greylist entries lost (all cells)",
                result.cells.iter().map(|c| c.entries_lost).sum::<u64>() as f64,
            )
            .push_scalar(
                "wal records replayed (all cells)",
                result.cells.iter().map(|c| c.wal_replayed).sum::<u64>() as f64,
            );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_mta::metrics as mta_metrics;

    fn full() -> RecoveryResult {
        run(&RecoveryConfig::default())
    }

    #[test]
    fn sweep_covers_baselines_and_the_full_matrix() {
        let r = full();
        assert_eq!(
            r.cells.len(),
            CrashTiming::ALL.len()
                * (1 + CHECKPOINT_INTERVALS_MINS.len() * DurabilityMode::all().len())
        );
        for timing in CrashTiming::ALL {
            assert!(r.baseline(timing.label()).is_some());
            for interval in CHECKPOINT_INTERVALS_MINS {
                for mode in DurabilityMode::all() {
                    assert!(
                        r.cell(mode.label(), interval, timing.label()).is_some(),
                        "{} x {} x {} missing",
                        mode.label(),
                        interval,
                        timing.label()
                    );
                }
            }
        }
    }

    #[test]
    fn no_ham_is_lost_and_no_spam_is_stopped_by_the_crash() {
        // A crash delays mail; the resilient postfix schedule means it
        // never loses any — and the retrying bot gets through every time.
        let r = full();
        let expected_ham = (RecoveryConfig::default().regulars * 2
            + RecoveryConfig::default().late_joiners
            + 2) as u64;
        for c in &r.cells {
            assert_eq!(
                c.ham_delivered, expected_ham,
                "{} x {} x {}",
                c.mode, c.interval_mins, c.timing
            );
            assert_eq!(c.spam_delivered, 2, "{} x {} x {}", c.mode, c.interval_mins, c.timing);
        }
    }

    #[test]
    fn durability_strictly_orders_the_extra_ham_delay() {
        // The acceptance ordering: losing everything costs more than
        // losing the checkpoint tail, which costs more than losing
        // nothing — in every cadence x timing combination.
        let r = full();
        for timing in CrashTiming::ALL {
            for interval in CHECKPOINT_INTERVALS_MINS {
                let volatile =
                    r.extra_ham_delay_s(r.cell("volatile", interval, timing.label()).unwrap());
                let snapshot =
                    r.extra_ham_delay_s(r.cell("snapshot", interval, timing.label()).unwrap());
                let wal =
                    r.extra_ham_delay_s(r.cell("snapshot_wal", interval, timing.label()).unwrap());
                assert!(
                    volatile > snapshot && snapshot > wal,
                    "{}min x {}: volatile {volatile} / snapshot {snapshot} / wal {wal}",
                    interval,
                    timing.label()
                );
                // Snapshot+WAL loses no state, so its residual cost is
                // only the downtime's retry displacement — a fraction of
                // what any state loss costs.
                assert!(
                    wal < volatile / 2,
                    "{}min x {}: wal {wal} not close to baseline (volatile {volatile})",
                    interval,
                    timing.label()
                );
            }
        }
    }

    #[test]
    fn checkpoint_cadence_decides_the_drifters_fate() {
        // The drifter matures between the 30-min cadence's last tick and
        // the 10-min cadence's: a snapshot-only store re-defers it only
        // under the slow cadence.
        let r = full();
        for timing in CrashTiming::ALL {
            let fast = r.extra_ham_delay_s(r.cell("snapshot", 10, timing.label()).unwrap());
            let slow = r.extra_ham_delay_s(r.cell("snapshot", 30, timing.label()).unwrap());
            assert!(slow > fast, "{}: slow cadence {slow} <= fast cadence {fast}", timing.label());
        }
    }

    #[test]
    fn wal_recovers_every_entry_and_volatile_recovers_none() {
        let r = full();
        for c in r.cells.iter().filter(|c| c.crashed) {
            match c.mode {
                "volatile" => {
                    assert_eq!(
                        c.entries_restored + c.wal_replayed,
                        0,
                        "{} x {}",
                        c.interval_mins,
                        c.timing
                    );
                    assert!(c.entries_lost > 0, "{} x {}", c.interval_mins, c.timing);
                    assert_eq!(c.checkpoints, 0);
                }
                "snapshot" => {
                    assert!(c.entries_restored > 0, "{} x {}", c.interval_mins, c.timing);
                    assert_eq!(c.wal_replayed, 0);
                    assert!(c.entries_lost > 0, "snapshot must lose the tail");
                }
                "snapshot_wal" => {
                    assert!(c.entries_restored > 0);
                    assert!(
                        c.wal_replayed > 0,
                        "{} x {}: tail must live in the WAL",
                        c.interval_mins,
                        c.timing
                    );
                    assert_eq!(c.entries_lost, 0, "{} x {}", c.interval_mins, c.timing);
                }
                other => panic!("unexpected crash-cell mode {other}"),
            }
        }
        for timing in CrashTiming::ALL {
            let b = r.baseline(timing.label()).unwrap();
            assert_eq!(b.entries_lost + b.entries_restored + b.checkpoints, 0);
        }
    }

    #[test]
    fn auto_whitelist_standing_survives_only_durable_stores() {
        let r = full();
        for timing in CrashTiming::ALL {
            for interval in CHECKPOINT_INTERVALS_MINS {
                let volatile = r.cell("volatile", interval, timing.label()).unwrap().awl_passes;
                let snapshot = r.cell("snapshot", interval, timing.label()).unwrap().awl_passes;
                let wal = r.cell("snapshot_wal", interval, timing.label()).unwrap().awl_passes;
                assert!(
                    snapshot > volatile && wal > volatile,
                    "{}min x {}: awl volatile {volatile} / snapshot {snapshot} / wal {wal}",
                    interval,
                    timing.label()
                );
            }
        }
    }

    #[test]
    fn retrying_spam_is_readmitted_exactly_where_state_was_lost() {
        // The bot's triplet matured in the morning, so only a store that
        // forgot it re-pends the post-restart probe — and the bot rides
        // out the fresh window and lands anyway.
        let r = full();
        for c in &r.cells {
            if c.crashed && c.mode == "volatile" {
                assert!(c.spam_readmitted > 0, "{} x {}", c.interval_mins, c.timing);
            } else {
                assert_eq!(c.spam_readmitted, 0, "{} x {} x {}", c.mode, c.interval_mins, c.timing);
            }
        }
    }

    #[test]
    fn registry_run_exports_crash_and_recovery_metrics() {
        let config = HarnessConfig { scale: Scale::Quick, ..Default::default() };
        let report = RecoveryExperiment.run(&config).unwrap();
        let reg = report.metrics();
        assert!(reg.counter(mta_metrics::CRASH_EVENTS).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::CRASH_RESTARTS).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::RECOVERY_CHECKPOINTS).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::RECOVERY_ENTRIES_RESTORED).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::RECOVERY_WAL_REPLAYED).unwrap_or(0) > 0);
        assert!(reg.counter(mta_metrics::RECOVERY_ENTRIES_LOST).unwrap_or(0) > 0);
        assert!(report.scalar("extra ham delay s (volatile cells)").is_some());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(&RecoveryConfig { regulars: 2, late_joiners: 1, ..Default::default() });
        let b = run(&RecoveryConfig { regulars: 2, late_joiners: 1, ..Default::default() });
        assert_eq!(a, b);
    }
}
