//! One module per paper artifact. See the crate docs for the index.

pub mod ablations;
pub mod costs;
pub mod dataset;
pub mod deployment;
pub mod dialects;
pub mod efficacy;
pub mod future_threats;
pub mod kelihos;
pub mod longterm;
pub mod mta_schedules;
pub mod nolisting_adoption;
pub mod policy_backend;
pub mod recovery;
pub mod resilience;
pub mod summary;
pub mod variance;
pub mod webmail;

pub mod worlds;
