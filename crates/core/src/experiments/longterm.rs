//! Long-term stability — the Sochor question (§VII related work).
//!
//! Sochor's 2007–2008 study found greylisting's effectiveness "remained
//! constant over the two years of experiments" but warned about the
//! automatic administration of the auto-whitelist. This experiment runs a
//! mixed spam + benign workload month by month over a four-month horizon
//! (the paper's deployment window) with the auto-whitelist *enabled*, and
//! tracks per-month block rates, triplet-store growth, and how much
//! traffic ends up bypassing greylisting through the AWL.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_botnet::{BotSample, Campaign, MalwareFamily};
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_mta::{MtaProfile, SendingMta};
use spamward_obs::Registry;
use spamward_sim::{DetRng, SimDuration, SimTime};
use spamward_smtp::{Message, ReversePath};
use std::fmt;
use std::net::Ipv4Addr;

/// Configuration of the long-term run.
#[derive(Debug, Clone, PartialEq)]
pub struct LongTermConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of 30-day months to simulate.
    pub months: usize,
    /// Spam campaigns per month (fire-and-forget, fresh bots).
    pub spam_campaigns_per_month: usize,
    /// Benign messages per month. A fixed pool of relays sends them, so
    /// the auto-whitelist has something to learn.
    pub benign_per_month: usize,
    /// Distinct benign relays in the pool.
    pub benign_relays: usize,
    /// Engine event budget for the victim world (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for LongTermConfig {
    /// Defaults keep `benign_relays` ≤ 100 so each relay gets its own /24.
    fn default() -> Self {
        LongTermConfig {
            seed: 4_000,
            months: 4,
            spam_campaigns_per_month: 30,
            benign_per_month: 120,
            benign_relays: 12,
            event_budget: None,
        }
    }
}

/// One month's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthRow {
    /// 1-based month index.
    pub month: usize,
    /// Fraction of spam messages blocked this month.
    pub spam_block_rate: f64,
    /// Fraction of benign messages delivered this month.
    pub benign_delivery_rate: f64,
    /// Fraction of benign messages that passed via the auto-whitelist
    /// (no greylist delay at all).
    pub benign_awl_rate: f64,
    /// Triplet-store size at month end (after maintenance sweep).
    pub store_size: usize,
}

/// The four-month trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct LongTermResult {
    /// One row per month.
    pub months: Vec<MonthRow>,
}

impl LongTermResult {
    /// Largest month-to-month swing in the spam block rate — Sochor's
    /// "remained constant" claim, quantified.
    pub fn max_block_rate_swing(&self) -> f64 {
        self.months
            .windows(2)
            .map(|w| (w[1].spam_block_rate - w[0].spam_block_rate).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs the long-term workload.
pub fn run(config: &LongTermConfig) -> LongTermResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the long-term workload, exporting the victim world's end-of-run
/// protocol metrics into `reg` and (when `trace` is set) draining delivery
/// traces into `trace_lines`.
pub fn run_with_obs(
    config: &LongTermConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> LongTermResult {
    // AWL on (Postgrey default of 5) — the knob under study.
    let mut world =
        worlds::custom_greylist_world(config.seed, Greylist::new(GreylistConfig::default()));
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }

    let mut rng = DetRng::seed(config.seed).fork("longterm");
    let month = SimDuration::from_days(30);
    // One /24 per relay: the auto-whitelist keys on the client network, so
    // sharing a subnet would let one relay's reputation cover them all.
    let relay_ips: Vec<Ipv4Addr> =
        (0..config.benign_relays).map(|i| Ipv4Addr::new(198, 51, 100 + i as u8, 1)).collect();

    let mut months = Vec::new();
    let mut bot_ip_pool = spamward_net::IpPool::new(Ipv4Addr::new(203, 0, 0, 1));
    for m in 0..config.months {
        let month_start = SimTime::ZERO + month * m as u64;

        // --- Spam: fresh fire-and-forget bots, new triplets every time.
        let mut spam_sent = 0usize;
        let mut spam_delivered = 0usize;
        for c in 0..config.spam_campaigns_per_month {
            let family =
                if c % 2 == 0 { MalwareFamily::Cutwail } else { MalwareFamily::Darkmailer };
            let mut bot = BotSample::new(family, c as u32, bot_ip_pool.next_ip());
            let campaign = Campaign::synthetic(VICTIM_DOMAIN, 3, &mut rng);
            let at = month_start + SimDuration::from_micros(rng.below(month.as_micros()));
            let report =
                bot.run_campaign(&mut world, &campaign, at, at + SimDuration::from_mins(30));
            spam_sent += campaign.len();
            spam_delivered += report.delivered.len();
        }

        // --- Benign: the same relay pool writes all month.
        let mut benign_delivered = 0usize;
        let mut benign_first_try = 0usize;
        for i in 0..config.benign_per_month {
            let relay = i % config.benign_relays;
            let at = month_start + SimDuration::from_micros(rng.below(month.as_micros()));
            let mut sender = SendingMta::new(
                &format!("relay{relay}.example"),
                vec![relay_ips[relay]],
                MtaProfile::sendmail(),
            );
            sender.submit(
                VICTIM_DOMAIN.parse().expect("valid domain"),
                ReversePath::Address(
                    format!("user{i}m{m}@relay{relay}.example").parse().expect("valid sender"),
                ),
                vec![format!("staff{}@{VICTIM_DOMAIN}", i % 25).parse().expect("valid rcpt")],
                Message::builder().body("monthly business").build(),
                at,
            );
            sender.drain(at, &mut world);
            let records = sender.records();
            if records.iter().any(|r| r.delivered) {
                benign_delivered += 1;
                if records.len() == 1 {
                    benign_first_try += 1; // no deferral: whitelisted path
                }
            }
        }

        // Month-end maintenance, as a deployment's cron job would run.
        let month_end = month_start + month;
        let store_size = {
            let server = world.server_mut(VICTIM_MX_IP).expect("victim server");
            let gl = server.greylist_mut().expect("greylist enabled");
            gl.maintain(month_end);
            gl.store().len()
        };

        months.push(MonthRow {
            month: m + 1,
            spam_block_rate: 1.0 - spam_delivered as f64 / spam_sent.max(1) as f64,
            benign_delivery_rate: benign_delivered as f64 / config.benign_per_month.max(1) as f64,
            benign_awl_rate: benign_first_try as f64 / config.benign_per_month.max(1) as f64,
            store_size,
        });
    }
    spamward_mta::metrics::collect_world(&world, reg);
    trace_lines.extend(world.trace.events().map(|e| e.to_string()));
    LongTermResult { months }
}

impl LongTermResult {
    /// The monthly trajectory as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Month",
            "Spam blocked",
            "Benign delivered",
            "Benign via AWL",
            "Store size",
        ])
        .with_title("Long-term stability (auto-whitelist enabled, monthly sweeps)");
        for m in &self.months {
            t.row(vec![
                m.month.to_string(),
                format!("{:.1}%", m.spam_block_rate * 100.0),
                format!("{:.1}%", m.benign_delivery_rate * 100.0),
                format!("{:.1}%", m.benign_awl_rate * 100.0),
                m.store_size.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for LongTermResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(
            f,
            "max month-to-month block-rate swing: {:.1} pp (Sochor: \"remained constant\")",
            self.max_block_rate_swing() * 100.0
        )
    }
}

/// Registry entry for the long-term stability run.
pub struct LongTermExperiment;

impl Experiment for LongTermExperiment {
    fn id(&self) -> &'static str {
        "longterm"
    }

    fn title(&self) -> &'static str {
        "Month-over-month stability with the auto-whitelist on"
    }

    fn paper_artifact(&self) -> &'static str {
        "§VII (Sochor)"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = match config.scale {
            Scale::Paper => LongTermConfig {
                seed: config.seed_or(LongTermConfig::default().seed),
                event_budget: config.event_budget,
                ..Default::default()
            },
            Scale::Quick => LongTermConfig {
                seed: config.seed_or(LongTermConfig::default().seed),
                spam_campaigns_per_month: 15,
                benign_per_month: 60,
                event_budget: config.event_budget,
                ..Default::default()
            },
        };
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report
            .push_table(result.table())
            .push_scalar("max block-rate swing (pp)", result.max_block_rate_swing() * 100.0);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LongTermResult {
        run(&LongTermConfig {
            spam_campaigns_per_month: 15,
            benign_per_month: 60,
            ..Default::default()
        })
    }

    #[test]
    fn block_rate_is_stable_across_months() {
        let r = quick();
        assert_eq!(r.months.len(), 4);
        for m in &r.months {
            assert_eq!(
                m.spam_block_rate, 1.0,
                "month {}: fire-and-forget spam must stay fully blocked",
                m.month
            );
            assert_eq!(m.benign_delivery_rate, 1.0, "month {}: benign mail must deliver", m.month);
        }
        assert_eq!(r.max_block_rate_swing(), 0.0);
    }

    #[test]
    fn auto_whitelist_learns_the_relay_pool() {
        let r = quick();
        // Month 1: relays are unknown — most mail waits out the delay.
        // By the last month every relay has earned the AWL and benign mail
        // flows on the first attempt.
        let first = r.months.first().unwrap();
        let last = r.months.last().unwrap();
        assert!(
            last.benign_awl_rate > first.benign_awl_rate,
            "AWL should grow: month1 {:.2} vs month4 {:.2}",
            first.benign_awl_rate,
            last.benign_awl_rate
        );
        // Each relay must earn its own 5 passes in month 1 (distinct /24s).
        assert!(first.benign_awl_rate < 0.5, "month 1 too easy: {:.2}", first.benign_awl_rate);
        assert!(
            last.benign_awl_rate > 0.9,
            "mature AWL should cover the pool: {:.2}",
            last.benign_awl_rate
        );
    }

    #[test]
    fn store_growth_is_bounded_by_maintenance() {
        let r = quick();
        // Spam triplets are pending-only and expire within 2 days, so the
        // store tracks mostly the benign population rather than growing
        // with cumulative spam volume.
        let last = r.months.last().unwrap();
        let month1 = r.months.first().unwrap();
        assert!(
            last.store_size < month1.store_size * 4,
            "store must not grow linearly with spam: month1 {} vs month4 {}",
            month1.store_size,
            last.store_size
        );
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("Long-term stability"));
        assert!(out.contains("Sochor"));
    }
}
