//! Dialect fingerprinting — the B@bel foundation (§II) the paper rests on.
//!
//! The paper's premise is Stringhini et al.'s observation that SMTP
//! "dialects" fingerprint the sending software well enough to tell botnets
//! from benign MTAs. This experiment closes the loop inside the suite: it
//! runs every sender model (the four malware families, a compliant MTA, a
//! webmail tier) against a greylisting victim, extracts a behavioural
//! fingerprint *from the transcript alone*, classifies each session with
//! the bot-vs-MTA heuristic, and reports the confusion matrix.

use crate::experiments::worlds::VICTIM_DOMAIN;
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report};
use spamward_analysis::Table;
use spamward_botnet::MalwareFamily;
use spamward_greylist::{Greylist, GreylistConfig};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{
    exchange, ClientSession, Dialect, DialectFingerprint, Envelope, Message, ReversePath,
    ServerSession,
};
use std::fmt;
use std::net::Ipv4Addr;

/// One observed sender class.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectObservation {
    /// Sender label ("kelihos", "compliant-mta", ...).
    pub sender: String,
    /// Whether the sender really is a bot.
    pub is_bot: bool,
    /// The fingerprint recovered from the transcript.
    pub fingerprint: DialectFingerprint,
    /// Whether the heuristic classified it as a bot.
    pub classified_bot: bool,
}

/// The classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct DialectsResult {
    /// One row per sender class.
    pub observations: Vec<DialectObservation>,
}

impl DialectsResult {
    /// Fraction of senders classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.observations.is_empty() {
            return 1.0;
        }
        let correct = self.observations.iter().filter(|o| o.classified_bot == o.is_bot).count();
        correct as f64 / self.observations.len() as f64
    }
}

/// A greylist-everything session against one sender dialect, returning the
/// transcript fingerprint. The greylisted failure path is exactly where
/// dialects diverge.
fn observe(dialect: Dialect) -> DialectFingerprint {
    let client_ip = Ipv4Addr::new(203, 0, 113, 120);
    let envelope = Envelope::builder()
        .client_ip(client_ip)
        .helo(&dialect.helo_argument(client_ip))
        .mail_from(ReversePath::Address("probe@sender.example".parse().expect("valid sender")))
        .rcpt(format!("a@{VICTIM_DOMAIN}").parse().expect("valid rcpt"))
        .rcpt(format!("b@{VICTIM_DOMAIN}").parse().expect("valid rcpt"))
        .build();
    let message = Message::builder().header("Subject", "probe").body("x").build();
    let mut client = ClientSession::new(dialect, envelope, message);
    let mut server = ServerSession::new("mx.victim.example", client_ip);

    // A pure greylisting policy (no recipient validation noise).
    struct GreylistAll(Greylist);
    impl spamward_smtp::ServerPolicy for GreylistAll {
        fn on_rcpt(
            &mut self,
            now: SimTime,
            tx: &spamward_smtp::Transaction,
            rcpt: &spamward_smtp::EmailAddress,
        ) -> spamward_smtp::PolicyDecision {
            let sender = tx.mail_from.clone().unwrap_or(ReversePath::Null);
            match self.0.check(now, tx.client_ip, &sender, rcpt) {
                spamward_greylist::Decision::Pass(_) => spamward_smtp::PolicyDecision::Accept,
                spamward_greylist::Decision::Greylisted { retry_after } => {
                    spamward_smtp::PolicyDecision::TempFail(spamward_smtp::Reply::greylisted(
                        retry_after.as_secs(),
                    ))
                }
            }
        }
    }
    let mut policy = GreylistAll(Greylist::new(
        GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
    ));
    let (_, transcript) = exchange(&mut client, &mut server, &mut policy, SimTime::ZERO);
    transcript.fingerprint()
}

/// Runs the classification over every sender model in the suite.
pub fn run() -> DialectsResult {
    let mut senders: Vec<(String, bool, Dialect)> = vec![
        ("compliant-mta".into(), false, Dialect::compliant_mta("relay.example")),
        ("webmail-tier".into(), false, Dialect::compliant_mta("mta.gmail.com")),
    ];
    for family in MalwareFamily::ALL {
        senders.push((family.name().to_ascii_lowercase(), true, family.dialect()));
    }

    let observations = senders
        .into_iter()
        .map(|(sender, is_bot, dialect)| {
            let fingerprint = observe(dialect);
            DialectObservation {
                sender,
                is_bot,
                classified_bot: !fingerprint.looks_like_mta(),
                fingerprint,
            }
        })
        .collect();
    DialectsResult { observations }
}

impl DialectsResult {
    /// The confusion matrix as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Sender",
            "Truth",
            "Classified",
            "EHLO",
            "Literal HELO",
            "QUITs",
            "Early talker",
        ])
        .with_title("Dialect fingerprinting (B@bel-style) from greylisted-session transcripts");
        for o in &self.observations {
            let yn = |b: bool| if b { "yes".to_owned() } else { "no".to_owned() };
            t.row(vec![
                o.sender.clone(),
                if o.is_bot { "bot".into() } else { "MTA".into() },
                if o.classified_bot { "bot".into() } else { "MTA".into() },
                yn(o.fingerprint.greets_with_ehlo),
                yn(o.fingerprint.helo_is_literal),
                yn(o.fingerprint.quits_politely),
                yn(o.fingerprint.early_talker),
            ]);
        }
        t
    }
}

impl fmt::Display for DialectsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(f, "classification accuracy: {:.0}%", self.accuracy() * 100.0)
    }
}

/// Registry entry for the dialect-fingerprinting loop. The transcripts are
/// deterministic functions of the sender models, so the run ignores seed
/// and scale.
pub struct DialectsExperiment;

impl Experiment for DialectsExperiment {
    fn id(&self) -> &'static str {
        "dialects"
    }

    fn title(&self) -> &'static str {
        "SMTP dialect fingerprinting of the sender models"
    }

    fn paper_artifact(&self) -> &'static str {
        "§II premise"
    }

    fn seedable(&self) -> bool {
        false
    }

    fn run(&self, _config: &HarnessConfig) -> Result<Report, HarnessError> {
        let result = run();
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact());
        crate::metrics::collect_dialects(&result, report.metrics_mut());
        report
            .push_table(result.table())
            .push_scalar("sender models", result.observations.len() as f64)
            .push_scalar("classification accuracy (%)", result.accuracy() * 100.0);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_most_senders_correctly() {
        let r = run();
        assert_eq!(r.observations.len(), 6);
        // Benign MTAs are never misclassified.
        for o in r.observations.iter().filter(|o| !o.is_bot) {
            assert!(!o.classified_bot, "{} misclassified as bot", o.sender);
        }
        // Cutwail and Kelihos (sloppy dialects) are caught.
        for name in ["cutwail", "kelihos"] {
            let o = r.observations.iter().find(|o| o.sender == name).unwrap();
            assert!(o.classified_bot, "{name} evaded the fingerprint");
        }
        // The Darkmailers speak near-correct SMTP — exactly the senders
        // dialect fingerprinting struggles with (and why defenses that
        // don't rely on dialects still matter).
        assert!(r.accuracy() >= 4.0 / 6.0);
    }

    #[test]
    fn bot_fingerprints_show_the_expected_features() {
        let r = run();
        let kelihos = r.observations.iter().find(|o| o.sender == "kelihos").unwrap();
        assert!(kelihos.fingerprint.early_talker);
        assert!(!kelihos.fingerprint.quits_politely);
        assert!(!kelihos.fingerprint.retries_remaining_rcpts);
        let cutwail = r.observations.iter().find(|o| o.sender == "cutwail").unwrap();
        assert!(cutwail.fingerprint.helo_is_literal);
    }

    #[test]
    fn renders() {
        let out = run().to_string();
        assert!(out.contains("Dialect fingerprinting"));
        assert!(out.contains("accuracy"));
        assert!(out.contains("cutwail"));
    }
}
