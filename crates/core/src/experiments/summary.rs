//! §VI headline numbers — what fraction of spam either defense stops.
//!
//! The summary consumes the Table II experiment through the harness
//! registry rather than re-running the efficacy module directly: each
//! family's 0/1 block verdict is read back from the sibling report's
//! scalars, so this module stays decoupled from the matrix internals.

use crate::experiments::efficacy::EfficacyExperiment;
use crate::harness::{self, Experiment, HarnessConfig, HarnessError, Report};
use spamward_analysis::reduce::ordered_sum;
use spamward_analysis::Table;
use spamward_botnet::{MalwareFamily, BOTNET_FRACTION_OF_GLOBAL_SPAM};
use spamward_obs::Registry;
use std::fmt;

/// The §VI aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryResult {
    /// Botnet-spam share blocked by nolisting alone.
    pub nolisting_botnet_pct: f64,
    /// Botnet-spam share blocked by greylisting alone.
    pub greylisting_botnet_pct: f64,
    /// Botnet-spam share blocked by either (union).
    pub either_botnet_pct: f64,
    /// Global-spam share blocked by either (the paper's "over 70%").
    pub either_global_pct: f64,
    /// Per-family rows: (name, botnet %, blocked-by-nolisting,
    /// blocked-by-greylisting).
    pub rows: Vec<(String, f64, bool, bool)>,
}

/// Computes the summary from a fresh Table II run, obtained through the
/// registry. Propagates the inner run's harness error (e.g. an exhausted
/// event budget).
pub fn run(config: &HarnessConfig) -> Result<SummaryResult, HarnessError> {
    run_with_obs(config, &mut Registry::new(), &mut Vec::new())
}

/// Computes the summary, folding the inner Table II run's metric registry
/// into `reg` and its trace lines (non-empty only when `config.trace` is
/// set) into `trace_lines`.
pub fn run_with_obs(
    config: &HarnessConfig,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> Result<SummaryResult, HarnessError> {
    let table2 = harness::find("table2").expect("table2 is registered");
    let report = table2.run(config)?;
    reg.merge(report.metrics());
    trace_lines.extend(report.trace_lines().iter().cloned());
    let blocks = |defense: &str, family: MalwareFamily| {
        report.scalar(&format!("{defense} blocks {}", family.name())) == Some(1.0)
    };

    let mut rows = Vec::new();
    let mut either_parts = Vec::new();
    for family in MalwareFamily::ALL {
        let nl = blocks("nolisting", family);
        let gl = blocks("greylisting", family);
        if nl || gl {
            either_parts.push(family.botnet_spam_pct());
        }
        rows.push((family.name().to_owned(), family.botnet_spam_pct(), nl, gl));
    }
    let either = ordered_sum(either_parts);
    Ok(SummaryResult {
        nolisting_botnet_pct: report
            .scalar("nolisting blocked (% of botnet spam)")
            .expect("table2 reports the nolisting share"),
        greylisting_botnet_pct: report
            .scalar("greylisting blocked (% of botnet spam)")
            .expect("table2 reports the greylisting share"),
        either_botnet_pct: either,
        either_global_pct: either * BOTNET_FRACTION_OF_GLOBAL_SPAM,
        rows,
    })
}

impl SummaryResult {
    /// The per-family verdicts as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["Family", "Botnet spam", "Nolisting", "Greylisting"])
            .with_title("Section VI summary: spam blocked per defense");
        for (name, pct, nl, gl) in &self.rows {
            let mark = |b: &bool| if *b { "blocks".to_owned() } else { "-".to_owned() };
            t.row(vec![name.clone(), format!("{pct:.2}%"), mark(nl), mark(gl)]);
        }
        t
    }
}

impl fmt::Display for SummaryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())?;
        writeln!(f, "nolisting alone blocks:   {:.2}% of botnet spam", self.nolisting_botnet_pct)?;
        writeln!(
            f,
            "greylisting alone blocks: {:.2}% of botnet spam",
            self.greylisting_botnet_pct
        )?;
        writeln!(f, "either defense blocks:    {:.2}% of botnet spam", self.either_botnet_pct)?;
        writeln!(
            f,
            "                        = {:.2}% of ALL worldwide spam (paper: \"over 70%\")",
            self.either_global_pct
        )
    }
}

/// Registry entry for the §VI headline aggregate.
pub struct SummaryExperiment;

impl Experiment for SummaryExperiment {
    fn id(&self) -> &'static str {
        "summary"
    }

    fn title(&self) -> &'static str {
        "Headline blocked-spam shares"
    }

    fn paper_artifact(&self) -> &'static str {
        "§VI headline"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(EfficacyExperiment::config(config).seed);
        let mut trace_lines = Vec::new();
        let result = run_with_obs(config, report.metrics_mut(), &mut trace_lines)?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        crate::metrics::collect_summary(&result, report.metrics_mut());
        report
            .push_table(result.table())
            .push_scalar("nolisting alone (% of botnet spam)", result.nolisting_botnet_pct)
            .push_scalar("greylisting alone (% of botnet spam)", result.greylisting_botnet_pct)
            .push_scalar("either defense (% of botnet spam)", result.either_botnet_pct)
            .push_scalar("either defense (% of global spam)", result.either_global_pct);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    fn quick() -> SummaryResult {
        run(&HarnessConfig { scale: Scale::Quick, ..Default::default() })
            .expect("quick summary completes")
    }

    #[test]
    fn headline_over_70_percent() {
        let s = quick();
        // All four families are blocked by at least one technique.
        assert!((s.either_botnet_pct - 93.02).abs() < 1e-9);
        assert!(s.either_global_pct > 70.0, "got {}", s.either_global_pct);
        assert!(s.either_global_pct < 71.0);
    }

    #[test]
    fn greylisting_beats_nolisting() {
        // §VI: "Between the two, greylisting seems to be more effective".
        let s = quick();
        assert!(s.greylisting_botnet_pct > s.nolisting_botnet_pct);
        assert!((s.greylisting_botnet_pct - 56.69).abs() < 1e-9);
        assert!((s.nolisting_botnet_pct - 36.33).abs() < 1e-9);
    }

    #[test]
    fn no_family_escapes_both() {
        let s = quick();
        for (name, _, nl, gl) in &s.rows {
            assert!(nl | gl, "{name} escapes both defenses");
        }
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("worldwide spam"));
        assert!(out.contains("Kelihos"));
    }
}
