//! §VI headline numbers — what fraction of spam either defense stops.

use crate::experiments::efficacy::{self, EfficacyConfig};
use spamward_analysis::AsciiTable;
use spamward_botnet::{MalwareFamily, BOTNET_FRACTION_OF_GLOBAL_SPAM};
use std::fmt;

/// The §VI aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryResult {
    /// Botnet-spam share blocked by nolisting alone.
    pub nolisting_botnet_pct: f64,
    /// Botnet-spam share blocked by greylisting alone.
    pub greylisting_botnet_pct: f64,
    /// Botnet-spam share blocked by either (union).
    pub either_botnet_pct: f64,
    /// Global-spam share blocked by either (the paper's "over 70%").
    pub either_global_pct: f64,
    /// Per-family rows: (name, botnet %, blocked-by-nolisting,
    /// blocked-by-greylisting).
    pub rows: Vec<(String, f64, bool, bool)>,
}

/// Computes the summary from a fresh Table II run.
pub fn run(config: &EfficacyConfig) -> SummaryResult {
    let matrix = efficacy::run(config);
    let mut rows = Vec::new();
    let mut either = 0.0;
    for family in MalwareFamily::ALL {
        let row = matrix
            .rows
            .iter()
            .find(|r| r.family == family)
            .expect("every family has at least one sample");
        if row.nolisting_blocked || row.greylisting_blocked {
            either += family.botnet_spam_pct();
        }
        rows.push((
            family.name().to_owned(),
            family.botnet_spam_pct(),
            row.nolisting_blocked,
            row.greylisting_blocked,
        ));
    }
    SummaryResult {
        nolisting_botnet_pct: matrix.botnet_spam_blocked_pct(true),
        greylisting_botnet_pct: matrix.botnet_spam_blocked_pct(false),
        either_botnet_pct: either,
        either_global_pct: either * BOTNET_FRACTION_OF_GLOBAL_SPAM,
        rows,
    }
}

impl fmt::Display for SummaryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = AsciiTable::new(vec!["Family", "Botnet spam", "Nolisting", "Greylisting"])
            .with_title("Section VI summary: spam blocked per defense");
        for (name, pct, nl, gl) in &self.rows {
            let mark = |b: &bool| if *b { "blocks".to_owned() } else { "-".to_owned() };
            t.row(vec![name.clone(), format!("{pct:.2}%"), mark(nl), mark(gl)]);
        }
        write!(f, "{t}")?;
        writeln!(f, "nolisting alone blocks:   {:.2}% of botnet spam", self.nolisting_botnet_pct)?;
        writeln!(
            f,
            "greylisting alone blocks: {:.2}% of botnet spam",
            self.greylisting_botnet_pct
        )?;
        writeln!(f, "either defense blocks:    {:.2}% of botnet spam", self.either_botnet_pct)?;
        writeln!(
            f,
            "                        = {:.2}% of ALL worldwide spam (paper: \"over 70%\")",
            self.either_global_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SummaryResult {
        run(&EfficacyConfig { recipients: 5, ..Default::default() })
    }

    #[test]
    fn headline_over_70_percent() {
        let s = quick();
        // All four families are blocked by at least one technique.
        assert!((s.either_botnet_pct - 93.02).abs() < 1e-9);
        assert!(s.either_global_pct > 70.0, "got {}", s.either_global_pct);
        assert!(s.either_global_pct < 71.0);
    }

    #[test]
    fn greylisting_beats_nolisting() {
        // §VI: "Between the two, greylisting seems to be more effective".
        let s = quick();
        assert!(s.greylisting_botnet_pct > s.nolisting_botnet_pct);
        assert!((s.greylisting_botnet_pct - 56.69).abs() < 1e-9);
        assert!((s.nolisting_botnet_pct - 36.33).abs() < 1e-9);
    }

    #[test]
    fn no_family_escapes_both() {
        let s = quick();
        for (name, _, nl, gl) in &s.rows {
            assert!(nl | gl, "{name} escapes both defenses");
        }
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("worldwide spam"));
        assert!(out.contains("Kelihos"));
    }
}
