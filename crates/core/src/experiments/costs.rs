//! §VI cost accounting — what the defenses charge "the Internet at large".
//!
//! The paper's validity discussion notes that greylisting and nolisting
//! have "a cost for the system (for example in terms of disk space and
//! computation resources) and for the Internet community at large (because
//! of the increased traffic and bandwidth)" — but never quantifies it.
//! This experiment does: the same benign workload runs against an
//! unprotected, a nolisting, and a greylisting victim, and we count the
//! SMTP connections, DNS queries, triplet-store entries and sender
//! wall-clock each configuration consumed per delivered message.

use crate::experiments::worlds::{self, VICTIM_DOMAIN, VICTIM_MX_IP};
use crate::harness::{Experiment, HarnessConfig, HarnessError, Report, Scale};
use spamward_analysis::Table;
use spamward_mta::{MailWorld, MtaProfile, SendingMta};
use spamward_obs::Registry;
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{Message, ReversePath};
use std::fmt;
use std::net::Ipv4Addr;

/// Configuration of the cost accounting run.
#[derive(Debug, Clone, PartialEq)]
pub struct CostsConfig {
    /// RNG seed.
    pub seed: u64,
    /// Benign messages per configuration.
    pub messages: usize,
    /// Greylisting threshold for the protected configuration.
    pub threshold: SimDuration,
    /// Engine event budget shared by every setup's world
    /// (`None` = unbounded).
    pub event_budget: Option<u64>,
}

impl Default for CostsConfig {
    fn default() -> Self {
        CostsConfig {
            seed: 606,
            messages: 300,
            threshold: SimDuration::from_secs(300),
            event_budget: None,
        }
    }
}

/// Measured costs of one victim configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Configuration label.
    pub setup: String,
    /// Messages delivered.
    pub delivered: usize,
    /// Total TCP connection attempts on the simulated network.
    pub connections: u64,
    /// Total DNS queries the authority served.
    pub dns_queries: u64,
    /// Triplet-store entries left behind (disk-space proxy).
    pub store_entries: usize,
    /// Total delivery delay summed over messages.
    pub total_delay: SimDuration,
}

impl CostRow {
    /// Connections per delivered message.
    pub fn connections_per_delivery(&self) -> f64 {
        self.connections as f64 / self.delivered.max(1) as f64
    }
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CostsResult {
    /// One row per configuration.
    pub rows: Vec<CostRow>,
}

impl CostsResult {
    /// Looks up a configuration by label.
    pub fn row(&self, setup: &str) -> Option<&CostRow> {
        self.rows.iter().find(|r| r.setup == setup)
    }
}

fn run_setup(
    config: &CostsConfig,
    setup: &str,
    mut world: MailWorld,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> CostRow {
    world.event_budget = config.event_budget;
    if trace {
        world = world.with_tracing();
    }
    let dns_before = world.dns.queries_served();
    let mut delivered = 0usize;
    let mut total_delay = SimDuration::ZERO;
    for i in 0..config.messages {
        let mut sender = SendingMta::new(
            &format!("relay{i}.example"),
            vec![Ipv4Addr::new(100, 80, (i / 200) as u8, (1 + i % 200) as u8)],
            MtaProfile::postfix(),
        );
        sender.submit(
            VICTIM_DOMAIN.parse().expect("valid domain"),
            ReversePath::Address(
                format!("user{i}@relay{i}.example").parse().expect("valid sender"),
            ),
            vec![format!("staff{}@{VICTIM_DOMAIN}", i % 40).parse().expect("valid rcpt")],
            Message::builder().body("cost accounting").build(),
            SimTime::ZERO,
        );
        sender.drain(SimTime::ZERO, &mut world);
        if let Some(r) = sender.records().iter().find(|r| r.delivered) {
            delivered += 1;
            total_delay += r.since_enqueue;
        }
        spamward_mta::metrics::collect_sender(&sender, reg);
    }
    spamward_mta::metrics::collect_world(&world, reg);
    trace_lines.extend(world.trace.events().map(|e| e.to_string()));
    let store_entries =
        world.server(VICTIM_MX_IP).and_then(|s| s.greylist()).map(|g| g.store().len()).unwrap_or(0);
    CostRow {
        setup: setup.to_owned(),
        delivered,
        connections: world.network.connects_attempted(),
        dns_queries: world.dns.queries_served() - dns_before,
        store_entries,
        total_delay,
    }
}

/// Runs the three configurations.
pub fn run(config: &CostsConfig) -> CostsResult {
    run_with_obs(config, false, &mut Registry::new(), &mut Vec::new())
}

/// Runs the three configurations, aggregating protocol metrics from every
/// setup's world into `reg` and (when `trace` is set) draining delivery
/// traces into `trace_lines`.
pub fn run_with_obs(
    config: &CostsConfig,
    trace: bool,
    reg: &mut Registry,
    trace_lines: &mut Vec<String>,
) -> CostsResult {
    let rows = vec![
        run_setup(config, "unprotected", worlds::plain_world(config.seed), trace, reg, trace_lines),
        run_setup(
            config,
            "nolisting",
            worlds::nolisting_world(config.seed),
            trace,
            reg,
            trace_lines,
        ),
        run_setup(
            config,
            "greylisting",
            worlds::greylist_world(config.seed, config.threshold),
            trace,
            reg,
            trace_lines,
        ),
    ];
    CostsResult { rows }
}

impl CostsResult {
    /// The cost comparison as a typed [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Setup",
            "Delivered",
            "TCP connects",
            "Conn/delivery",
            "DNS queries",
            "Store entries",
            "Mean delay",
        ])
        .with_title("Section VI cost accounting (same benign workload per setup)");
        for r in &self.rows {
            let mean_delay = if r.delivered == 0 {
                SimDuration::ZERO
            } else {
                r.total_delay / r.delivered as u64
            };
            t.row(vec![
                r.setup.clone(),
                r.delivered.to_string(),
                r.connections.to_string(),
                format!("{:.2}", r.connections_per_delivery()),
                r.dns_queries.to_string(),
                r.store_entries.to_string(),
                mean_delay.to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for CostsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

/// Registry entry for the §VI cost accounting.
pub struct CostsExperiment;

impl Experiment for CostsExperiment {
    fn id(&self) -> &'static str {
        "costs"
    }

    fn title(&self) -> &'static str {
        "Defense cost accounting per delivered message"
    }

    fn paper_artifact(&self) -> &'static str {
        "§VI validity"
    }

    fn run(&self, config: &HarnessConfig) -> Result<Report, HarnessError> {
        let module_config = CostsConfig {
            seed: config.seed_or(CostsConfig::default().seed),
            messages: match config.scale {
                Scale::Paper => CostsConfig::default().messages,
                Scale::Quick => 60,
            },
            event_budget: config.event_budget,
            ..Default::default()
        };
        let mut report = Report::new(self.id(), self.title(), self.paper_artifact())
            .with_seed(module_config.seed);
        let mut trace_lines = Vec::new();
        let result =
            run_with_obs(&module_config, config.trace, report.metrics_mut(), &mut trace_lines);
        crate::harness::ensure_completed(self.id(), report.metrics())?;
        for line in &trace_lines {
            report.push_trace_line(line);
        }
        report.push_table(result.table());
        for row in &result.rows {
            report.push_scalar(
                &format!("connections per delivery: {}", row.setup),
                row.connections_per_delivery(),
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CostsResult {
        run(&CostsConfig { messages: 80, ..Default::default() })
    }

    #[test]
    fn everything_delivers_in_all_setups() {
        let r = quick();
        for row in &r.rows {
            assert_eq!(row.delivered, 80, "{}: benign mail must always deliver", row.setup);
        }
    }

    #[test]
    fn greylisting_costs_connections_and_state() {
        let r = quick();
        let base = r.row("unprotected").unwrap();
        let grey = r.row("greylisting").unwrap();
        // One retry per message ⇒ roughly double the connections.
        assert!(
            grey.connections >= base.connections * 2 - 5,
            "greylist connects {} vs base {}",
            grey.connections,
            base.connections
        );
        assert!(grey.connections_per_delivery() > base.connections_per_delivery());
        // One triplet per (sender, rcpt) pair lingers in the store.
        assert_eq!(grey.store_entries, 80);
        assert_eq!(base.store_entries, 0);
        // And mail is slower.
        assert!(grey.total_delay > base.total_delay);
    }

    #[test]
    fn nolisting_costs_an_extra_connect_but_no_delay() {
        let r = quick();
        let base = r.row("unprotected").unwrap();
        let nl = r.row("nolisting").unwrap();
        // Each delivery burns one refused connect on the dead primary.
        assert!(
            nl.connections >= base.connections * 2 - 5,
            "nolisting connects {} vs base {}",
            nl.connections,
            base.connections
        );
        // But delivery delay stays (essentially) zero — the paper's "it
        // should not introduce any delay" claim.
        assert!(
            nl.total_delay < SimDuration::from_secs(80),
            "nolisting must not delay mail: {}",
            nl.total_delay
        );
        assert_eq!(nl.store_entries, 0);
    }

    #[test]
    fn renders() {
        let out = quick().to_string();
        assert!(out.contains("cost accounting"));
        assert!(out.contains("unprotected"));
        assert!(out.contains("Conn/delivery"));
    }
}
