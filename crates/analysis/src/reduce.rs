//! Order-pinned floating-point reduction.
//!
//! f64 addition is not associative: `(a + b) + c` and `a + (b + c)` can
//! differ in the last bit, so any reduction whose operand order is
//! incidental (thread interleaving, map iteration, shard merge order)
//! breaks the byte-identical golden snapshot. Every f64 accumulation in
//! experiment and metrics code goes through [`ordered_sum`] — the one
//! place where the reduction order is pinned to the iterator's order —
//! and lint rule `C2` enforces the routing.
//!
//! When ROADMAP item 1 splits one world into N shards, shard results must
//! be collected into a deterministic sequence (seed order, cell order) and
//! reduced here; nothing else may fold floats.

/// Sums `values` as a left fold in iterator order.
///
/// Bit-identical to `Iterator::sum::<f64>()` over the same sequence (both
/// are `fold(0.0, +)`), so routing an existing sum through this helper
/// never changes reproduced numbers — it only makes the order a stated
/// contract instead of an accident.
pub fn ordered_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(0.0, |acc, v| acc + v)
}

/// Mean of `values` via [`ordered_sum`]; `None` when empty.
pub fn ordered_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(ordered_sum(values.iter().copied()) / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_iterator_sum_bit_for_bit() {
        // A sequence chosen so different association orders actually differ.
        let vals = [1e16, 1.0, -1e16, 0.1, 3.375, 2.5e-8, 7.0];
        let ours = ordered_sum(vals.iter().copied());
        let std = vals.iter().copied().sum::<f64>();
        assert_eq!(ours.to_bits(), std.to_bits());
    }

    #[test]
    fn order_matters_and_is_respected() {
        // 1e16 + 1.0 absorbs the 1.0, so these two orders genuinely differ
        // — the helper must follow iterator order, not re-associate.
        let a = [1e16, 1.0, 1.0, -1e16];
        let b = [1.0, 1.0, 1e16, -1e16];
        assert_eq!(ordered_sum(a.iter().copied()), 0.0);
        assert_eq!(ordered_sum(b.iter().copied()), 2.0);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(ordered_mean(&[]), None);
        assert_eq!(ordered_mean(&[2.0, 4.0]), Some(3.0));
    }
}
