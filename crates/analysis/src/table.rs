//! Typed tables with plain-text, CSV and canonical-JSON rendering.

use std::fmt;

use crate::json::{csv_field, json_array, json_string};

/// A typed table with a header row — the unit every paper table (and the
/// harness [`Report`](https://docs.rs) tables field) is built from.
///
/// Renders three ways: `Display` gives the aligned monospace form `repro`
/// prints, [`Table::to_csv`] gives RFC-4180 rows for external tooling, and
/// [`Table::to_json`] gives a canonical JSON object whose bytes are stable
/// across runs and platforms (tests and CI pin them).
///
/// # Example
///
/// ```
/// use spamward_analysis::Table;
/// let mut t = Table::new(vec!["MTA", "max queue (days)"]);
/// t.row(vec!["sendmail".into(), "5".into()]);
/// t.row(vec!["exchange".into(), "2".into()]);
/// let out = t.to_string();
/// assert!(out.contains("sendmail"));
/// assert!(t.to_csv().starts_with("MTA,max queue (days)\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

/// Former name of [`Table`], kept so existing callers and docs keep
/// compiling; the type has always rendered as ASCII via `Display`.
pub type AsciiTable = Table;

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_owned());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// The title, if one was set.
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up the cell at `(row_label, column)` where `row_label` matches
    /// the first cell of a row and `column` a header name.
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_label)?;
        row.get(col).map(String::as_str)
    }

    /// Renders the table as RFC-4180 CSV: a header line then one line per
    /// row, fields quoted only when they contain delimiters.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let line =
            |cells: &[String]| cells.iter().map(|c| csv_field(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a canonical JSON object:
    /// `{"title":...,"headers":[...],"rows":[[...],...]}` with `null` for a
    /// missing title. Key order is fixed; bytes are deterministic.
    pub fn to_json(&self) -> String {
        let title = match &self.title {
            Some(t) => json_string(t),
            None => "null".to_owned(),
        };
        let headers = json_array(self.headers.iter().map(|h| json_string(h)));
        let rows =
            json_array(self.rows.iter().map(|r| json_array(r.iter().map(|c| json_string(c)))));
        format!("{{\"title\":{title},\"headers\":{headers},\"rows\":{rows}}}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]).with_title("Demo");
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "== Demo ==");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset in all rows.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].len().max(col), lines[3].len());
        assert!(lines[4].len() > col);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn accessors_expose_structure() {
        let mut t = Table::new(vec!["family", "blocked"]).with_title("T");
        t.row(vec!["Kelihos".into(), "yes".into()]);
        assert_eq!(t.title(), Some("T"));
        assert_eq!(t.headers(), ["family", "blocked"]);
        assert_eq!(t.rows().len(), 1);
        assert_eq!(t.cell("Kelihos", "blocked"), Some("yes"));
        assert_eq!(t.cell("Kelihos", "missing"), None);
        assert_eq!(t.cell("Cutwail", "blocked"), None);
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["plain".into(), "a,b".into()]);
        assert_eq!(t.to_csv(), "name,note\nplain,\"a,b\"\n");
    }

    #[test]
    fn json_is_canonical() {
        let mut t = Table::new(vec!["a", "b"]).with_title("T \"x\"");
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"T \\\"x\\\"\",\"headers\":[\"a\",\"b\"],\"rows\":[[\"1\",\"2\"]]}"
        );
        let bare = Table::new(vec!["only"]);
        assert_eq!(bare.to_json(), "{\"title\":null,\"headers\":[\"only\"],\"rows\":[]}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panics() {
        let _ = Table::new(vec![]);
    }
}
