//! Plain-text table rendering.

use std::fmt;

/// A simple monospace table with a header row.
///
/// # Example
///
/// ```
/// use spamward_analysis::AsciiTable;
/// let mut t = AsciiTable::new(vec!["MTA", "max queue (days)"]);
/// t.row(vec!["sendmail".into(), "5".into()]);
/// t.row(vec!["exchange".into(), "2".into()]);
/// let out = t.to_string();
/// assert!(out.contains("sendmail"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        AsciiTable {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_owned());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = AsciiTable::new(vec!["name", "value"]).with_title("Demo");
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "== Demo ==");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset in all rows.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].len().max(col), lines[3].len());
        assert!(lines[4].len() > col);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = AsciiTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panics() {
        let _ = AsciiTable::new(vec![]);
    }
}
