//! Binned histograms.

use serde::{Deserialize, Serialize};

/// A fixed-range histogram with equal-width (or log-width) bins.
///
/// # Example
///
/// ```
/// use spamward_analysis::Histogram;
/// let mut h = Histogram::linear(0.0, 100.0, 10);
/// h.add(5.0);
/// h.add(15.0);
/// h.add(15.5);
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    log: bool,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range {lo}..{hi} is empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, log: false, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Log-width bins over `[lo, hi)` — the natural view for retry delays
    /// spanning 300 s to 90 000 s (Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0`, `lo >= hi` or `bins == 0`.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0, "log histogram needs positive lower bound");
        assert!(lo < hi, "histogram range {lo}..{hi} is empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, log: true, counts: vec![0; bins], underflow: 0, overflow: 0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = if self.log {
            (x.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (x - self.lo) / (self.hi - self.lo)
        };
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lo, hi)` edges of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= bins()`.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "bin {idx} out of range");
        let n = self.counts.len() as f64;
        if self.log {
            let (lln, hln) = (self.lo.ln(), self.hi.ln());
            let w = (hln - lln) / n;
            ((lln + w * idx as f64).exp(), (lln + w * (idx as f64 + 1.0)).exp())
        } else {
            let w = (self.hi - self.lo) / n;
            (self.lo + w * idx as f64, self.lo + w * (idx as f64 + 1.0))
        }
    }

    /// Indices of local maxima with counts `>= min_count` — the "peaks" of
    /// Fig. 4.
    pub fn peaks(&self, min_count: u64) -> Vec<usize> {
        let mut out = Vec::new();
        for i in 0..self.counts.len() {
            let c = self.counts[i];
            if c < min_count {
                continue;
            }
            let left = if i == 0 { 0 } else { self.counts[i - 1] };
            let right = if i + 1 == self.counts.len() { 0 } else { self.counts[i + 1] };
            if c >= left && c >= right && (c > left || c > right || self.counts.len() == 1) {
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 9.9]);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::linear(0.0, 10.0, 2);
        h.extend([-5.0, 10.0, 100.0, f64::NAN]);
        assert_eq!(h.underflow(), 2); // -5 and NaN
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn log_binning_spreads_decades() {
        let mut h = Histogram::logarithmic(1.0, 10_000.0, 4);
        h.extend([2.0, 50.0, 500.0, 5_000.0]);
        for i in 0..4 {
            assert_eq!(h.count(i), 1, "bin {i}");
        }
        let (lo, hi) = h.bin_edges(0);
        assert!((lo - 1.0).abs() < 1e-9);
        assert!((hi - 10.0).abs() < 1e-6);
    }

    #[test]
    fn peaks_found() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        // Samples concentrated at two bumps.
        h.extend([1.1, 1.2, 1.3, 1.4, 6.1, 6.2, 6.3]);
        let peaks = h.peaks(2);
        assert_eq!(peaks, vec![1, 6]);
        assert!(h.peaks(100).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn bad_range_panics() {
        let _ = Histogram::linear(5.0, 5.0, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_zero_lower_bound_panics() {
        let _ = Histogram::logarithmic(0.0, 10.0, 3);
    }
}
