//! Metrics, distributions and rendering for the `spamward` experiments.
//!
//! Every figure in the paper is a distribution or a scatter, and every
//! table is rows of formatted durations and counts. This crate provides the
//! shared machinery:
//!
//! * [`Cdf`] — empirical CDFs (Figs. 3 and 5 are delivery-delay CDFs).
//! * [`Histogram`] — linear- or log-binned counts (Fig. 4's peaks).
//! * [`Summary`] — five-number summaries for report prose.
//! * [`Table`] — the typed table every `repro` subcommand prints, with
//!   canonical CSV/JSON rendering for the experiment harness
//!   ([`AsciiTable`] remains as an alias).
//! * [`Series`] — CSV/JSON series for external plotting.
//! * [`json`] — canonical JSON primitives shared by all report serializers.
//! * [`reduce`] — order-pinned f64 reduction ([`reduce::ordered_sum`]);
//!   the only sanctioned way to fold floats in experiment code (lint `C2`).
//! * [`log`] — the anonymized greylist-log analyzer that reconstructs
//!   per-triplet delivery delays (the paper's university-deployment
//!   methodology behind Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
pub mod ci;
mod hist;
pub mod json;
pub mod log;
pub mod plot;
pub mod reduce;
mod series;
mod stats;
mod table;

pub use cdf::Cdf;
pub use hist::Histogram;
pub use series::Series;
pub use stats::Summary;
pub use table::{AsciiTable, Table};

use spamward_sim::SimDuration;

/// Formats a duration as Table III's `min:sec` notation (e.g. `434:46`).
pub fn fmt_min_sec(d: SimDuration) -> String {
    let total = d.as_secs();
    format!("{}:{:02}", total / 60, total % 60)
}

/// Parses Table III's `min:sec` notation back into a duration.
pub fn parse_min_sec(s: &str) -> Option<SimDuration> {
    let (m, sec) = s.split_once(':')?;
    let m: u64 = m.trim().parse().ok()?;
    let sec: u64 = sec.trim().parse().ok()?;
    if sec >= 60 {
        return None;
    }
    Some(SimDuration::from_secs(m * 60 + sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_sec_roundtrip() {
        let d = SimDuration::from_secs(434 * 60 + 46);
        assert_eq!(fmt_min_sec(d), "434:46");
        assert_eq!(parse_min_sec("434:46"), Some(d));
        assert_eq!(fmt_min_sec(SimDuration::from_secs(62)), "1:02");
    }

    #[test]
    fn parse_min_sec_rejects_bad_input() {
        assert_eq!(parse_min_sec("nope"), None);
        assert_eq!(parse_min_sec("1:99"), None);
        assert_eq!(parse_min_sec("1:xx"), None);
    }
}
