//! Anonymized greylist-log analysis (the Fig. 5 methodology).
//!
//! The university dataset gives, per greylisted message, only the
//! timestamps of its delivery attempts and an opaque identity. This module
//! reconstructs what the paper plots from exactly that information:
//!
//! * the *delivery delay* of each eventually-accepted message — time from
//!   its first (deferred) attempt to its accepting attempt;
//! * per-message attempt counts and inter-attempt gaps;
//! * the set of messages that were never delivered (sender gave up).
//!
//! The entry format is the one `spamward-mta` emits
//! (`"<secs>.<micros> <event> key=<hex>"`); parsing is replicated here so
//! a log written to disk can be analyzed with no dependency on the MTA
//! crate.

use crate::cdf::Cdf;
use serde::{Deserialize, Serialize};
use spamward_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One parsed log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Event timestamp.
    pub at: SimTime,
    /// Event kind (the subset analysis needs).
    pub kind: LogKind,
    /// Opaque message/triplet identity.
    pub key: u64,
}

/// The log event kinds the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogKind {
    /// The attempt was deferred (greylisted).
    Deferred,
    /// The attempt passed greylisting.
    Passed,
    /// The message was accepted and stored.
    Accepted,
    /// Any other event (whitelisted, unknown recipient, ...).
    Other,
}

/// Parses one log line in the shared text format.
///
/// Unknown event strings parse as [`LogKind::Other`]; structurally broken
/// lines return `None`.
pub fn parse_log_line(line: &str) -> Option<LogRecord> {
    let mut parts = line.split_whitespace();
    let ts = parts.next()?;
    let event = parts.next()?;
    let key = parts.next()?.strip_prefix("key=")?;
    let (secs, micros) = ts.split_once('.')?;
    let at =
        SimTime::from_micros(secs.parse::<u64>().ok()? * 1_000_000 + micros.parse::<u64>().ok()?);
    let key = u64::from_str_radix(key, 16).ok()?;
    let kind = match event {
        "greylisted" => LogKind::Deferred,
        "passed" => LogKind::Passed,
        "accepted" => LogKind::Accepted,
        _ => LogKind::Other,
    };
    Some(LogRecord { at, kind, key })
}

/// Per-message reconstruction from the anonymized log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTimeline {
    /// The opaque identity.
    pub key: u64,
    /// Timestamps of every observed attempt, in order.
    pub attempts: Vec<SimTime>,
    /// When the message was finally accepted, if ever.
    pub accepted_at: Option<SimTime>,
}

impl MessageTimeline {
    /// Delay from first attempt to acceptance (the Fig. 5 quantity).
    pub fn delivery_delay(&self) -> Option<SimDuration> {
        let first = *self.attempts.first()?;
        Some(self.accepted_at?.elapsed_since(first))
    }

    /// Gaps between consecutive attempts (retry intervals of the sender).
    pub fn retry_gaps(&self) -> Vec<SimDuration> {
        self.attempts.windows(2).map(|w| w[1].elapsed_since(w[0])).collect()
    }
}

/// The Fig. 5 analyzer: feeds on log records, produces delay CDFs.
///
/// # Example
///
/// ```
/// use spamward_analysis::log::{GreylistLogAnalysis, parse_log_line};
///
/// let log = "\
/// 100.000000 greylisted key=00000000000000aa
/// 500.000000 passed key=00000000000000aa
/// 500.000000 accepted key=00000000000000aa
/// ";
/// let analysis = GreylistLogAnalysis::from_lines(log.lines());
/// assert_eq!(analysis.delivered().count(), 1);
/// let delays = analysis.delivery_delays();
/// assert_eq!(delays[0].as_secs(), 400);
/// # let _ = parse_log_line("1.0 accepted key=00");
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreylistLogAnalysis {
    timelines: BTreeMap<u64, MessageTimeline>,
    malformed: usize,
}

impl GreylistLogAnalysis {
    /// Builds the analysis from parsed records.
    pub fn from_records(records: impl IntoIterator<Item = LogRecord>) -> Self {
        let mut timelines: BTreeMap<u64, MessageTimeline> = BTreeMap::new();
        for r in records {
            let tl = timelines.entry(r.key).or_insert_with(|| MessageTimeline {
                key: r.key,
                attempts: Vec::new(),
                accepted_at: None,
            });
            match r.kind {
                LogKind::Deferred | LogKind::Passed => tl.attempts.push(r.at),
                LogKind::Accepted => {
                    if tl.accepted_at.is_none() {
                        tl.accepted_at = Some(r.at);
                    }
                }
                LogKind::Other => {}
            }
        }
        GreylistLogAnalysis { timelines, malformed: 0 }
    }

    /// Builds the analysis from raw text lines, counting malformed ones.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Self {
        let mut records = Vec::new();
        let mut malformed = 0;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_log_line(line) {
                Some(r) => records.push(r),
                None => malformed += 1,
            }
        }
        let mut out = Self::from_records(records);
        out.malformed = malformed;
        out
    }

    /// Lines that failed to parse.
    pub fn malformed(&self) -> usize {
        self.malformed
    }

    /// Number of distinct message identities seen.
    pub fn len(&self) -> usize {
        self.timelines.len()
    }

    /// Whether the log was empty.
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }

    /// Timelines that ended in acceptance.
    pub fn delivered(&self) -> impl Iterator<Item = &MessageTimeline> {
        self.timelines.values().filter(|t| t.accepted_at.is_some())
    }

    /// Timelines whose sender gave up (greylisted, never accepted).
    pub fn abandoned(&self) -> impl Iterator<Item = &MessageTimeline> {
        self.timelines.values().filter(|t| t.accepted_at.is_none() && !t.attempts.is_empty())
    }

    /// Delivery delays of all delivered messages (unordered).
    pub fn delivery_delays(&self) -> Vec<SimDuration> {
        self.delivered().filter_map(MessageTimeline::delivery_delay).collect()
    }

    /// The delivery-delay CDF — Fig. 5 (or Fig. 3, fed with bot logs).
    pub fn delay_cdf(&self) -> Cdf {
        Cdf::from_durations(self.delivery_delays())
    }

    /// Fraction of messages whose senders gave up before delivery.
    pub fn abandonment_rate(&self) -> f64 {
        if self.timelines.is_empty() {
            return 0.0;
        }
        self.abandoned().count() as f64 / self.timelines.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_secs: u64, kind: LogKind, key: u64) -> LogRecord {
        LogRecord { at: SimTime::from_secs(at_secs), kind, key }
    }

    #[test]
    fn parse_matches_mta_format() {
        let r = parse_log_line("1234.567890 greylisted key=00000000000000ff").unwrap();
        assert_eq!(r.at, SimTime::from_micros(1_234_567_890));
        assert_eq!(r.kind, LogKind::Deferred);
        assert_eq!(r.key, 0xff);
        assert_eq!(parse_log_line("1.000000 whitelisted key=01").unwrap().kind, LogKind::Other);
        assert_eq!(parse_log_line("garbage"), None);
    }

    #[test]
    fn reconstructs_delivery_delay() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(100, LogKind::Deferred, 1),
            rec(250, LogKind::Deferred, 1),
            rec(500, LogKind::Passed, 1),
            rec(500, LogKind::Accepted, 1),
        ]);
        let tl = a.delivered().next().unwrap();
        assert_eq!(tl.attempts.len(), 3);
        assert_eq!(tl.delivery_delay(), Some(SimDuration::from_secs(400)));
        assert_eq!(tl.retry_gaps(), vec![SimDuration::from_secs(150), SimDuration::from_secs(250)]);
    }

    #[test]
    fn distinguishes_abandoned() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(100, LogKind::Deferred, 1),
            rec(500, LogKind::Passed, 1),
            rec(500, LogKind::Accepted, 1),
            rec(200, LogKind::Deferred, 2), // never retried
        ]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.delivered().count(), 1);
        assert_eq!(a.abandoned().count(), 1);
        assert_eq!(a.abandonment_rate(), 0.5);
    }

    #[test]
    fn cdf_over_delays() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(0, LogKind::Deferred, 1),
            rec(300, LogKind::Accepted, 1),
            rec(0, LogKind::Deferred, 2),
            rec(600, LogKind::Accepted, 2),
        ]);
        let cdf = a.delay_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.fraction_at_or_below(300.0), 0.5);
    }

    #[test]
    fn from_lines_counts_malformed() {
        let text = "0.000000 greylisted key=01\nnot a line\n\n1.000000 accepted key=01\n";
        let a = GreylistLogAnalysis::from_lines(text.lines());
        assert_eq!(a.malformed(), 1);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn accepted_without_attempts_has_no_delay() {
        // Whitelisted mail is accepted with no greylist attempt records.
        let a = GreylistLogAnalysis::from_records(vec![rec(50, LogKind::Accepted, 9)]);
        assert_eq!(a.delivered().count(), 1);
        assert!(a.delivery_delays().is_empty());
    }
}
