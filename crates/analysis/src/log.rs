//! Anonymized greylist-log analysis (the Fig. 5 methodology).
//!
//! The university dataset gives, per greylisted message, only the
//! timestamps of its delivery attempts and an opaque identity. This module
//! reconstructs what the paper plots from exactly that information:
//!
//! * the *delivery delay* of each eventually-accepted message — time from
//!   its first (deferred) attempt to its accepting attempt;
//! * per-message attempt counts and inter-attempt gaps;
//! * the set of messages that were never delivered (sender gave up).
//!
//! The entry format is the one `spamward-mta` emits
//! (`"<secs>.<micros> <event> key=<hex>"`); parsing is replicated here so
//! a log written to disk can be analyzed with no dependency on the MTA
//! crate.

use crate::cdf::Cdf;
use serde::{Deserialize, Serialize};
use spamward_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// One parsed log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Event timestamp.
    pub at: SimTime,
    /// Event kind (the subset analysis needs).
    pub kind: LogKind,
    /// Opaque message/triplet identity.
    pub key: u64,
}

/// The log event kinds the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogKind {
    /// The attempt was deferred (greylisted).
    Deferred,
    /// The attempt passed greylisting.
    Passed,
    /// The message was accepted and stored.
    Accepted,
    /// Any other event (whitelisted, unknown recipient, ...).
    Other,
}

/// Why one log line could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogParseReason {
    /// The named whitespace-separated field is absent.
    MissingField(&'static str),
    /// The leading `<secs>.<micros>` timestamp is malformed.
    BadTimestamp,
    /// The trailing `key=<hex>` field is malformed.
    BadKey,
}

impl fmt::Display for LogParseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogParseReason::MissingField(name) => write!(f, "missing {name} field"),
            LogParseReason::BadTimestamp => write!(f, "malformed <secs>.<micros> timestamp"),
            LogParseReason::BadKey => write!(f, "malformed key=<hex> field"),
        }
    }
}

/// A malformed log line: the typed rejection [`GreylistLogAnalysis::from_lines`]
/// and [`parse_log_line_strict`] report instead of silently skipping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogParseError {
    /// 1-based line number within the parsed text; 0 when a line was parsed
    /// outside a multi-line context.
    pub line_no: usize,
    /// The offending line, verbatim.
    pub line: String,
    /// What was wrong with it.
    pub reason: LogParseReason,
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log line {}: {} in {:?}", self.line_no, self.reason, self.line)
    }
}

impl std::error::Error for LogParseError {}

/// Parses one log line in the shared text format, reporting *why* a
/// malformed line was rejected.
///
/// Unknown event strings still parse as [`LogKind::Other`] — the format is
/// extensible — but structural damage (missing fields, broken timestamp or
/// key) is a typed error. The returned error carries `line_no: 0`; callers
/// iterating a file fill in the position.
pub fn parse_log_line_strict(line: &str) -> Result<LogRecord, LogParseError> {
    let fail = |reason| LogParseError { line_no: 0, line: line.to_owned(), reason };
    let mut parts = line.split_whitespace();
    let ts = parts.next().ok_or_else(|| fail(LogParseReason::MissingField("timestamp")))?;
    let event = parts.next().ok_or_else(|| fail(LogParseReason::MissingField("event")))?;
    let key = parts
        .next()
        .and_then(|f| f.strip_prefix("key="))
        .ok_or_else(|| fail(LogParseReason::MissingField("key=")))?;
    let (secs, micros) = ts.split_once('.').ok_or_else(|| fail(LogParseReason::BadTimestamp))?;
    let at = match (secs.parse::<u64>(), micros.parse::<u64>()) {
        (Ok(s), Ok(us)) => SimTime::from_micros(s * 1_000_000 + us),
        _ => return Err(fail(LogParseReason::BadTimestamp)),
    };
    let key = u64::from_str_radix(key, 16).map_err(|_| fail(LogParseReason::BadKey))?;
    let kind = match event {
        "greylisted" => LogKind::Deferred,
        "passed" => LogKind::Passed,
        "accepted" => LogKind::Accepted,
        _ => LogKind::Other,
    };
    Ok(LogRecord { at, kind, key })
}

/// Parses one log line, mapping any malformed line to `None`.
///
/// Unknown event strings parse as [`LogKind::Other`]; use
/// [`parse_log_line_strict`] to learn why a line was rejected.
pub fn parse_log_line(line: &str) -> Option<LogRecord> {
    parse_log_line_strict(line).ok()
}

/// Per-message reconstruction from the anonymized log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTimeline {
    /// The opaque identity.
    pub key: u64,
    /// Timestamps of every observed attempt, in order.
    pub attempts: Vec<SimTime>,
    /// When the message was finally accepted, if ever.
    pub accepted_at: Option<SimTime>,
}

impl MessageTimeline {
    /// Delay from first attempt to acceptance (the Fig. 5 quantity).
    pub fn delivery_delay(&self) -> Option<SimDuration> {
        let first = *self.attempts.first()?;
        Some(self.accepted_at?.elapsed_since(first))
    }

    /// Gaps between consecutive attempts (retry intervals of the sender).
    pub fn retry_gaps(&self) -> Vec<SimDuration> {
        self.attempts.windows(2).map(|w| w[1].elapsed_since(w[0])).collect()
    }
}

/// The Fig. 5 analyzer: feeds on log records, produces delay CDFs.
///
/// # Example
///
/// ```
/// use spamward_analysis::log::{GreylistLogAnalysis, parse_log_line};
///
/// let log = "\
/// 100.000000 greylisted key=00000000000000aa
/// 500.000000 passed key=00000000000000aa
/// 500.000000 accepted key=00000000000000aa
/// ";
/// let analysis = GreylistLogAnalysis::from_lines(log.lines()).expect("well-formed log");
/// assert_eq!(analysis.delivered().count(), 1);
/// let delays = analysis.delivery_delays();
/// assert_eq!(delays[0].as_secs(), 400);
/// # let _ = parse_log_line("1.0 accepted key=00");
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreylistLogAnalysis {
    timelines: BTreeMap<u64, MessageTimeline>,
    malformed: usize,
}

impl GreylistLogAnalysis {
    /// Builds the analysis from parsed records.
    pub fn from_records(records: impl IntoIterator<Item = LogRecord>) -> Self {
        let mut timelines: BTreeMap<u64, MessageTimeline> = BTreeMap::new();
        for r in records {
            let tl = timelines.entry(r.key).or_insert_with(|| MessageTimeline {
                key: r.key,
                attempts: Vec::new(),
                accepted_at: None,
            });
            match r.kind {
                LogKind::Deferred | LogKind::Passed => tl.attempts.push(r.at),
                LogKind::Accepted => {
                    if tl.accepted_at.is_none() {
                        tl.accepted_at = Some(r.at);
                    }
                }
                LogKind::Other => {}
            }
        }
        GreylistLogAnalysis { timelines, malformed: 0 }
    }

    /// Builds the analysis from raw text lines, rejecting the first
    /// malformed line with a typed [`LogParseError`] (blank lines are
    /// allowed and skipped).
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self, LogParseError> {
        let mut records = Vec::new();
        for (idx, line) in lines.into_iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_log_line_strict(line) {
                Ok(r) => records.push(r),
                Err(mut e) => {
                    e.line_no = idx + 1;
                    return Err(e);
                }
            }
        }
        Ok(Self::from_records(records))
    }

    /// Builds the analysis from raw text lines, counting (and skipping)
    /// malformed ones — for real-world logs where damage is expected.
    pub fn from_lines_lossy<'a>(lines: impl IntoIterator<Item = &'a str>) -> Self {
        let mut records = Vec::new();
        let mut malformed = 0;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match parse_log_line(line) {
                Some(r) => records.push(r),
                None => malformed += 1,
            }
        }
        let mut out = Self::from_records(records);
        out.malformed = malformed;
        out
    }

    /// Lines [`from_lines_lossy`](Self::from_lines_lossy) failed to parse
    /// (always 0 for the strict constructors).
    pub fn malformed(&self) -> usize {
        self.malformed
    }

    /// Number of distinct message identities seen.
    pub fn len(&self) -> usize {
        self.timelines.len()
    }

    /// Whether the log was empty.
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }

    /// Timelines that ended in acceptance.
    pub fn delivered(&self) -> impl Iterator<Item = &MessageTimeline> {
        self.timelines.values().filter(|t| t.accepted_at.is_some())
    }

    /// Timelines whose sender gave up (greylisted, never accepted).
    pub fn abandoned(&self) -> impl Iterator<Item = &MessageTimeline> {
        self.timelines.values().filter(|t| t.accepted_at.is_none() && !t.attempts.is_empty())
    }

    /// Delivery delays of all delivered messages (unordered).
    pub fn delivery_delays(&self) -> Vec<SimDuration> {
        self.delivered().filter_map(MessageTimeline::delivery_delay).collect()
    }

    /// The delivery-delay CDF — Fig. 5 (or Fig. 3, fed with bot logs).
    pub fn delay_cdf(&self) -> Cdf {
        Cdf::from_durations(self.delivery_delays())
    }

    /// Fraction of messages whose senders gave up before delivery.
    pub fn abandonment_rate(&self) -> f64 {
        if self.timelines.is_empty() {
            return 0.0;
        }
        self.abandoned().count() as f64 / self.timelines.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_secs: u64, kind: LogKind, key: u64) -> LogRecord {
        LogRecord { at: SimTime::from_secs(at_secs), kind, key }
    }

    #[test]
    fn parse_matches_mta_format() {
        let r = parse_log_line("1234.567890 greylisted key=00000000000000ff").unwrap();
        assert_eq!(r.at, SimTime::from_micros(1_234_567_890));
        assert_eq!(r.kind, LogKind::Deferred);
        assert_eq!(r.key, 0xff);
        assert_eq!(parse_log_line("1.000000 whitelisted key=01").unwrap().kind, LogKind::Other);
        assert_eq!(parse_log_line("garbage"), None);
    }

    #[test]
    fn reconstructs_delivery_delay() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(100, LogKind::Deferred, 1),
            rec(250, LogKind::Deferred, 1),
            rec(500, LogKind::Passed, 1),
            rec(500, LogKind::Accepted, 1),
        ]);
        let tl = a.delivered().next().unwrap();
        assert_eq!(tl.attempts.len(), 3);
        assert_eq!(tl.delivery_delay(), Some(SimDuration::from_secs(400)));
        assert_eq!(tl.retry_gaps(), vec![SimDuration::from_secs(150), SimDuration::from_secs(250)]);
    }

    #[test]
    fn distinguishes_abandoned() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(100, LogKind::Deferred, 1),
            rec(500, LogKind::Passed, 1),
            rec(500, LogKind::Accepted, 1),
            rec(200, LogKind::Deferred, 2), // never retried
        ]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.delivered().count(), 1);
        assert_eq!(a.abandoned().count(), 1);
        assert_eq!(a.abandonment_rate(), 0.5);
    }

    #[test]
    fn cdf_over_delays() {
        let a = GreylistLogAnalysis::from_records(vec![
            rec(0, LogKind::Deferred, 1),
            rec(300, LogKind::Accepted, 1),
            rec(0, LogKind::Deferred, 2),
            rec(600, LogKind::Accepted, 2),
        ]);
        let cdf = a.delay_cdf();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.fraction_at_or_below(300.0), 0.5);
    }

    #[test]
    fn from_lines_lossy_counts_malformed() {
        let text = "0.000000 greylisted key=01\nnot a line\n\n1.000000 accepted key=01\n";
        let a = GreylistLogAnalysis::from_lines_lossy(text.lines());
        assert_eq!(a.malformed(), 1);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn from_lines_rejects_malformed_with_position() {
        let text = "0.000000 greylisted key=01\n\nnot a line\n1.000000 accepted key=01\n";
        let err = GreylistLogAnalysis::from_lines(text.lines()).unwrap_err();
        assert_eq!(err.line_no, 3, "1-based, blank line still counted");
        assert_eq!(err.line, "not a line");
        assert_eq!(err.reason, LogParseReason::MissingField("key="));
        assert!(err.to_string().contains("log line 3"));

        let ok = GreylistLogAnalysis::from_lines("0.000000 greylisted key=01\n".lines())
            .expect("well-formed log parses");
        assert_eq!(ok.malformed(), 0);
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn strict_parse_reports_reasons() {
        let reason = |l: &str| parse_log_line_strict(l).unwrap_err().reason;
        assert_eq!(reason(""), LogParseReason::MissingField("timestamp"));
        assert_eq!(reason("1.000000"), LogParseReason::MissingField("event"));
        assert_eq!(reason("1.000000 accepted"), LogParseReason::MissingField("key="));
        assert_eq!(reason("1.000000 accepted id=01"), LogParseReason::MissingField("key="));
        assert_eq!(reason("1 accepted key=01"), LogParseReason::BadTimestamp);
        assert_eq!(reason("x.000000 accepted key=01"), LogParseReason::BadTimestamp);
        assert_eq!(reason("1.000000 accepted key=zz"), LogParseReason::BadKey);
        assert!(parse_log_line_strict("1.000000 accepted key=01").is_ok());
    }

    #[test]
    fn accepted_without_attempts_has_no_delay() {
        // Whitelisted mail is accepted with no greylist attempt records.
        let a = GreylistLogAnalysis::from_records(vec![rec(50, LogKind::Accepted, 9)]);
        assert_eq!(a.delivered().count(), 1);
        assert!(a.delivery_delays().is_empty());
    }
}
