//! Five-number summaries.

use crate::cdf::Cdf;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`; `None` when empty (after dropping NaNs).
    pub fn of(samples: &[f64]) -> Option<Summary> {
        let cdf = Cdf::from_samples(samples.to_vec());
        if cdf.is_empty() {
            return None;
        }
        let clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        let mean = crate::reduce::ordered_sum(clean.iter().copied()) / clean.len() as f64;
        Some(Summary {
            n: cdf.len(),
            mean,
            min: cdf.min(),
            p10: cdf.quantile(0.10),
            median: cdf.quantile(0.50),
            p90: cdf.quantile(0.90),
            max: cdf.max(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} p10={:.2} median={:.2} p90={:.2} max={:.2}",
            self.n, self.mean, self.min, self.p10, self.median, self.p90, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_set() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p10, 10.0);
        assert_eq!(s.p90, 90.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_nan_only() {
        assert_eq!(Summary::of(&[]), None);
        assert_eq!(Summary::of(&[f64::NAN]), None);
    }

    #[test]
    fn display_readable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=3"));
        assert!(out.contains("median=2.00"));
    }
}
