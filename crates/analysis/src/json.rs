//! Canonical JSON fragments for experiment reports.
//!
//! The harness pins report bytes in tests and CI golden files, so the JSON
//! encoding must be *canonical*: fixed key order (callers emit keys
//! explicitly), shortest-roundtrip float formatting, and deterministic
//! string escaping. This module provides the two primitives every
//! serializer shares; there is no parser — snapshots are compared as bytes.

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a canonical JSON number.
///
/// Uses Rust's shortest-roundtrip rendering (deterministic across
/// platforms); non-finite values, which JSON cannot represent, become
/// `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders an iterator of already-encoded JSON values as an array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Escapes one CSV field: fields containing a comma, quote or newline are
/// quoted with internal quotes doubled (RFC 4180).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_canonically() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("±µ"), "\"±µ\"");
    }

    #[test]
    fn floats_are_shortest_roundtrip_or_null() {
        assert_eq!(json_f64(1.0), "1");
        assert_eq!(json_f64(56.69), "56.69");
        assert_eq!(json_f64(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn arrays_join_without_trailing_comma() {
        assert_eq!(json_array(vec![]), "[]");
        assert_eq!(json_array(vec!["1".into(), "2".into()]), "[1,2]");
    }

    #[test]
    fn csv_fields_quote_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
