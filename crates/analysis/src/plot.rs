//! Terminal rendering of the paper's figures.
//!
//! The `repro` harness prints into a terminal, so the figures need an
//! honest text form: a CDF as a step-curve grid (Figs. 3 and 5) and a
//! histogram as horizontal bars (the peak structure of Fig. 4).

use crate::cdf::Cdf;
use crate::hist::Histogram;

/// Renders a CDF as an ASCII curve of `width`×`height` characters plus
/// axis labels. Empty CDFs render a placeholder line.
///
/// # Example
///
/// ```
/// use spamward_analysis::{Cdf, plot};
/// let cdf = Cdf::from_samples((1..=100).map(f64::from).collect());
/// let art = plot::ascii_cdf(&cdf, 40, 10);
/// assert!(art.contains('#'));
/// assert!(art.contains("100%"));
/// ```
pub fn ascii_cdf(cdf: &Cdf, width: usize, height: usize) -> String {
    let width = width.max(8);
    let height = height.max(4);
    if cdf.is_empty() {
        return "(no samples)\n".to_owned();
    }
    let lo = cdf.min();
    let hi = cdf.max();
    let span = (hi - lo).max(f64::EPSILON);

    // One column per x position, holding F(x) ∈ [0,1].
    let columns: Vec<f64> = (0..width)
        .map(|i| cdf.fraction_at_or_below(lo + span * i as f64 / (width - 1) as f64))
        .collect();

    let mut out = String::new();
    for row in 0..height {
        // Row 0 is the top (F = 1.0).
        let upper = 1.0 - row as f64 / height as f64;
        let lower = 1.0 - (row as f64 + 1.0) / height as f64;
        let label = if row == 0 {
            "100% |"
        } else if row == height / 2 {
            " 50% |"
        } else {
            "     |"
        };
        out.push_str(label);
        for &f in &columns {
            out.push(if f >= upper {
                '#'
            } else if f > lower {
                ':'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out.push_str("     +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("      {:<w$.0}{:>8.0}\n", lo, hi, w = width.saturating_sub(8)));
    out
}

/// Renders a histogram as horizontal bars, one row per bin, bar length
/// proportional to the bin count. Bins outside the range are summarized.
pub fn ascii_histogram(hist: &Histogram, bar_width: usize) -> String {
    let bar_width = bar_width.max(8);
    let max_count = (0..hist.bins()).map(|i| hist.count(i)).max().unwrap_or(0);
    let mut out = String::new();
    if max_count == 0 {
        return "(no samples in range)\n".to_owned();
    }
    for i in 0..hist.bins() {
        let count = hist.count(i);
        let (lo, hi) = hist.bin_edges(i);
        let len = ((count as f64 / max_count as f64) * bar_width as f64).round() as usize;
        out.push_str(&format!(
            "[{lo:>9.0}, {hi:>9.0})  {:<w$} {count}\n",
            "#".repeat(len),
            w = bar_width
        ));
    }
    if hist.underflow() > 0 || hist.overflow() > 0 {
        out.push_str(&format!(
            "(out of range: {} below, {} above)\n",
            hist.underflow(),
            hist.overflow()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_curve_is_monotone_left_to_right() {
        let cdf = Cdf::from_samples((0..1000).map(f64::from).collect());
        let art = ascii_cdf(&cdf, 30, 8);
        let rows: Vec<&str> = art.lines().collect();
        // Top row ends full, bottom data row starts sparse.
        assert!(rows[0].starts_with("100% |"));
        assert!(rows[0].ends_with('#'));
        assert!(art.contains(" 50% |"));
        // Axis present.
        assert!(rows[8].contains('+'));
    }

    #[test]
    fn empty_cdf_renders_placeholder() {
        assert_eq!(ascii_cdf(&Cdf::from_samples(vec![]), 20, 5), "(no samples)\n");
    }

    #[test]
    fn degenerate_single_value() {
        let cdf = Cdf::from_samples(vec![42.0, 42.0]);
        let art = ascii_cdf(&cdf, 12, 4);
        // All mass at one point: the whole grid is filled at 100%.
        assert!(art.lines().next().unwrap().ends_with(&"#".repeat(12)));
    }

    #[test]
    fn histogram_bars_scale() {
        let mut h = Histogram::linear(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 1.6, 1.7, 1.8, 3.5]);
        let art = ascii_histogram(&h, 10);
        let lines: Vec<&str> = art.lines().collect();
        // Bin 1 (4 samples) has the longest bar.
        let count_hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert!(count_hashes(lines[1]) > count_hashes(lines[0]));
        assert!(count_hashes(lines[1]) == 10, "max bin fills the bar width");
        assert!(lines[1].ends_with('4'));
    }

    #[test]
    fn histogram_reports_out_of_range() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.extend([0.5, -4.0, 9.0]);
        let art = ascii_histogram(&h, 8);
        assert!(art.contains("1 below, 1 above"));
    }

    #[test]
    fn empty_histogram_placeholder() {
        let h = Histogram::linear(0.0, 1.0, 2);
        assert_eq!(ascii_histogram(&h, 8), "(no samples in range)\n");
    }
}
