//! Named `(x, y)` series with CSV export.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points — one curve of a figure.
///
/// # Example
///
/// ```
/// use spamward_analysis::Series;
/// let s = Series::new("cdf-300s", vec![(0.0, 0.0), (300.0, 0.5)]);
/// let csv = Series::to_csv(&[s]);
/// assert!(csv.starts_with("series,x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Curve label.
    pub name: String,
    /// The points, in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.to_owned(), points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders several series as long-format CSV
    /// (`series,x,y` header then one line per point).
    pub fn to_csv(series: &[Series]) -> String {
        let mut out = String::from("series,x,y\n");
        for s in series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.name));
            }
        }
        out
    }

    /// Renders the series as a canonical JSON object:
    /// `{"name":...,"points":[[x,y],...]}`. Point coordinates use
    /// shortest-roundtrip float formatting (non-finite values become
    /// `null`), so bytes are deterministic across runs and platforms.
    pub fn to_json(&self) -> String {
        use crate::json::{json_array, json_f64, json_string};
        let points = json_array(
            self.points.iter().map(|&(x, y)| format!("[{},{}]", json_f64(x), json_f64(y))),
        );
        format!("{{\"name\":{},\"points\":{points}}}", json_string(&self.name))
    }

    /// Parses the long-format CSV produced by [`Series::to_csv`].
    ///
    /// Returns `None` on a malformed header or row.
    pub fn from_csv(csv: &str) -> Option<Vec<Series>> {
        let mut lines = csv.lines();
        if lines.next()? != "series,x,y" {
            return None;
        }
        let mut out: Vec<Series> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let name = parts.next()?;
            let x: f64 = parts.next()?.parse().ok()?;
            let y: f64 = parts.next()?.parse().ok()?;
            match out.last_mut() {
                Some(s) if s.name == name => s.points.push((x, y)),
                _ => out.push(Series::new(name, vec![(x, y)])),
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let a = Series::new("a", vec![(1.0, 0.5), (2.0, 1.0)]);
        let b = Series::new("b", vec![(3.0, 0.25)]);
        let csv = Series::to_csv(&[a.clone(), b.clone()]);
        let parsed = Series::from_csv(&csv).unwrap();
        assert_eq!(parsed, vec![a, b]);
    }

    #[test]
    fn from_csv_rejects_bad_input() {
        assert_eq!(Series::from_csv("wrong,header\n"), None);
        assert_eq!(Series::from_csv("series,x,y\nname,notanumber,1\n"), None);
        assert_eq!(Series::from_csv(""), None);
    }

    #[test]
    fn json_is_canonical() {
        let s = Series::new("cdf-300s", vec![(0.0, 0.5), (300.0, 1.0)]);
        assert_eq!(s.to_json(), "{\"name\":\"cdf-300s\",\"points\":[[0,0.5],[300,1]]}");
        let nan = Series::new("n", vec![(f64::NAN, 1.0)]);
        assert_eq!(nan.to_json(), "{\"name\":\"n\",\"points\":[[null,1]]}");
    }

    #[test]
    fn empty_series_renders_header_only() {
        let csv = Series::to_csv(&[]);
        assert_eq!(csv, "series,x,y\n");
        assert_eq!(Series::from_csv(&csv).unwrap(), vec![]);
        let s = Series::new("x", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
