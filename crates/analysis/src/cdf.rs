//! Empirical cumulative distribution functions.

use serde::{Deserialize, Serialize};
use spamward_sim::SimDuration;

/// An empirical CDF over `f64` samples.
///
/// # Example
///
/// ```
/// use spamward_analysis::Cdf;
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Cdf { sorted: samples }
    }

    /// Builds a CDF over durations, in seconds.
    pub fn from_durations(durations: impl IntoIterator<Item = SimDuration>) -> Self {
        Self::from_samples(durations.into_iter().map(|d| d.as_secs_f64()).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of samples `<= x` (0.0 for an empty CDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (nearest-rank), e.g. `quantile(0.5)` is the median.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)]
    }

    /// The sample minimum.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty CDF")
    }

    /// The sample maximum.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty CDF")
    }

    /// `n` evenly spaced `(x, F(x))` points for plotting (includes both
    /// endpoints). Empty CDFs yield no points.
    pub fn to_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.min(), self.max());
        if n == 1 || lo == hi {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// Maximum absolute difference between two CDFs over both sample sets
    /// (two-sample Kolmogorov–Smirnov statistic) — used to assert that the
    /// 5 s and 300 s Kelihos curves of Fig. 3 "almost coincide".
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let diff = (self.fraction_at_or_below(x) - other.fraction_at_or_below(x)).abs();
            d = d.max(diff);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_fractions() {
        let cdf = Cdf::from_samples(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(10.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(25.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 5.0);
    }

    #[test]
    fn nan_dropped_and_unsorted_ok() {
        let cdf = Cdf::from_samples(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.quantile(0.5), 2.0);
    }

    #[test]
    fn durations_in_seconds() {
        let cdf = Cdf::from_durations(vec![SimDuration::from_mins(5), SimDuration::from_mins(10)]);
        assert_eq!(cdf.fraction_at_or_below(300.0), 0.5);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.to_points(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = Cdf::from_samples(vec![]).quantile(0.5);
    }

    #[test]
    fn plotting_points_monotone() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from).collect());
        let pts = cdf.to_points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn identical_cdfs_have_zero_ks() {
        let a = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        let b = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
        let c = Cdf::from_samples(vec![10.0, 20.0, 30.0]);
        assert_eq!(a.ks_distance(&c), 1.0);
    }

    proptest! {
        #[test]
        fn prop_fraction_is_monotone(mut xs in proptest::collection::vec(0.0f64..1e6, 2..50)) {
            let cdf = Cdf::from_samples(xs.clone());
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in xs {
                let f = cdf.fraction_at_or_below(x);
                prop_assert!(f >= prev);
                prev = f;
            }
        }

        #[test]
        fn prop_quantile_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..50), q in 0.0f64..=1.0) {
            let cdf = Cdf::from_samples(xs);
            let v = cdf.quantile(q);
            prop_assert!(v >= cdf.min() && v <= cdf.max());
        }
    }
}
