//! Confidence intervals over repeated (multi-seed) runs.
//!
//! The paper reports point estimates from single measurements; the
//! simulator can do better — every experiment re-runs under fresh seeds,
//! and this module summarizes the spread so EXPERIMENTS.md can state
//! mean ± CI instead of one number.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean with a normal-approximation confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Number of runs.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std_dev: f64,
    /// Half-width of the interval at the chosen confidence.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// 95% CI over `samples` (z = 1.96 normal approximation — fine for the
    /// ≥10 seeds the experiments use). NaNs are dropped.
    ///
    /// Returns `None` for fewer than two valid samples.
    pub fn ci95(samples: &[f64]) -> Option<ConfidenceInterval> {
        Self::with_z(samples, 1.96)
    }

    /// CI with an explicit z-score.
    ///
    /// Returns `None` for fewer than two valid samples.
    pub fn with_z(samples: &[f64], z: f64) -> Option<ConfidenceInterval> {
        let clean: Vec<f64> = samples.iter().copied().filter(|v| !v.is_nan()).collect();
        if clean.len() < 2 {
            return None;
        }
        let n = clean.len();
        let mean = crate::reduce::ordered_sum(clean.iter().copied()) / n as f64;
        let var =
            crate::reduce::ordered_sum(clean.iter().map(|v| (v - mean).powi(2))) / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let half_width = z * std_dev / (n as f64).sqrt();
        Some(ConfidenceInterval { n, mean, std_dev, half_width })
    }

    /// The interval's lower edge.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// The interval's upper edge.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3} (n={})", self.mean, self.half_width, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Samples 1..=5: mean 3, sd sqrt(2.5).
        let ci = ConfidenceInterval::ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(ci.n, 5);
        assert!((ci.mean - 3.0).abs() < 1e-12);
        assert!((ci.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
        let expected_hw = 1.96 * 2.5f64.sqrt() / 5f64.sqrt();
        assert!((ci.half_width - expected_hw).abs() < 1e-12);
        assert!(ci.contains(3.0));
        assert!(!ci.contains(10.0));
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let ci = ConfidenceInterval::ci95(&[7.0; 10]).unwrap();
        assert_eq!(ci.std_dev, 0.0);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(7.0));
    }

    #[test]
    fn too_few_samples() {
        assert_eq!(ConfidenceInterval::ci95(&[]), None);
        assert_eq!(ConfidenceInterval::ci95(&[1.0]), None);
        assert_eq!(ConfidenceInterval::ci95(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn display_form() {
        let ci = ConfidenceInterval::ci95(&[1.0, 2.0, 3.0]).unwrap();
        let s = ci.to_string();
        assert!(s.contains("2.000 ±"));
        assert!(s.contains("n=3"));
    }
}
