//! IPv4 address allocation helpers.

use std::net::Ipv4Addr;

/// The /24 network key of an address, as a `u32` with the low octet zeroed.
///
/// Postgrey's default greylisting key and several heuristics in the scanner
/// aggregate senders at /24 granularity.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_net::net24;
/// assert_eq!(
///     net24(Ipv4Addr::new(192, 0, 2, 77)),
///     net24(Ipv4Addr::new(192, 0, 2, 200)),
/// );
/// assert_ne!(
///     net24(Ipv4Addr::new(192, 0, 2, 77)),
///     net24(Ipv4Addr::new(192, 0, 3, 77)),
/// );
/// ```
pub fn net24(ip: Ipv4Addr) -> u32 {
    u32::from(ip) & 0xFF_FF_FF_00
}

/// A sequential IPv4 address allocator.
///
/// Synthetic populations need millions of distinct addresses; the pool hands
/// them out in order from a starting address, skipping `.0` and `.255` host
/// octets so every address looks like a plausible unicast host.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_net::IpPool;
///
/// let mut pool = IpPool::new(Ipv4Addr::new(10, 0, 0, 1));
/// assert_eq!(pool.next_ip(), Ipv4Addr::new(10, 0, 0, 1));
/// assert_eq!(pool.next_ip(), Ipv4Addr::new(10, 0, 0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpPool {
    next: u32,
}

impl IpPool {
    /// Creates a pool starting at `start`.
    pub fn new(start: Ipv4Addr) -> Self {
        IpPool { next: u32::from(start) }
    }

    /// Allocates the next address.
    ///
    /// # Panics
    ///
    /// Panics if the IPv4 space is exhausted (practically unreachable).
    pub fn next_ip(&mut self) -> Ipv4Addr {
        loop {
            let candidate = self.next;
            self.next = self.next.checked_add(1).expect("IPv4 space exhausted");
            let last_octet = candidate & 0xFF;
            if last_octet != 0 && last_octet != 0xFF {
                return Ipv4Addr::from(candidate);
            }
        }
    }

    /// Allocates `n` consecutive (valid) addresses.
    pub fn take(&mut self, n: usize) -> Vec<Ipv4Addr> {
        (0..n).map(|_| self.next_ip()).collect()
    }
}

/// The `k`-th address a pool starting at `start` would allocate, as a pure
/// function — `indexed_ip(start, k) == IpPool::new(start)` after `k` calls
/// to [`IpPool::next_ip`].
///
/// Streaming population generators use this to synthesize any record's
/// addresses directly from its index, without walking a stateful pool
/// through every earlier record.
///
/// # Panics
///
/// Panics if the `k`-th address would fall outside the IPv4 space.
#[must_use]
pub fn indexed_ip(start: Ipv4Addr, k: u64) -> Ipv4Addr {
    const HOSTS_PER_BLOCK: u64 = 254; // host octets 1..=254
    let s = u32::from(start);
    // Normalize `start` to (block, offset-within-valid-sequence).
    let (block, first_offset) = match s & 0xFF {
        0 => (u64::from(s >> 8), 0),
        255 => (u64::from(s >> 8) + 1, 0),
        h => (u64::from(s >> 8), u64::from(h) - 1),
    };
    let total = first_offset + k;
    let block = block + total / HOSTS_PER_BLOCK;
    let host = 1 + total % HOSTS_PER_BLOCK;
    let addr = (block << 8) | host;
    u32::try_from(addr).map(Ipv4Addr::from).expect("IPv4 space exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_network_and_broadcast_octets() {
        let mut pool = IpPool::new(Ipv4Addr::new(10, 0, 0, 254));
        assert_eq!(pool.next_ip(), Ipv4Addr::new(10, 0, 0, 254));
        // .255 and .0 are skipped.
        assert_eq!(pool.next_ip(), Ipv4Addr::new(10, 0, 1, 1));
    }

    #[test]
    fn take_returns_distinct() {
        let mut pool = IpPool::new(Ipv4Addr::new(198, 18, 0, 1));
        let ips = pool.take(600);
        let mut dedup = ips.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ips.len());
    }

    #[test]
    fn indexed_ip_matches_the_pool() {
        for start in
            [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(11, 0, 0, 0), Ipv4Addr::new(10, 0, 0, 254)]
        {
            let mut pool = IpPool::new(start);
            for k in 0..600 {
                assert_eq!(indexed_ip(start, k), pool.next_ip(), "start={start} k={k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "IPv4 space exhausted")]
    fn indexed_ip_past_the_space_panics() {
        let _ = indexed_ip(Ipv4Addr::new(255, 255, 255, 1), 300);
    }

    #[test]
    fn net24_masks_low_octet() {
        let a = Ipv4Addr::new(203, 0, 113, 5);
        let b = Ipv4Addr::new(203, 0, 113, 254);
        assert_eq!(net24(a), net24(b));
        assert_eq!(net24(a) & 0xFF, 0);
    }
}
