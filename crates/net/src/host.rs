//! Hosts: named machines owning IPs, ports, and an availability model.

use serde::{Deserialize, Serialize};
use spamward_sim::{DetRng, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Opaque identifier of a host within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub(crate) u64);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

impl HostId {
    /// The raw index value (stable within one `Network`).
    pub fn index(self) -> u64 {
        self.0
    }
}

/// TCP state of a port as seen from the outside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortState {
    /// A listener answers: SYN → SYN-ACK.
    Open,
    /// No listener: SYN → RST. This is the recommended nolisting setup — a
    /// real machine with port 25 *closed*, so clients fail fast.
    Closed,
    /// A firewall drops the packet: SYN → silence (client times out). The
    /// "poor man's nolisting" variant; noticeably slower for RFC-compliant
    /// clients.
    Filtered,
}

/// Whether a host is reachable at all, possibly varying per scan epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Availability {
    /// Always reachable.
    Up,
    /// Never reachable (unplugged, black-holed address).
    Down,
    /// Down with probability `down_prob`, re-drawn independently for every
    /// epoch (an epoch is one scan round or one coarse time bucket). This is
    /// what makes the detector's two-scans-two-months-apart cross-check
    /// meaningful: a flaky-but-real primary MX will usually be up in at
    /// least one of the scans, while a nolisting primary never is.
    Flaky {
        /// Probability the host is unreachable in a given epoch.
        down_prob: f64,
    },
    /// Down exactly during the listed virtual-time windows — *planned*
    /// downtime (maintenance, a scheduled reboot), as opposed to `Flaky`'s
    /// random flapping. Outside every window the host is up. Scan-epoch
    /// checks ([`Availability::is_up`]) treat a windowed host as up, since
    /// epochs carry no instant; time-aware paths use
    /// [`Availability::is_up_at`].
    Windows {
        /// The intervals during which the host is unreachable.
        down: Vec<crate::FaultWindow>,
    },
}

impl Availability {
    /// Whether the host is up in `epoch`, deterministically derived from the
    /// host's stable seed.
    pub fn is_up(&self, host_seed: u64, epoch: u64) -> bool {
        match self {
            Availability::Up | Availability::Windows { .. } => true,
            Availability::Down => false,
            Availability::Flaky { down_prob } => {
                let mut rng = DetRng::seed(host_seed).fork_idx("availability", epoch);
                !rng.chance(*down_prob)
            }
        }
    }

    /// Whether the host is up in `epoch` *at* virtual instant `now`. For
    /// `Up`/`Down`/`Flaky` this is exactly [`Availability::is_up`]; for
    /// `Windows` the instant decides.
    pub fn is_up_at(&self, host_seed: u64, epoch: u64, now: SimTime) -> bool {
        match self {
            Availability::Windows { down } => !down.iter().any(|w| w.contains(now)),
            other => other.is_up(host_seed, epoch),
        }
    }
}

/// A machine in the simulated internet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    pub(crate) id: HostId,
    pub(crate) name: String,
    pub(crate) ips: Vec<Ipv4Addr>,
    pub(crate) ports: BTreeMap<u16, PortState>,
    pub(crate) availability: Availability,
    pub(crate) seed: u64,
}

impl Host {
    /// The host's identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The host's mnemonic name (e.g. `"smtp1.foo.net"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The addresses this host answers on.
    pub fn ips(&self) -> &[Ipv4Addr] {
        &self.ips
    }

    /// The host's primary (first) address.
    ///
    /// # Panics
    ///
    /// Panics if the host was somehow built without addresses (the builder
    /// prevents this).
    pub fn primary_ip(&self) -> Ipv4Addr {
        *self.ips.first().expect("host has no IPs")
    }

    /// The state of `port`, defaulting to [`PortState::Closed`].
    pub fn port(&self, port: u16) -> PortState {
        self.ports.get(&port).copied().unwrap_or(PortState::Closed)
    }

    /// Whether the host is reachable in `epoch`.
    pub fn is_up(&self, epoch: u64) -> bool {
        self.availability.is_up(self.seed, epoch)
    }

    /// Whether the host is reachable in `epoch` at virtual instant `now`
    /// (respects [`Availability::Windows`] planned downtime).
    pub fn is_up_at(&self, epoch: u64, now: SimTime) -> bool {
        self.availability.is_up_at(self.seed, epoch, now)
    }

    /// Reconfigures a port at runtime (e.g. an admin opening port 25).
    pub fn set_port(&mut self, port: u16, state: PortState) {
        self.ports.insert(port, state);
    }

    /// Reconfigures availability at runtime.
    pub fn set_availability(&mut self, availability: Availability) {
        self.availability = availability;
    }
}

/// Builder for [`Host`]s; obtained from [`Network::host`](crate::Network::host).
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_net::{Network, PortState, SMTP_PORT};
///
/// let mut net = Network::new(1);
/// let id = net
///     .host("smtp.foo.net")
///     .ip(Ipv4Addr::new(192, 0, 2, 10))
///     .port(SMTP_PORT, PortState::Open)
///     .build();
/// assert_eq!(net.get(id).name(), "smtp.foo.net");
/// ```
#[derive(Debug)]
pub struct HostBuilder<'a> {
    pub(crate) network: &'a mut crate::Network,
    pub(crate) name: String,
    pub(crate) ips: Vec<Ipv4Addr>,
    pub(crate) ports: BTreeMap<u16, PortState>,
    pub(crate) availability: Availability,
}

impl HostBuilder<'_> {
    /// Adds an address the host answers on.
    pub fn ip(mut self, ip: Ipv4Addr) -> Self {
        self.ips.push(ip);
        self
    }

    /// Adds several addresses (e.g. a webmail provider's outbound pool).
    pub fn ips(mut self, ips: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        self.ips.extend(ips);
        self
    }

    /// Sets a port's externally visible state.
    pub fn port(mut self, port: u16, state: PortState) -> Self {
        self.ports.insert(port, state);
        self
    }

    /// Convenience: opens TCP port 25.
    pub fn smtp_open(self) -> Self {
        self.port(crate::SMTP_PORT, PortState::Open)
    }

    /// Sets the availability model (defaults to [`Availability::Up`]).
    pub fn availability(mut self, availability: Availability) -> Self {
        self.availability = availability;
        self
    }

    /// Registers the host with the network and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if no address was supplied or an address is already owned by
    /// another host.
    pub fn build(self) -> HostId {
        self.network.register(self.name, self.ips, self.ports, self.availability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_up_down() {
        assert!(Availability::Up.is_up(1, 0));
        assert!(!Availability::Down.is_up(1, 0));
    }

    #[test]
    fn flaky_is_deterministic_per_epoch() {
        let a = Availability::Flaky { down_prob: 0.5 };
        for epoch in 0..16 {
            assert_eq!(a.is_up(42, epoch), a.is_up(42, epoch));
        }
    }

    #[test]
    fn flaky_varies_across_epochs_and_hosts() {
        let a = Availability::Flaky { down_prob: 0.5 };
        let per_epoch: Vec<bool> = (0..64).map(|e| a.is_up(7, e)).collect();
        assert!(per_epoch.iter().any(|&b| b), "never up across 64 epochs");
        assert!(per_epoch.iter().any(|&b| !b), "never down across 64 epochs");
        let other_host: Vec<bool> = (0..64).map(|e| a.is_up(8, e)).collect();
        assert_ne!(per_epoch, other_host, "different hosts share flap pattern");
    }

    #[test]
    fn windows_availability_follows_the_schedule() {
        use crate::FaultWindow;
        use spamward_sim::SimDuration;
        let maintenance = Availability::Windows {
            down: vec![
                FaultWindow::new(SimTime::from_secs(60), SimTime::from_secs(120)),
                FaultWindow::new(SimTime::from_secs(600), SimTime::from_secs(660)),
            ],
        };
        // Epoch-only checks (scanner view) see the host as up.
        assert!(maintenance.is_up(1, 0));
        // Time-aware checks respect the schedule, on any epoch/seed.
        for (seed, epoch) in [(1, 0), (9, 4)] {
            assert!(maintenance.is_up_at(seed, epoch, SimTime::ZERO));
            assert!(!maintenance.is_up_at(seed, epoch, SimTime::from_secs(60)));
            assert!(!maintenance.is_up_at(seed, epoch, SimTime::from_secs(119)));
            assert!(maintenance.is_up_at(seed, epoch, SimTime::from_secs(120)));
            assert!(!maintenance.is_up_at(seed, epoch, SimTime::from_secs(630)));
            assert!(maintenance.is_up_at(seed, epoch, SimTime::from_secs(661)));
        }
        // The other variants answer is_up_at exactly like is_up.
        let t = SimTime::ZERO + SimDuration::from_mins(3);
        assert!(Availability::Up.is_up_at(1, 0, t));
        assert!(!Availability::Down.is_up_at(1, 0, t));
        let flaky = Availability::Flaky { down_prob: 0.5 };
        for epoch in 0..8 {
            assert_eq!(flaky.is_up_at(42, epoch, t), flaky.is_up(42, epoch));
        }
    }

    #[test]
    fn flaky_probability_respected() {
        let a = Availability::Flaky { down_prob: 0.1 };
        let ups = (0..10_000).filter(|&e| a.is_up(3, e)).count();
        let frac = ups as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "up fraction {frac} far from 0.9");
    }
}
