//! Connection latency models.

use serde::{Deserialize, Serialize};
use spamward_sim::{DetRng, SimDuration};

/// How long a successful TCP handshake (and each subsequent round trip)
/// takes.
///
/// The paper's delay measurements are at second granularity, so latency
/// mostly matters for realism of sub-second detail and for the `Filtered`
/// port timeout; the default is a modest WAN profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Zero latency — useful in unit tests.
    Zero,
    /// A fixed round-trip time.
    Constant(SimDuration),
    /// Uniformly distributed between the two bounds.
    Uniform {
        /// Smallest possible round-trip time.
        lo: SimDuration,
        /// Largest possible round-trip time (exclusive).
        hi: SimDuration,
    },
}

impl Default for LatencyModel {
    /// A 20–180 ms WAN profile.
    fn default() -> Self {
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(20),
            hi: SimDuration::from_millis(180),
        }
    }
}

impl LatencyModel {
    /// Samples one round-trip time.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    return lo;
                }
                let span = (hi - lo).as_micros();
                lo + SimDuration::from_micros(rng.below(span.max(1)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_constant() {
        let mut rng = DetRng::seed(0);
        assert_eq!(LatencyModel::Zero.sample(&mut rng), SimDuration::ZERO);
        let d = SimDuration::from_millis(50);
        assert_eq!(LatencyModel::Constant(d).sample(&mut rng), d);
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        let m = LatencyModel::Uniform { lo, hi };
        let mut rng = DetRng::seed(1);
        for _ in 0..1_000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s < hi, "sample {s} out of bounds");
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let lo = SimDuration::from_millis(10);
        let m = LatencyModel::Uniform { lo, hi: lo };
        let mut rng = DetRng::seed(1);
        assert_eq!(m.sample(&mut rng), lo);
    }
}
