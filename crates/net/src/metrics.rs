//! Metric name constants and collectors for the network substrate.
//!
//! All `net.*` registry names live here (the O1 lint rule); the hot path
//! only bumps plain counter fields on [`Network`].

use crate::network::Network;
use spamward_obs::Registry;

/// TCP connection attempts (the §VI traffic-cost counter).
pub const CONNECT_ATTEMPTED: &str = "net.connect.attempted";
/// Attempts that completed the handshake.
pub const CONNECT_ESTABLISHED: &str = "net.connect.established";
/// Attempts refused with a RST (closed port — the nolisting primary).
pub const CONNECT_REFUSED: &str = "net.connect.refused";
/// Attempts that timed out (filtered port or down host).
pub const CONNECT_TIMED_OUT: &str = "net.connect.timed_out";
/// Attempts to unrouted addresses.
pub const CONNECT_NO_ROUTE: &str = "net.connect.no_route";
/// SYN probes sent by scanners.
pub const PROBES_SENT: &str = "net.probe.sent";
/// Connections swallowed by a scripted host-outage window.
pub const FAULT_OUTAGE_TIMEOUTS: &str = "net.fault.outage_timeouts";
/// Connections whose SYN a lossy link dropped.
pub const FAULT_LINK_DROPPED: &str = "net.fault.link_dropped";
/// Connections that paid a latency-spike surcharge.
pub const FAULT_LATENCY_SPIKED: &str = "net.fault.latency_spiked";

/// Exports network counters under the canonical `net.*` names. Fault
/// counters appear only when a fault plan is installed, so fault-free runs
/// keep their exact metric composition.
pub fn collect(net: &Network, reg: &mut Registry) {
    reg.record_counter(CONNECT_ATTEMPTED, net.connects_attempted());
    reg.record_counter(CONNECT_ESTABLISHED, net.connects_established());
    reg.record_counter(CONNECT_REFUSED, net.connects_refused());
    reg.record_counter(CONNECT_TIMED_OUT, net.connects_timed_out());
    reg.record_counter(CONNECT_NO_ROUTE, net.connects_no_route());
    reg.record_counter(PROBES_SENT, net.probes_sent());
    if let Some(faults) = net.faults() {
        reg.record_counter(FAULT_OUTAGE_TIMEOUTS, faults.stats.outage_timeouts);
        reg.record_counter(FAULT_LINK_DROPPED, faults.stats.link_dropped);
        reg.record_counter(FAULT_LATENCY_SPIKED, faults.stats.latency_spiked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PortState, SMTP_PORT};
    use std::net::Ipv4Addr;

    #[test]
    fn outcomes_partition_the_attempts() {
        let mut net = Network::new(1);
        let open = Ipv4Addr::new(192, 0, 2, 1);
        let closed = Ipv4Addr::new(192, 0, 2, 2);
        net.host("a").ip(open).port(SMTP_PORT, PortState::Open).build();
        net.host("b").ip(closed).port(SMTP_PORT, PortState::Closed).build();

        assert!(net.connect(open, SMTP_PORT, 0).is_ok());
        assert!(net.connect(closed, SMTP_PORT, 0).is_err());
        assert!(net.connect(Ipv4Addr::new(203, 0, 113, 9), SMTP_PORT, 0).is_err());

        let mut reg = Registry::new();
        collect(&net, &mut reg);
        assert_eq!(reg.counter(CONNECT_ATTEMPTED), Some(3));
        assert_eq!(reg.counter(CONNECT_ESTABLISHED), Some(1));
        assert_eq!(reg.counter(CONNECT_REFUSED), Some(1));
        assert_eq!(reg.counter(CONNECT_NO_ROUTE), Some(1));
        let parts = net.connects_established()
            + net.connects_refused()
            + net.connects_timed_out()
            + net.connects_no_route();
        assert_eq!(parts, net.connects_attempted(), "outcomes partition attempts");
        // No fault plan installed → no net.fault.* names in the registry.
        assert_eq!(reg.counter(FAULT_OUTAGE_TIMEOUTS), None);
    }

    #[test]
    fn fault_counters_partition_too_and_export_when_installed() {
        use crate::faults::{FaultPlan, FaultProfile};
        use spamward_sim::{SimDuration, SimTime};
        let mut net = Network::new(3);
        let addr = Ipv4Addr::new(192, 0, 2, 10);
        net.host("mail.victim.example").ip(addr).port(SMTP_PORT, PortState::Open).build();
        net.install_faults(FaultPlan::compile(&FaultProfile::flaky_net(), 3).net);
        let inside = SimTime::ZERO + SimDuration::from_mins(1);
        for _ in 0..4 {
            let _ = net.connect_at(addr, SMTP_PORT, 0, inside);
        }
        let mut reg = Registry::new();
        collect(&net, &mut reg);
        assert_eq!(reg.counter(FAULT_OUTAGE_TIMEOUTS), Some(4));
        // Fault-swallowed SYNs still land in the timed_out bucket, so the
        // outcome partition invariant holds under injection.
        let parts = net.connects_established()
            + net.connects_refused()
            + net.connects_timed_out()
            + net.connects_no_route();
        assert_eq!(parts, net.connects_attempted(), "fault outcomes escape the partition");
    }
}
