//! The network registry and its connection/probe semantics.

use crate::faults::NetFaults;
use crate::host::{Availability, Host, HostBuilder, HostId, PortState};
use crate::latency::LatencyModel;
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

/// Result of a single SYN probe, as a zmap-style banner grab records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeResult {
    /// SYN-ACK received: a listener is there.
    SynAck,
    /// RST received: host is up, port closed.
    Rst,
    /// Nothing came back within the scanner's timeout.
    Timeout,
}

impl ProbeResult {
    /// Whether the probe proves a listener ("responded to a SYN packet on
    /// port 25" in the paper's wording).
    pub fn is_listening(self) -> bool {
        matches!(self, ProbeResult::SynAck)
    }
}

/// Why a connection attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// No host owns the destination address.
    NoRoute,
    /// The host exists but is unreachable this epoch.
    HostDown,
    /// The port answered with RST — fail fast.
    ConnectionRefused,
    /// The packet was dropped; the client waited out its own timeout.
    TimedOut {
        /// How long the client waited before giving up.
        waited: SimDuration,
    },
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::NoRoute => write!(f, "no route to host"),
            ConnectError::HostDown => write!(f, "host unreachable"),
            ConnectError::ConnectionRefused => write!(f, "connection refused"),
            ConnectError::TimedOut { waited } => write!(f, "connection timed out after {waited}"),
        }
    }
}

impl std::error::Error for ConnectError {}

impl ConnectError {
    /// Time the *client* spent learning about the failure: a refused
    /// connection costs one RTT, a filtered one costs the full timeout.
    pub fn client_cost(&self, rtt: SimDuration) -> SimDuration {
        match self {
            ConnectError::NoRoute | ConnectError::ConnectionRefused | ConnectError::HostDown => rtt,
            ConnectError::TimedOut { waited } => *waited,
        }
    }
}

/// The stable per-host seed for flap patterns, derived purely from the
/// host's name — never from registration order — so a streaming generator
/// that synthesizes a host record on the fly and a materialized
/// [`Network`] agree on every availability decision.
#[must_use]
pub fn host_seed(name: &str) -> u64 {
    let mut h: u64 = 0x9E37_79B9;
    for b in name.bytes() {
        h = h.rotate_left(5) ^ u64::from(b);
    }
    h
}

/// An established (simulated) TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// The host that accepted.
    pub host: HostId,
    /// Round-trip time for this connection; callers charge it per exchange.
    pub rtt: SimDuration,
}

/// The simulated internet: hosts, their addresses, and reachability rules.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_net::{Network, PortState, ProbeResult, SMTP_PORT};
///
/// let mut net = Network::new(7);
/// let ip = Ipv4Addr::new(192, 0, 2, 1);
/// net.host("mx.example.org").ip(ip).smtp_open().build();
///
/// assert_eq!(net.probe(ip, SMTP_PORT, 0), ProbeResult::SynAck);
/// assert_eq!(net.probe(ip, 80, 0), ProbeResult::Rst);
/// ```
#[derive(Debug)]
pub struct Network {
    hosts: Vec<Host>,
    by_ip: HashMap<Ipv4Addr, HostId>,
    latency: LatencyModel,
    rng: DetRng,
    connects_attempted: u64,
    connects_established: u64,
    connects_refused: u64,
    connects_timed_out: u64,
    connects_no_route: u64,
    probes_sent: std::cell::Cell<u64>,
    faults: Option<NetFaults>,
    /// How long clients wait on a filtered port before giving up.
    pub syn_timeout: SimDuration,
}

impl Network {
    /// Creates an empty network with the default latency model.
    pub fn new(seed: u64) -> Self {
        Network {
            hosts: Vec::new(),
            by_ip: HashMap::new(),
            latency: LatencyModel::default(),
            rng: DetRng::seed(seed).fork("net.latency"),
            connects_attempted: 0,
            connects_established: 0,
            connects_refused: 0,
            connects_timed_out: 0,
            connects_no_route: 0,
            probes_sent: std::cell::Cell::new(0),
            faults: None,
            syn_timeout: SimDuration::from_secs(30),
        }
    }

    /// Total TCP connection attempts so far (the traffic-cost counter the
    /// §VI accounting reads).
    pub fn connects_attempted(&self) -> u64 {
        self.connects_attempted
    }

    /// Attempts that completed the handshake.
    pub fn connects_established(&self) -> u64 {
        self.connects_established
    }

    /// Attempts refused with a RST (closed port — the nolisting primary).
    pub fn connects_refused(&self) -> u64 {
        self.connects_refused
    }

    /// Attempts that timed out (filtered port or down host).
    pub fn connects_timed_out(&self) -> u64 {
        self.connects_timed_out
    }

    /// Attempts to addresses with no route.
    pub fn connects_no_route(&self) -> u64 {
        self.connects_no_route
    }

    /// Total SYN probes sent by scanners.
    pub fn probes_sent(&self) -> u64 {
        self.probes_sent.get()
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Installs network-level faults (a compiled plan's `net` half). Until
    /// this is called the network behaves exactly as if the fault layer did
    /// not exist — same results, same RNG draw order.
    pub fn install_faults(&mut self, faults: NetFaults) {
        self.faults = Some(faults);
    }

    /// The installed fault state (with its fired-fault counters), if any.
    pub fn faults(&self) -> Option<&NetFaults> {
        self.faults.as_ref()
    }

    /// Starts building a host named `name`.
    pub fn host(&mut self, name: &str) -> HostBuilder<'_> {
        HostBuilder {
            network: self,
            name: name.to_owned(),
            ips: Vec::new(),
            ports: BTreeMap::new(),
            availability: Availability::Up,
        }
    }

    pub(crate) fn register(
        &mut self,
        name: String,
        ips: Vec<Ipv4Addr>,
        ports: BTreeMap<u16, PortState>,
        availability: Availability,
    ) -> HostId {
        assert!(!ips.is_empty(), "host {name:?} needs at least one IP");
        let id = HostId(self.hosts.len() as u64);
        for &ip in &ips {
            let prev = self.by_ip.insert(ip, id);
            assert!(prev.is_none(), "IP {ip} already owned by {:?}", prev);
        }
        let seed = host_seed(&name);
        self.hosts.push(Host { id, name, ips, ports, availability, seed });
        id
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the network has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The host with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn get(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Mutable access to the host with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn get_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0 as usize]
    }

    /// Looks up the owner of `ip`.
    pub fn host_at(&self, ip: Ipv4Addr) -> Option<&Host> {
        self.by_ip.get(&ip).map(|&id| self.get(id))
    }

    /// Iterates over all hosts.
    pub fn iter(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }

    /// Sends one SYN to `ip:port` during `epoch` and reports what came back.
    ///
    /// This is the primitive the banner-grab scanner uses: it does not
    /// complete a handshake, and it treats an absent or down host as
    /// [`ProbeResult::Timeout`] (on the real Internet a scanner cannot tell
    /// "no such host" from "packet dropped").
    pub fn probe(&self, ip: Ipv4Addr, port: u16, epoch: u64) -> ProbeResult {
        self.probes_sent.set(self.probes_sent.get() + 1);
        let Some(host) = self.host_at(ip) else {
            return ProbeResult::Timeout;
        };
        if !host.is_up(epoch) {
            return ProbeResult::Timeout;
        }
        match host.port(port) {
            PortState::Open => ProbeResult::SynAck,
            PortState::Closed => ProbeResult::Rst,
            PortState::Filtered => ProbeResult::Timeout,
        }
    }

    /// Attempts a full TCP connection to `ip:port` during `epoch`.
    ///
    /// # Errors
    ///
    /// * [`ConnectError::NoRoute`] — nothing owns `ip`.
    /// * [`ConnectError::HostDown`] — owner unreachable this epoch.
    /// * [`ConnectError::ConnectionRefused`] — port closed (RST).
    /// * [`ConnectError::TimedOut`] — port filtered; the error carries the
    ///   client's SYN timeout so callers can charge the wasted wait.
    pub fn connect(
        &mut self,
        ip: Ipv4Addr,
        port: u16,
        epoch: u64,
    ) -> Result<Connection, ConnectError> {
        self.connect_at(ip, port, epoch, SimTime::ZERO)
    }

    /// [`Network::connect`] with a virtual instant: planned-downtime windows
    /// ([`Availability::Windows`]) and installed faults (outages, link loss,
    /// latency spikes) are evaluated at `now`. Fault decisions are pure
    /// functions of `(plan seed, ip, now)`, so they cannot perturb the
    /// latency RNG stream — a faulted and a fault-free run sample RTTs in
    /// the same order.
    ///
    /// # Errors
    ///
    /// As [`Network::connect`]; fault-swallowed SYNs surface as
    /// [`ConnectError::TimedOut`] (a lost SYN is indistinguishable from a
    /// filtered port).
    pub fn connect_at(
        &mut self,
        ip: Ipv4Addr,
        port: u16,
        epoch: u64,
        now: SimTime,
    ) -> Result<Connection, ConnectError> {
        self.connects_attempted += 1;
        let mut rtt = self.latency.sample(&mut self.rng);
        let Some(&id) = self.by_ip.get(&ip) else {
            self.connects_no_route += 1;
            return Err(ConnectError::NoRoute);
        };
        let host = &self.hosts[id.0 as usize];
        if let Some(faults) = &mut self.faults {
            if faults.host_out(&host.name, now) || faults.link_drop(ip, now) {
                self.connects_timed_out += 1;
                return Err(ConnectError::TimedOut { waited: self.syn_timeout });
            }
            rtt += faults.extra_latency(now);
        }
        if !host.is_up_at(epoch, now) {
            // A down host looks like a filtered port from the outside.
            self.connects_timed_out += 1;
            return Err(ConnectError::TimedOut { waited: self.syn_timeout });
        }
        match host.port(port) {
            PortState::Open => {
                self.connects_established += 1;
                Ok(Connection { host: id, rtt })
            }
            PortState::Closed => {
                self.connects_refused += 1;
                Err(ConnectError::ConnectionRefused)
            }
            PortState::Filtered => {
                self.connects_timed_out += 1;
                Err(ConnectError::TimedOut { waited: self.syn_timeout })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SMTP_PORT;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn basic_net() -> (Network, Ipv4Addr, Ipv4Addr, Ipv4Addr) {
        let mut net = Network::new(1).with_latency(LatencyModel::Zero);
        let open = ip(192, 0, 2, 1);
        let closed = ip(192, 0, 2, 2);
        let filtered = ip(192, 0, 2, 3);
        net.host("open.example").ip(open).smtp_open().build();
        net.host("closed.example").ip(closed).build();
        net.host("filtered.example").ip(filtered).port(SMTP_PORT, PortState::Filtered).build();
        (net, open, closed, filtered)
    }

    #[test]
    fn probe_reflects_port_state() {
        let (net, open, closed, filtered) = basic_net();
        assert_eq!(net.probe(open, SMTP_PORT, 0), ProbeResult::SynAck);
        assert_eq!(net.probe(closed, SMTP_PORT, 0), ProbeResult::Rst);
        assert_eq!(net.probe(filtered, SMTP_PORT, 0), ProbeResult::Timeout);
        assert_eq!(net.probe(ip(192, 0, 2, 99), SMTP_PORT, 0), ProbeResult::Timeout);
        assert!(net.probe(open, SMTP_PORT, 0).is_listening());
        assert!(!net.probe(closed, SMTP_PORT, 0).is_listening());
    }

    #[test]
    fn connect_semantics() {
        let (mut net, open, closed, filtered) = basic_net();
        assert!(net.connect(open, SMTP_PORT, 0).is_ok());
        assert_eq!(net.connect(closed, SMTP_PORT, 0), Err(ConnectError::ConnectionRefused));
        match net.connect(filtered, SMTP_PORT, 0) {
            Err(ConnectError::TimedOut { waited }) => {
                assert_eq!(waited, SimDuration::from_secs(30))
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(net.connect(ip(10, 0, 0, 1), SMTP_PORT, 0), Err(ConnectError::NoRoute));
    }

    #[test]
    fn down_host_times_out() {
        let mut net = Network::new(1).with_latency(LatencyModel::Zero);
        let addr = ip(192, 0, 2, 9);
        let id =
            net.host("down.example").ip(addr).smtp_open().availability(Availability::Down).build();
        assert!(matches!(net.connect(addr, SMTP_PORT, 0), Err(ConnectError::TimedOut { .. })));
        assert_eq!(net.probe(addr, SMTP_PORT, 0), ProbeResult::Timeout);
        // Bring it back up.
        net.get_mut(id).set_availability(Availability::Up);
        assert!(net.connect(addr, SMTP_PORT, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn duplicate_ip_rejected() {
        let mut net = Network::new(1);
        let addr = ip(192, 0, 2, 1);
        net.host("a").ip(addr).build();
        net.host("b").ip(addr).build();
    }

    #[test]
    #[should_panic(expected = "at least one IP")]
    fn host_without_ip_rejected() {
        let mut net = Network::new(1);
        net.host("a").build();
    }

    #[test]
    fn multi_ip_host_reachable_on_all() {
        let mut net = Network::new(1).with_latency(LatencyModel::Zero);
        let a = ip(198, 51, 100, 1);
        let b = ip(198, 51, 100, 2);
        let id = net.host("pool.example").ip(a).ip(b).smtp_open().build();
        assert_eq!(net.connect(a, SMTP_PORT, 0).unwrap().host, id);
        assert_eq!(net.connect(b, SMTP_PORT, 0).unwrap().host, id);
        assert_eq!(net.get(id).primary_ip(), a);
    }

    #[test]
    fn port_reconfiguration_takes_effect() {
        let (mut net, _, closed, _) = basic_net();
        let id = net.host_at(closed).unwrap().id();
        net.get_mut(id).set_port(SMTP_PORT, PortState::Open);
        assert_eq!(net.probe(closed, SMTP_PORT, 0), ProbeResult::SynAck);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let (mut net, open, closed, _) = basic_net();
        assert_eq!(net.connects_attempted(), 0);
        let _ = net.connect(open, SMTP_PORT, 0);
        let _ = net.connect(closed, SMTP_PORT, 0);
        assert_eq!(net.connects_attempted(), 2, "failed connects count too");
        let before = net.probes_sent();
        net.probe(open, SMTP_PORT, 0);
        assert_eq!(net.probes_sent(), before + 1);
    }

    #[test]
    fn installed_faults_swallow_syns_and_spike_latency() {
        use crate::faults::{FaultPlan, FaultProfile};
        let mins = |m: u64| SimTime::ZERO + SimDuration::from_mins(m);
        let mut net = Network::new(1).with_latency(LatencyModel::Zero);
        let addr = ip(192, 0, 2, 10);
        net.host("mail.victim.example").ip(addr).smtp_open().build();
        // Without faults the host accepts at any instant.
        assert!(net.connect_at(addr, SMTP_PORT, 0, mins(1)).is_ok());

        let plan = FaultPlan::compile(&FaultProfile::flaky_net(), 5);
        net.install_faults(plan.net);
        // Inside the outage window every SYN vanishes (timeout, not refusal).
        assert!(matches!(
            net.connect_at(addr, SMTP_PORT, 0, mins(1)),
            Err(ConnectError::TimedOut { .. })
        ));
        let stats = net.faults().unwrap().stats;
        assert_eq!(stats.outage_timeouts, 1);
        // Past every window the connection goes back to succeeding, and the
        // latency-spike window adds its surcharge onto the sampled RTT.
        let conn = net.connect_at(addr, SMTP_PORT, 0, mins(45)).unwrap();
        assert_eq!(conn.rtt, SimDuration::ZERO, "Zero latency model, no spike at 45min");
        // (The spike window [5,15) overlaps the outage [0,22), so a spiked
        // RTT is only observable via the counter here.)
        assert_eq!(net.faults().unwrap().stats.latency_spiked, 0);
    }

    #[test]
    fn windowed_downtime_times_out_during_the_window_only() {
        use crate::FaultWindow;
        let mut net = Network::new(1).with_latency(LatencyModel::Zero);
        let addr = ip(192, 0, 2, 20);
        let window = FaultWindow::new(SimTime::from_secs(100), SimTime::from_secs(200));
        net.host("maint.example")
            .ip(addr)
            .smtp_open()
            .availability(Availability::Windows { down: vec![window] })
            .build();
        assert!(net.connect_at(addr, SMTP_PORT, 0, SimTime::from_secs(50)).is_ok());
        assert!(matches!(
            net.connect_at(addr, SMTP_PORT, 0, SimTime::from_secs(150)),
            Err(ConnectError::TimedOut { .. })
        ));
        assert!(net.connect_at(addr, SMTP_PORT, 0, SimTime::from_secs(200)).is_ok());
        // Epoch-only `connect` evaluates at t=0, outside the window.
        assert!(net.connect(addr, SMTP_PORT, 0).is_ok());
    }

    #[test]
    fn fault_layer_does_not_perturb_the_latency_stream() {
        use crate::faults::{FaultPlan, FaultProfile};
        let run = |faulted: bool| -> Vec<SimDuration> {
            let mut net = Network::new(9);
            let addr = ip(192, 0, 2, 30);
            net.host("stable.example").ip(addr).smtp_open().build();
            if faulted {
                // flaky_net's windows end by 40min; connect at 50min so every
                // attempt succeeds and we can read its sampled RTT.
                net.install_faults(FaultPlan::compile(&FaultProfile::flaky_net(), 5).net);
            }
            let at = SimTime::ZERO + SimDuration::from_mins(50);
            (0..8).map(|_| net.connect_at(addr, SMTP_PORT, 0, at).unwrap().rtt).collect()
        };
        assert_eq!(run(false), run(true), "installing faults changed RNG draw order");
    }

    #[test]
    fn connect_error_cost_model() {
        let rtt = SimDuration::from_millis(80);
        assert_eq!(ConnectError::ConnectionRefused.client_cost(rtt), rtt);
        let waited = SimDuration::from_secs(30);
        assert_eq!(ConnectError::TimedOut { waited }.client_cost(rtt), waited);
    }
}
