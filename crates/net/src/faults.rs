//! Deterministic fault injection for the simulated internet.
//!
//! The paper's subject is behaviour under *transient failure* — greylisting
//! is a deliberate 4xx fault, nolisting a deliberately dead primary MX — but
//! until this module the simulated internet could only fail via the
//! per-epoch coin flips of [`crate::Availability`]. Here failures become
//! *scriptable*: a declarative [`FaultProfile`] (a named list of
//! [`FaultSpec`]s) compiles under a seed into a [`FaultPlan`], whose
//! per-subsystem halves are installed into the network
//! ([`NetFaults`]), the resolver ([`DnsFaults`]) and the SMTP exchange
//! path ([`SmtpFaults`]).
//!
//! Determinism contract: every probabilistic decision is a *pure function*
//! of `(plan seed, fork label, target identity, virtual time)` — a fresh
//! [`DetRng`] fork per decision, never a shared mutable stream — so serial
//! and `--jobs N` runs of the same seed see byte-identical faults, and
//! installing a plan never perturbs the RNG draw order of fault-free code
//! paths. Window checks are plain interval tests against sorted `Vec`s
//! (no hash iteration, no hand-rolled event queues): the engine remains
//! the only scheduler, and fault window *boundaries* fire as engine events
//! through the actor layer (see `spamward_mta::worldsim`).
//!
//! All probability and fault-name literals live in this module (and the
//! per-crate `metrics.rs` modules) by decree of lint rule `F1`: experiments
//! pick named profiles instead of sprinkling magic numbers.

use serde::{Deserialize, Serialize};
use spamward_sim::{DetRng, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// How long a tarpitting server holds the client before the session dies.
pub const TARPIT_HOLD: SimDuration = SimDuration::from_secs(30);

/// A half-open window of virtual time: `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is over.
    pub until: SimTime,
}

impl FaultWindow {
    /// A window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        FaultWindow { from, until }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// How a faulted server kills an SMTP session mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmtpAbortKind {
    /// The connection drops after the client sends `DATA` — the dialogue
    /// ran to the end but nothing was stored, and the client never
    /// learns which.
    DropAfterData,
    /// The server answers the greeting with `421` and closes — graceful
    /// shutdown under load.
    Shutdown421,
    /// The server accepts the connection and then holds it silently until
    /// the client gives up ([`TARPIT_HOLD`]).
    Tarpit,
}

/// One declarative fault. Windows are virtual-time intervals; probabilities
/// apply per delivery attempt inside the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// A named host is unreachable for the window (its SYNs vanish).
    HostOutage {
        /// The host's registered name.
        host: String,
        /// When it is down.
        window: FaultWindow,
    },
    /// Each connection attempt inside the window loses its SYN with this
    /// probability (the client sees a timeout).
    LinkLoss {
        /// Per-attempt drop probability.
        prob: f64,
        /// When the link is lossy.
        window: FaultWindow,
    },
    /// Every connection inside the window pays extra round-trip latency.
    LatencySpike {
        /// Extra one-way latency added to the sampled RTT.
        extra: SimDuration,
        /// When the spike applies.
        extra_window: FaultWindow,
    },
    /// The authoritative DNS answers `SERVFAIL` for the window.
    DnsServFail {
        /// When resolution fails.
        window: FaultWindow,
    },
    /// The resolver is slow: every resolution inside the window costs
    /// extra time.
    DnsSlow {
        /// Extra resolution latency.
        extra: SimDuration,
        /// When the resolver crawls.
        extra_window: FaultWindow,
    },
    /// Receiving servers abort sessions mid-stream with this probability.
    SmtpAbort {
        /// The abort flavour.
        kind: SmtpAbortKind,
        /// Per-session abort probability.
        prob: f64,
        /// When sessions are at risk.
        window: FaultWindow,
    },
    /// The greylist triplet store is unavailable: the receiving MTA falls
    /// back to its degradation policy (fail-open or fail-closed).
    GreylistStoreDown {
        /// When the store is down.
        window: FaultWindow,
    },
    /// A named receiving MTA crashes at `at` and stays down for
    /// `downtime`: in-flight sessions drop, new connections are refused,
    /// and at the restart instant (`at + downtime`) greylist state is
    /// rebuilt per the MTA's configured durability mode.
    MtaCrashRestart {
        /// The host's registered name.
        host: String,
        /// The crash instant.
        at: SimTime,
        /// How long the MTA is down before restarting.
        downtime: SimDuration,
    },
}

/// A named, declarative set of faults — the unit experiments sweep over.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Stable profile name (report row label).
    pub name: &'static str,
    /// The faults, in declaration order.
    pub specs: Vec<FaultSpec>,
}

/// Minutes are the natural unit for fault windows at experiment scale.
fn mins(m: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_mins(m)
}

fn window_mins(from: u64, until: u64) -> FaultWindow {
    FaultWindow::new(mins(from), mins(until))
}

impl FaultProfile {
    /// The control profile: no faults at all.
    pub fn none() -> Self {
        FaultProfile { name: "baseline", specs: Vec::new() }
    }

    /// DNS degradation: the authority SERVFAILs for ten minutes and the
    /// resolver crawls for the first half hour.
    pub fn dns_degraded() -> Self {
        FaultProfile {
            name: "dns_degraded",
            specs: vec![
                FaultSpec::DnsServFail { window: window_mins(2, 12) },
                FaultSpec::DnsSlow {
                    extra: SimDuration::from_secs(2),
                    extra_window: window_mins(0, 30),
                },
            ],
        }
    }

    /// Flaky transport: the victim's primary exchanger is out for twenty
    /// minutes, a lossy link eats SYNs, and latency spikes mid-outage.
    pub fn flaky_net() -> Self {
        FaultProfile {
            name: "flaky_net",
            specs: vec![
                FaultSpec::HostOutage {
                    host: "mail.victim.example".to_owned(),
                    window: window_mins(0, 22),
                },
                FaultSpec::LinkLoss { prob: 0.30, window: window_mins(0, 40) },
                FaultSpec::LatencySpike {
                    extra: SimDuration::from_millis(800),
                    extra_window: window_mins(5, 15),
                },
            ],
        }
    }

    /// Hostile SMTP weather: sessions die mid-stream in all three flavours
    /// and the greylist store is down for most of the first half hour.
    pub fn smtp_chaos() -> Self {
        FaultProfile {
            name: "smtp_chaos",
            specs: vec![
                FaultSpec::SmtpAbort {
                    kind: SmtpAbortKind::Shutdown421,
                    prob: 0.35,
                    window: window_mins(0, 25),
                },
                FaultSpec::SmtpAbort {
                    kind: SmtpAbortKind::DropAfterData,
                    prob: 0.25,
                    window: window_mins(0, 25),
                },
                FaultSpec::SmtpAbort {
                    kind: SmtpAbortKind::Tarpit,
                    prob: 0.20,
                    window: window_mins(0, 25),
                },
                FaultSpec::GreylistStoreDown { window: window_mins(2, 28) },
            ],
        }
    }

    /// A pure store outage: only the greylist triplet store is down, for
    /// ten minutes early in the run. The `policy_backend` experiment uses
    /// it to compare backend degradation (fail-open vs fail-closed, remote
    /// protocol refusals vs ambient windows) without any network noise.
    /// Deliberately *not* in [`FaultProfile::catalog`]: the `resilience`
    /// sweep's byte-stable output is pinned to the original five profiles.
    pub fn store_degraded() -> Self {
        FaultProfile {
            name: "store_degraded",
            specs: vec![FaultSpec::GreylistStoreDown { window: window_mins(5, 15) }],
        }
    }

    /// One crash–restart of a named receiving MTA. Like
    /// [`FaultProfile::store_degraded`], deliberately *not* in
    /// [`FaultProfile::catalog`]: the `recovery` experiment sweeps crash
    /// timing and durability itself, and the `resilience` sweep's
    /// byte-stable output stays pinned to the original five profiles.
    pub fn crash_restart(host: &str, at: SimTime, downtime: SimDuration) -> Self {
        FaultProfile {
            name: "crash_restart",
            specs: vec![FaultSpec::MtaCrashRestart { host: host.to_owned(), at, downtime }],
        }
    }

    /// Everything at once: the union of the three degraded profiles.
    pub fn all_faults() -> Self {
        let mut specs = Self::dns_degraded().specs;
        specs.extend(Self::flaky_net().specs);
        specs.extend(Self::smtp_chaos().specs);
        FaultProfile { name: "all_faults", specs }
    }

    /// The sweep order the `resilience` experiment uses.
    pub fn catalog() -> Vec<FaultProfile> {
        vec![
            Self::none(),
            Self::dns_degraded(),
            Self::flaky_net(),
            Self::smtp_chaos(),
            Self::all_faults(),
        ]
    }
}

/// Counters for network-level faults that fired. Plain fields on the hot
/// path; `crate::metrics` binds the registry names at collection time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Connections swallowed by a host-outage window.
    pub outage_timeouts: u64,
    /// Connections whose SYN a lossy link dropped.
    pub link_dropped: u64,
    /// Connections that paid a latency-spike surcharge.
    pub latency_spiked: u64,
}

/// The network's half of a compiled [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaults {
    seed: u64,
    outages: Vec<(String, FaultWindow)>,
    loss: Vec<(f64, FaultWindow)>,
    spikes: Vec<(SimDuration, FaultWindow)>,
    /// What fired so far.
    pub stats: NetFaultStats,
}

impl NetFaults {
    /// Whether `host` is inside an outage window at `now`. Counts a hit.
    pub fn host_out(&mut self, host: &str, now: SimTime) -> bool {
        let out = self.outages.iter().any(|(h, w)| h == host && w.contains(now));
        if out {
            self.stats.outage_timeouts += 1;
        }
        out
    }

    /// Whether the SYN towards `ip` at `now` is lost. A pure function of
    /// `(seed, ip, now)`: the decision is drawn from a fresh fork, so call
    /// order cannot change it.
    pub fn link_drop(&mut self, ip: Ipv4Addr, now: SimTime) -> bool {
        let prob: f64 = self.loss.iter().filter(|(_, w)| w.contains(now)).map(|(p, _)| *p).sum();
        if prob <= 0.0 {
            return false;
        }
        let dropped = DetRng::seed(self.seed)
            .fork("fault.link")
            .fork_idx("ip", u64::from(u32::from(ip)))
            .fork_idx("us", now.as_micros())
            .chance(prob.min(1.0));
        if dropped {
            self.stats.link_dropped += 1;
        }
        dropped
    }

    /// Extra latency active at `now` (sum of active spikes). Counts a hit
    /// when nonzero.
    pub fn extra_latency(&mut self, now: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for (d, w) in &self.spikes {
            if w.contains(now) {
                extra += *d;
            }
        }
        if extra > SimDuration::ZERO {
            self.stats.latency_spiked += 1;
        }
        extra
    }

    /// True when no network fault is configured.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.loss.is_empty() && self.spikes.is_empty()
    }
}

/// Counters for DNS faults that fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsFaultStats {
    /// Resolutions forced to SERVFAIL.
    pub servfails: u64,
    /// Resolutions that paid the slow-resolver surcharge.
    pub slowed: u64,
}

/// The resolver's half of a compiled [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct DnsFaults {
    servfail: Vec<FaultWindow>,
    slow: Vec<(SimDuration, FaultWindow)>,
    /// What fired so far.
    pub stats: DnsFaultStats,
}

impl DnsFaults {
    /// Whether resolution at `now` is forced to SERVFAIL. Counts a hit.
    pub fn servfail(&mut self, now: SimTime) -> bool {
        let fail = self.servfail.iter().any(|w| w.contains(now));
        if fail {
            self.stats.servfails += 1;
        }
        fail
    }

    /// Extra resolution latency at `now`. Counts a hit when nonzero.
    pub fn extra_latency(&mut self, now: SimTime) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for (d, w) in &self.slow {
            if w.contains(now) {
                extra += *d;
            }
        }
        if extra > SimDuration::ZERO {
            self.stats.slowed += 1;
        }
        extra
    }

    /// True when no DNS fault is configured.
    pub fn is_empty(&self) -> bool {
        self.servfail.is_empty() && self.slow.is_empty()
    }
}

/// Counters for SMTP session aborts that fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmtpFaultStats {
    /// Sessions whose connection dropped after DATA.
    pub dropped_after_data: u64,
    /// Sessions greeted with 421 and closed.
    pub shutdown_421: u64,
    /// Sessions held in a tarpit until the client gave up.
    pub tarpitted: u64,
}

/// The SMTP exchange path's half of a compiled [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SmtpFaults {
    seed: u64,
    aborts: Vec<(SmtpAbortKind, f64, FaultWindow)>,
    /// What fired so far.
    pub stats: SmtpFaultStats,
}

impl SmtpFaults {
    /// Decides whether (and how) the session towards `ip` at `now` aborts.
    /// Pure function of `(seed, kind, ip, now)`; the first declared kind
    /// whose draw fires wins. Counts the fired abort.
    pub fn abort(&mut self, ip: Ipv4Addr, now: SimTime) -> Option<SmtpAbortKind> {
        for (idx, (kind, prob, window)) in self.aborts.iter().enumerate() {
            if !window.contains(now) {
                continue;
            }
            let fires = DetRng::seed(self.seed)
                .fork("fault.smtp")
                .fork_idx("kind", idx as u64)
                .fork_idx("ip", u64::from(u32::from(ip)))
                .fork_idx("us", now.as_micros())
                .chance(*prob);
            if fires {
                match kind {
                    SmtpAbortKind::DropAfterData => self.stats.dropped_after_data += 1,
                    SmtpAbortKind::Shutdown421 => self.stats.shutdown_421 += 1,
                    SmtpAbortKind::Tarpit => self.stats.tarpitted += 1,
                }
                return Some(*kind);
            }
        }
        None
    }

    /// True when no SMTP abort is configured.
    pub fn is_empty(&self) -> bool {
        self.aborts.is_empty()
    }
}

/// A seeded, byte-stable compilation of a [`FaultProfile`]: per-subsystem
/// window tables plus the seed every probabilistic decision forks from.
///
/// Cloning a plan is cheap and gives each holder (network, resolver,
/// world) its own counter block; the plan itself never mutates windows
/// after compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Profile name this plan was compiled from.
    pub profile: &'static str,
    /// Network-level faults (outages, link loss, latency spikes).
    pub net: NetFaults,
    /// DNS faults (SERVFAIL and slow-resolver windows).
    pub dns: DnsFaults,
    /// SMTP mid-session aborts.
    pub smtp: SmtpFaults,
    /// Windows during which the greylist store is unavailable.
    pub greylist_down: Vec<FaultWindow>,
    /// Crash windows per receiving MTA, `[at, at + downtime)` — the lower
    /// edge is the crash instant, the upper edge the restart instant.
    pub crashes: Vec<(String, FaultWindow)>,
}

impl FaultPlan {
    /// Compiles `profile` under `seed` into an executable plan.
    pub fn compile(profile: &FaultProfile, seed: u64) -> FaultPlan {
        let mut net = NetFaults {
            seed: DetRng::seed(seed).fork("fault.plan.net").next_u64(),
            outages: Vec::new(),
            loss: Vec::new(),
            spikes: Vec::new(),
            stats: NetFaultStats::default(),
        };
        let mut dns =
            DnsFaults { servfail: Vec::new(), slow: Vec::new(), stats: DnsFaultStats::default() };
        let mut smtp = SmtpFaults {
            seed: DetRng::seed(seed).fork("fault.plan.smtp").next_u64(),
            aborts: Vec::new(),
            stats: SmtpFaultStats::default(),
        };
        let mut greylist_down = Vec::new();
        let mut crashes = Vec::new();
        for spec in &profile.specs {
            match spec {
                FaultSpec::HostOutage { host, window } => net.outages.push((host.clone(), *window)),
                FaultSpec::LinkLoss { prob, window } => net.loss.push((*prob, *window)),
                FaultSpec::LatencySpike { extra, extra_window } => {
                    net.spikes.push((*extra, *extra_window));
                }
                FaultSpec::DnsServFail { window } => dns.servfail.push(*window),
                FaultSpec::DnsSlow { extra, extra_window } => {
                    dns.slow.push((*extra, *extra_window))
                }
                FaultSpec::SmtpAbort { kind, prob, window } => {
                    smtp.aborts.push((*kind, *prob, *window));
                }
                FaultSpec::GreylistStoreDown { window } => greylist_down.push(*window),
                FaultSpec::MtaCrashRestart { host, at, downtime } => {
                    crashes.push((host.clone(), FaultWindow::new(*at, *at + *downtime)));
                }
            }
        }
        FaultPlan { profile: profile.name, net, dns, smtp, greylist_down, crashes }
    }

    /// Every window edge across every subsystem, sorted and deduplicated —
    /// the instants a fault actor turns into engine events.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut edges = Vec::new();
        let mut push = |w: &FaultWindow| {
            edges.push(w.from);
            edges.push(w.until);
        };
        for (_, w) in &self.net.outages {
            push(w);
        }
        for (_, w) in &self.net.loss {
            push(w);
        }
        for (_, w) in &self.net.spikes {
            push(w);
        }
        for w in &self.dns.servfail {
            push(w);
        }
        for (_, w) in &self.dns.slow {
            push(w);
        }
        for (_, _, w) in &self.smtp.aborts {
            push(w);
        }
        for w in &self.greylist_down {
            push(w);
        }
        for (_, w) in &self.crashes {
            push(w);
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty()
            && self.dns.is_empty()
            && self.smtp.is_empty()
            && self.greylist_down.is_empty()
            && self.crashes.is_empty()
    }

    /// Crash windows scheduled for `host`, in declaration order.
    pub fn crash_windows_for(&self, host: &str) -> Vec<FaultWindow> {
        self.crashes.iter().filter(|(h, _)| h == host).map(|&(_, w)| w).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, d)
    }

    #[test]
    fn windows_are_half_open() {
        let w = window_mins(5, 10);
        assert!(!w.contains(mins(4)));
        assert!(w.contains(mins(5)));
        assert!(w.contains(mins(9)));
        assert!(!w.contains(mins(10)));
    }

    #[test]
    fn compile_is_deterministic() {
        let a = FaultPlan::compile(&FaultProfile::all_faults(), 7);
        let b = FaultPlan::compile(&FaultProfile::all_faults(), 7);
        assert_eq!(a, b);
        let c = FaultPlan::compile(&FaultProfile::all_faults(), 8);
        assert_ne!(a.net.seed, c.net.seed, "seed must reach the plan");
    }

    #[test]
    fn link_drop_is_a_pure_function_of_identity_and_time() {
        let plan = FaultPlan::compile(&FaultProfile::flaky_net(), 7);
        let t = mins(3);
        let mut first = plan.net.clone();
        let mut second = plan.net.clone();
        // Perturb the call order on the second copy; decisions must match.
        let _ = second.link_drop(ip(9), mins(4));
        for d in 0..32u8 {
            assert_eq!(
                first.link_drop(ip(d), t),
                second.link_drop(ip(d), t),
                "draw order leaked into the decision for .{d}"
            );
        }
    }

    #[test]
    fn link_drop_rate_tracks_probability() {
        let plan = FaultPlan::compile(&FaultProfile::flaky_net(), 11);
        let mut net = plan.net.clone();
        let t = mins(1);
        let drops =
            (0..1000u32).filter(|i| net.link_drop(Ipv4Addr::from(0x0A00_0000 + i), t)).count();
        assert!((200..400).contains(&drops), "0.30 loss gave {drops}/1000 drops");
        assert_eq!(net.stats.link_dropped, drops as u64);
        // Outside the window nothing drops.
        assert!(!net.link_drop(ip(1), mins(50)));
    }

    #[test]
    fn host_outage_and_spike_windows_apply() {
        let plan = FaultPlan::compile(&FaultProfile::flaky_net(), 3);
        let mut net = plan.net;
        assert!(net.host_out("mail.victim.example", mins(1)));
        assert!(!net.host_out("mail.victim.example", mins(30)));
        assert!(!net.host_out("other.example", mins(1)));
        assert_eq!(net.extra_latency(mins(6)), SimDuration::from_millis(800));
        assert_eq!(net.extra_latency(mins(20)), SimDuration::ZERO);
        assert_eq!(net.stats.outage_timeouts, 1);
        assert_eq!(net.stats.latency_spiked, 1);
    }

    #[test]
    fn dns_faults_apply_inside_windows_only() {
        let plan = FaultPlan::compile(&FaultProfile::dns_degraded(), 3);
        let mut dns = plan.dns;
        assert!(dns.servfail(mins(5)));
        assert!(!dns.servfail(mins(20)));
        assert_eq!(dns.extra_latency(mins(20)), SimDuration::from_secs(2));
        assert_eq!(dns.extra_latency(mins(40)), SimDuration::ZERO);
        assert_eq!(dns.stats, DnsFaultStats { servfails: 1, slowed: 1 });
    }

    #[test]
    fn smtp_abort_decisions_are_stable_and_counted() {
        let plan = FaultPlan::compile(&FaultProfile::smtp_chaos(), 5);
        let mut a = plan.smtp.clone();
        let mut b = plan.smtp.clone();
        for d in 0..64u8 {
            assert_eq!(a.abort(ip(d), mins(2)), b.abort(ip(d), mins(2)));
        }
        let fired = a.stats.dropped_after_data + a.stats.shutdown_421 + a.stats.tarpitted;
        assert!(fired > 0, "with three flavours at 0.2-0.35, 64 sessions must hit some abort");
        // Outside the windows nothing fires.
        assert_eq!(a.abort(ip(1), mins(60)), None);
    }

    #[test]
    fn boundaries_are_sorted_and_deduped() {
        let plan = FaultPlan::compile(&FaultProfile::all_faults(), 1);
        let edges = plan.boundaries();
        assert!(!edges.is_empty());
        assert!(edges.windows(2).all(|p| p[0] < p[1]), "sorted strictly: {edges:?}");
        // smtp_chaos has three abort specs sharing the same window; it must
        // contribute its edges once.
        let zero_count = edges.iter().filter(|&&e| e == SimTime::ZERO).count();
        assert_eq!(zero_count, 1);
    }

    #[test]
    fn store_degraded_touches_only_the_greylist() {
        let plan = FaultPlan::compile(&FaultProfile::store_degraded(), 7);
        assert!(plan.net.is_empty());
        assert!(plan.dns.is_empty());
        assert!(plan.smtp.is_empty());
        assert_eq!(plan.greylist_down, vec![window_mins(5, 15)]);
        assert_eq!(plan.boundaries(), vec![mins(5), mins(15)]);
        // The resilience sweep's catalog is pinned to its original five.
        assert!(FaultProfile::catalog().iter().all(|p| p.name != "store_degraded"));
    }

    #[test]
    fn crash_restart_compiles_to_a_crash_window() {
        let profile =
            FaultProfile::crash_restart("mail.victim.example", mins(10), SimDuration::from_mins(5));
        let plan = FaultPlan::compile(&profile, 7);
        assert!(plan.net.is_empty());
        assert!(plan.dns.is_empty());
        assert!(plan.smtp.is_empty());
        assert!(plan.greylist_down.is_empty());
        assert!(!plan.is_empty(), "a crash is a fault");
        assert_eq!(plan.crashes, vec![("mail.victim.example".to_owned(), window_mins(10, 15))]);
        assert_eq!(plan.crash_windows_for("mail.victim.example"), vec![window_mins(10, 15)]);
        assert!(plan.crash_windows_for("other.example").is_empty());
        // Both edges — the crash and the restart — fire as engine events.
        assert_eq!(plan.boundaries(), vec![mins(10), mins(15)]);
        // The resilience sweep's catalog stays pinned to its original five.
        assert!(FaultProfile::catalog().iter().all(|p| p.name != "crash_restart"));
    }

    #[test]
    fn empty_profile_compiles_to_empty_plan() {
        let plan = FaultPlan::compile(&FaultProfile::none(), 9);
        assert!(plan.is_empty());
        assert!(plan.boundaries().is_empty());
        assert!(!FaultPlan::compile(&FaultProfile::all_faults(), 9).is_empty());
    }
}
