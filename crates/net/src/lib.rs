//! Simulated IPv4 internet substrate for the `spamward` suite.
//!
//! The paper's measurements run over two very different "networks": the real
//! Internet (the zmap DNS-ANY and SMTP banner-grab scans behind Fig. 2) and a
//! two-VM lab (the malware efficacy experiments behind Table II and Figs.
//! 3–5). This crate models the parts of both that the measurements actually
//! observe:
//!
//! * [`Host`]s own one or more IPv4 addresses and a per-port TCP state
//!   ([`PortState::Open`] answers SYNs, [`Closed`] resets, [`Filtered`]
//!   drops) — exactly the signal the banner grab records.
//! * [`Availability`] models machines that are down or *flapping*: the
//!   paper's nolisting detector must distinguish a deliberately dead primary
//!   MX from one that happened to be off during a scan, so hosts can be
//!   deterministically up/down per *epoch* (scan round).
//! * [`Network`] is the registry tying IPs to hosts and answering connection
//!   attempts ([`Network::connect`]) and SYN probes ([`Network::probe`]),
//!   with a pluggable [`LatencyModel`].
//!
//! Everything is deterministic given the seed material passed in.
//!
//! [`Closed`]: PortState::Closed
//! [`Filtered`]: PortState::Filtered

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
mod host;
mod ip;
mod latency;
pub mod metrics;
mod network;

pub use faults::{
    DnsFaults, FaultPlan, FaultProfile, FaultSpec, FaultWindow, NetFaults, SmtpAbortKind,
    SmtpFaults,
};
pub use host::{Availability, Host, HostBuilder, HostId, PortState};
pub use ip::{indexed_ip, net24, IpPool};
pub use latency::LatencyModel;
pub use network::{host_seed, ConnectError, Connection, Network, ProbeResult};

/// The SMTP port, used pervasively across the suite.
pub const SMTP_PORT: u16 = 25;
