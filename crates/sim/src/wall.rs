//! The sanctioned host-clock boundary.
//!
//! Everything in the suite computes with virtual [`SimTime`]; the only
//! legitimate consumer of the host clock is the real-network transport
//! (`spamward_smtp::tcp`), where elapsed wall time *is* the experiment's
//! time axis. Lint rule D1 (`cargo run -p spamward-lint`) bans
//! `Instant::now()` and friends everywhere except this module, so every
//! wall-clock dependency in the workspace is an explicit [`Clock`]
//! injection that traces back here.

use crate::time::SimTime;
use std::cell::Cell;
use std::time::Instant;

/// A source of the current virtual time.
///
/// Protocol code takes `&dyn Clock` instead of calling a time API, which
/// keeps it deterministic under simulation (inject [`ManualClock`]) and
/// honest on real sockets (inject [`WallClock`]).
pub trait Clock {
    /// The current virtual time.
    fn now(&self) -> SimTime;
}

/// Maps host-clock instants to [`SimTime`], counting from its creation.
///
/// This is the one place in the workspace allowed to read
/// `std::time::Instant`.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// A clock whose `t=0` is "now".
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// A hand-advanced clock for tests and simulations: reads return whatever
/// was last [`set`](ManualClock::set), so runs are reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Cell<SimTime>,
}

impl ManualClock {
    /// A clock stopped at `t=0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock stopped at `start`.
    pub fn at(start: SimTime) -> Self {
        ManualClock { now: Cell::new(start) }
    }

    /// Moves the clock to `now` (monotonicity is the caller's business).
    pub fn set(&self, now: SimTime) {
        self.now.set(now);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_reads_what_was_set() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.set(SimTime::from_secs(42));
        assert_eq!(clock.now(), SimTime::from_secs(42));
        let later = ManualClock::at(SimTime::from_secs(7));
        assert_eq!(later.now(), SimTime::from_secs(7));
    }
}
