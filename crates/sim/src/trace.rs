//! A bounded, structured trace recorder.
//!
//! Experiments attach a [`Tracer`] to their state so that tests and the
//! `repro` harness can assert on — and print — *why* a run produced its
//! numbers (e.g. "Kelihos retried at t+5m02s and was greylisted again").
//! The recorder is bounded so pathological runs cannot exhaust memory.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// Dotted category, e.g. `"smtp.reject"` or `"dns.query"`.
    pub category: String,
    /// Human-readable detail line.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.detail)
    }
}

/// A bounded in-memory trace recorder.
///
/// When the capacity is exceeded the *oldest* events are dropped and
/// [`Tracer::dropped`] counts them; the tail of a run is usually the
/// interesting part.
///
/// # Example
///
/// ```
/// use spamward_sim::trace::Tracer;
/// use spamward_sim::SimTime;
///
/// let mut t = Tracer::with_capacity(2);
/// t.record(SimTime::from_secs(1), "a", "one");
/// t.record(SimTime::from_secs(2), "a", "two");
/// t.record(SimTime::from_secs(3), "b", "three");
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.events().len(), 2);
/// assert_eq!(t.events().next().unwrap().detail, "two");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tracer {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Tracer {
    /// Default bound on retained events.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates an enabled tracer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an enabled tracer retaining at most `capacity` events.
    ///
    /// A capacity of zero retains nothing: every recorded event is counted
    /// as dropped, so event *counts* stay observable even when retention is
    /// turned off.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer { events: std::collections::VecDeque::new(), capacity, dropped: 0, enabled: true }
    }

    /// Creates a tracer that records nothing (zero overhead beyond the
    /// branch).
    pub fn disabled() -> Self {
        Tracer {
            events: std::collections::VecDeque::new(),
            capacity: 1,
            dropped: 0,
            enabled: false,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, category: &str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            category: category.to_owned(),
            detail: detail.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events whose category starts with `prefix`.
    pub fn in_category<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category.starts_with(prefix))
    }

    /// Counts retained events whose category starts with `prefix`.
    pub fn count(&self, prefix: &str) -> usize {
        self.in_category(prefix).count()
    }

    /// Clears all retained events (keeps the dropped counter).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Tracer::new();
        tr.record(t(1), "dns.query", "MX foo.net");
        tr.record(t(2), "smtp.reject", "450 greylisted");
        let evs: Vec<_> = tr.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].category, "dns.query");
        assert_eq!(evs[1].at, t(2));
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut tr = Tracer::with_capacity(3);
        for i in 0..10 {
            tr.record(t(i), "c", format!("e{i}"));
        }
        assert_eq!(tr.dropped(), 7);
        let details: Vec<_> = tr.events().map(|e| e.detail.clone()).collect();
        assert_eq!(details, vec!["e7", "e8", "e9"]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut tr = Tracer::with_capacity(0);
        assert!(tr.is_enabled());
        for i in 0..5 {
            tr.record(t(i), "c", format!("e{i}"));
        }
        assert_eq!(tr.events().len(), 0, "nothing is retained at capacity 0");
        assert_eq!(tr.dropped(), 5, "every record still counts as dropped");
        tr.clear();
        assert_eq!(tr.dropped(), 5);
    }

    #[test]
    fn one_capacity_keeps_only_the_latest() {
        let mut tr = Tracer::with_capacity(1);
        tr.record(t(1), "c", "first");
        assert_eq!(tr.dropped(), 0);
        tr.record(t(2), "c", "second");
        tr.record(t(3), "c", "third");
        assert_eq!(tr.dropped(), 2);
        let evs: Vec<_> = tr.events().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].detail, "third");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.record(t(1), "c", "x");
        assert_eq!(tr.events().len(), 0);
        assert_eq!(tr.dropped(), 0);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn category_filtering() {
        let mut tr = Tracer::new();
        tr.record(t(1), "smtp.reject", "a");
        tr.record(t(2), "smtp.accept", "b");
        tr.record(t(3), "dns.query", "c");
        assert_eq!(tr.count("smtp"), 2);
        assert_eq!(tr.count("smtp.reject"), 1);
        assert_eq!(tr.count("dns"), 1);
        assert_eq!(tr.count("nope"), 0);
    }

    #[test]
    fn display_is_informative() {
        let ev = TraceEvent { at: t(302), category: "smtp.reject".into(), detail: "450".into() };
        assert_eq!(ev.to_string(), "[t+5m02s] smtp.reject: 450");
    }

    #[test]
    fn clear_keeps_dropped_counter() {
        let mut tr = Tracer::with_capacity(1);
        tr.record(t(1), "c", "a");
        tr.record(t(2), "c", "b");
        assert_eq!(tr.dropped(), 1);
        tr.clear();
        assert_eq!(tr.events().len(), 0);
        assert_eq!(tr.dropped(), 1);
    }
}
