//! The event scheduler: a classic discrete-event simulation loop.
//!
//! [`Simulation<S>`] owns the experiment state `S` and a time-ordered queue
//! of events. An event is a one-shot closure receiving a [`Ctx<S>`], through
//! which it can read the clock, mutate the state, and schedule further
//! events. Two events at the same instant run in the order they were
//! scheduled (FIFO by sequence number), which makes runs fully deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

type EventFn<S> = Box<dyn FnOnce(&mut Ctx<'_, S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Why [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The configured event budget was exhausted (runaway protection).
    BudgetExhausted,
    /// An event called [`Ctx::stop`].
    Stopped,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::Drained => "event queue drained",
            RunOutcome::HorizonReached => "horizon reached",
            RunOutcome::BudgetExhausted => "event budget exhausted",
            RunOutcome::Stopped => "stopped by event",
        };
        f.write_str(s)
    }
}

/// The view of the simulation an event executes against.
///
/// Borrowed mutably for the duration of one event; schedules issued here are
/// committed to the queue when the event returns.
pub struct Ctx<'a, S> {
    now: SimTime,
    /// The experiment state. Events mutate the world through this.
    pub state: &'a mut S,
    pending: Vec<(SimTime, EventFn<S>)>,
    stop: bool,
}

impl<'a, S> Ctx<'a, S> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the current event's time);
    /// scheduling *at* the current instant is allowed and runs after all
    /// events already queued for it.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Ctx<'_, S>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        self.pending.push((at, Box::new(event)));
    }

    /// Schedules `event` to run `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Ctx<'_, S>) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }

    /// Requests the run loop to stop after this event completes.
    ///
    /// Pending events remain queued; a subsequent [`Simulation::run`] resumes
    /// them.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Schedules `tick` to run every `interval`, starting one interval from
/// now, until it returns `false` (or the simulation stops it via horizon/
/// budget). The periodic-maintenance pattern (greylist sweeps, log
/// rotation) in one place.
///
/// # Panics
///
/// Panics if `interval` is zero (the event would loop at a single instant).
pub fn repeat_every<S: 'static>(
    ctx: &mut Ctx<'_, S>,
    interval: crate::time::SimDuration,
    tick: impl FnMut(&mut Ctx<'_, S>) -> bool + 'static,
) {
    assert!(!interval.is_zero(), "repeat_every needs a nonzero interval");
    fn arm<S: 'static>(
        ctx: &mut Ctx<'_, S>,
        interval: crate::time::SimDuration,
        mut tick: impl FnMut(&mut Ctx<'_, S>) -> bool + 'static,
    ) {
        ctx.schedule_in(interval, move |c| {
            if tick(c) {
                arm(c, interval, tick);
            }
        });
    }
    arm(ctx, interval, tick);
}

/// A deterministic discrete-event simulation over state `S`.
///
/// See the [crate docs](crate) for a worked example.
pub struct Simulation<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    state: S,
    processed: u64,
    high_water: usize,
    horizon: Option<SimTime>,
    budget: Option<u64>,
}

impl<S: fmt::Debug> fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("state", &self.state)
            .finish()
    }
}

impl<S> Simulation<S> {
    /// Creates a simulation at `t=0` over `state`.
    pub fn new(state: S) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            state,
            processed: 0,
            high_water: 0,
            horizon: None,
            budget: None,
        }
    }

    /// Stops the run loop once the clock would pass `horizon`.
    ///
    /// Events scheduled exactly at the horizon still run; later ones stay
    /// queued.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Caps the total number of processed events (runaway protection for
    /// property tests).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the experiment state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the experiment state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the queue has ever been (instrumentation for capacity
    /// planning; a drained queue leaves this untouched).
    pub fn queue_high_water(&self) -> usize {
        self.high_water
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Ctx<'_, S>) + 'static) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, run: Box::new(event) });
        self.high_water = self.high_water.max(self.queue.len());
    }

    /// Schedules `event` to run `delay` after the current clock.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        event: impl FnOnce(&mut Ctx<'_, S>) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs events until the queue drains, the horizon or event budget is
    /// hit, or an event calls [`Ctx::stop`].
    pub fn run(&mut self) -> RunOutcome {
        loop {
            if let Some(budget) = self.budget {
                if self.processed >= budget {
                    return RunOutcome::BudgetExhausted;
                }
            }
            let Some(next) = self.queue.peek() else {
                return RunOutcome::Drained;
            };
            if let Some(h) = self.horizon {
                if next.at > h {
                    self.now = h;
                    return RunOutcome::HorizonReached;
                }
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.now = ev.at;
            self.processed += 1;

            let mut ctx =
                Ctx { now: self.now, state: &mut self.state, pending: Vec::new(), stop: false };
            (ev.run)(&mut ctx);
            let Ctx { pending, stop, .. } = ctx;
            for (at, run) in pending {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Scheduled { at, seq, run });
            }
            self.high_water = self.high_water.max(self.queue.len());
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Runs until `pred(state)` holds (checked after every event) or the
    /// queue drains. Returns the final outcome.
    pub fn run_until(&mut self, mut pred: impl FnMut(&S) -> bool) -> RunOutcome {
        loop {
            if pred(&self.state) {
                return RunOutcome::Stopped;
            }
            let Some(next_at) = self.queue.peek().map(|e| e.at) else {
                return RunOutcome::Drained;
            };
            if let Some(h) = self.horizon {
                if next_at > h {
                    self.now = h;
                    return RunOutcome::HorizonReached;
                }
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.now = ev.at;
            self.processed += 1;
            let mut ctx =
                Ctx { now: self.now, state: &mut self.state, pending: Vec::new(), stop: false };
            (ev.run)(&mut ctx);
            let Ctx { pending, stop, .. } = ctx;
            for (at, run) in pending {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Scheduled { at, seq, run });
            }
            self.high_water = self.high_water.max(self.queue.len());
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_time_order() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_secs(30), |c| c.state.push(c.now().as_secs()));
        sim.schedule_at(SimTime::from_secs(10), |c| c.state.push(c.now().as_secs()));
        sim.schedule_at(SimTime::from_secs(20), |c| c.state.push(c.now().as_secs()));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.state(), &vec![10, 20, 30]);
        assert_eq!(sim.processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            sim.schedule_at(t, move |c| c.state.push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_cascade() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_in(SimDuration::from_secs(1), |c| {
            *c.state += 1;
            c.schedule_in(SimDuration::from_secs(1), |c| {
                *c.state += 1;
                c.schedule_in(SimDuration::from_secs(1), |c| *c.state += 1);
            });
        });
        sim.run();
        assert_eq!(*sim.state(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn horizon_stops_but_preserves_queue() {
        let mut sim = Simulation::new(0u32).with_horizon(SimTime::from_secs(10));
        sim.schedule_at(SimTime::from_secs(10), |c| *c.state += 1);
        sim.schedule_at(SimTime::from_secs(11), |c| *c.state += 100);
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*sim.state(), 1, "event exactly at horizon must run");
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn budget_stops_runaway() {
        let mut sim = Simulation::new(0u64).with_event_budget(100);
        fn reschedule(c: &mut Ctx<'_, u64>) {
            *c.state += 1;
            c.schedule_in(SimDuration::from_secs(1), reschedule);
        }
        sim.schedule_in(SimDuration::from_secs(1), reschedule);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
        assert_eq!(*sim.state(), 100);
    }

    #[test]
    fn stop_from_event() {
        let mut sim = Simulation::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1), |c| {
            *c.state += 1;
            c.stop();
        });
        sim.schedule_in(SimDuration::from_secs(2), |c| *c.state += 100);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(*sim.state(), 1);
        // Resume processes the remainder.
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*sim.state(), 101);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Simulation::new(0u32);
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(i), |c| *c.state += 1);
        }
        assert_eq!(sim.run_until(|s| *s >= 4), RunOutcome::Stopped);
        assert_eq!(*sim.state(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_at(SimTime::from_secs(10), |c| {
            c.schedule_at(SimTime::from_secs(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn repeat_every_ticks_until_told_to_stop() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::ZERO, |c| {
            repeat_every(c, SimDuration::from_secs(10), |c| {
                c.state.push(c.now().as_secs());
                c.state.len() < 4
            });
        });
        sim.run();
        assert_eq!(sim.state(), &vec![10, 20, 30, 40]);
    }

    #[test]
    fn repeat_every_respects_horizon() {
        let mut sim = Simulation::new(0u64).with_horizon(SimTime::from_secs(35));
        sim.schedule_at(SimTime::ZERO, |c| {
            repeat_every(c, SimDuration::from_secs(10), |c| {
                *c.state += 1;
                true
            });
        });
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert_eq!(*sim.state(), 3);
    }

    #[test]
    #[should_panic(expected = "nonzero interval")]
    fn repeat_every_zero_interval_panics() {
        let mut sim = Simulation::new(());
        sim.schedule_at(SimTime::ZERO, |c| {
            repeat_every(c, SimDuration::ZERO, |_| true);
        });
        sim.run();
    }

    #[test]
    fn queue_high_water_tracks_peak_depth() {
        let mut sim = Simulation::new(0u32);
        assert_eq!(sim.queue_high_water(), 0);
        for i in 1..=5u64 {
            sim.schedule_at(SimTime::from_secs(i), |c| *c.state += 1);
        }
        assert_eq!(sim.queue_high_water(), 5);
        sim.run();
        // Draining the queue never lowers the mark; cascades raise it.
        assert_eq!(sim.queue_high_water(), 5);
        sim.schedule_in(SimDuration::from_secs(1), |c| {
            for _ in 0..9 {
                c.schedule_in(SimDuration::from_secs(1), |c| *c.state += 1);
            }
        });
        sim.run();
        assert_eq!(sim.queue_high_water(), 9, "cascade from inside an event counts");
    }

    #[test]
    fn same_instant_schedule_from_event_runs() {
        let mut sim = Simulation::new(Vec::<&'static str>::new());
        sim.schedule_at(SimTime::from_secs(1), |c| {
            c.state.push("first");
            c.schedule_at(c.now(), |c| c.state.push("second"));
        });
        sim.run();
        assert_eq!(sim.state(), &vec!["first", "second"]);
    }
}
