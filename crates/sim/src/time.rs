//! Virtual time: instants and durations with microsecond resolution.
//!
//! The paper reports delays at second granularity ("300 seconds", "6:02
//! minutes"), but the SMTP substrate models sub-second connection latencies,
//! so the engine keeps microseconds internally. `u64` microseconds cover
//! ~584 000 years of virtual time — far beyond the four-month deployment
//! experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time (non-negative).
///
/// # Example
///
/// ```
/// use spamward_sim::SimDuration;
/// let d = SimDuration::from_mins(5);
/// assert_eq!(d.as_secs(), 300);
/// assert_eq!(format!("{d}"), "5m00s");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400 * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Whether this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub const fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    /// Formats as the most compact of `NNus`, `N.NNNs`, `MmSSs`, `HhMMmSSs`
    /// or `DdHHh` — the forms used throughout the paper's tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < 1_000_000 {
            return write!(f, "{us}us");
        }
        let total_secs = us / 1_000_000;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}h")
        } else if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}s")
        } else {
            let frac = (us % 1_000_000) / 1_000;
            if frac == 0 {
                write!(f, "{s}s")
            } else {
                write!(f, "{s}.{frac:03}s")
            }
        }
    }
}

/// An instant of virtual time, measured from the start of the simulation.
///
/// # Example
///
/// ```
/// use spamward_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_hours(6);
/// assert_eq!(t.elapsed_since(SimTime::ZERO), SimDuration::from_secs(21_600));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `s` seconds after the simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant `us` microseconds after the simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since the simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn elapsed_since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "elapsed_since: earlier instant {earlier} is after {self}");
        SimDuration(self.0 - earlier.0)
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is later.
    pub const fn checked_elapsed_since(self, earlier: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(earlier.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_micros())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.elapsed_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(60), SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(24), SimDuration::from_days(1));
        assert_eq!(SimDuration::from_millis(1_000), SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_micros(1_000), SimDuration::from_millis(1));
    }

    #[test]
    fn duration_from_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(607.5).as_secs(), 607);
        assert_eq!(SimDuration::from_secs_f64(607.5).as_micros(), 607_500_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_f64_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(90);
        let b = SimDuration::from_secs(30);
        assert_eq!(a + b, SimDuration::from_mins(2));
        assert_eq!(a - b, SimDuration::from_mins(1));
        assert_eq!(b * 3, a);
        assert_eq!(a / 3, b);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_secs(60)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn duration_display_forms() {
        assert_eq!(SimDuration::from_micros(250).to_string(), "250us");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42s");
        assert_eq!(SimDuration::from_secs(302).to_string(), "5m02s");
        assert_eq!(SimDuration::from_secs(21_600).to_string(), "6h00m00s");
        assert_eq!(SimDuration::from_days(5).to_string(), "5d00h");
    }

    #[test]
    fn time_elapsed_and_ordering() {
        let t0 = SimTime::from_secs(100);
        let t1 = t0 + SimDuration::from_secs(200);
        assert!(t1 > t0);
        assert_eq!(t1.elapsed_since(t0), SimDuration::from_secs(200));
        assert_eq!(t1 - t0, SimDuration::from_secs(200));
        assert_eq!(t0.checked_elapsed_since(t1), None);
        assert_eq!(t1 - SimDuration::from_secs(200), t0);
    }

    #[test]
    #[should_panic(expected = "elapsed_since")]
    fn time_elapsed_backwards_panics() {
        let t0 = SimTime::from_secs(100);
        let _ = t0.elapsed_since(t0 + SimDuration::from_secs(1));
    }

    #[test]
    fn time_display() {
        assert_eq!(SimTime::from_secs(302).to_string(), "t+5m02s");
    }

    #[test]
    fn duration_mul_f64() {
        let d = SimDuration::from_secs(100) * 1.5;
        assert_eq!(d, SimDuration::from_secs(150));
    }
}
