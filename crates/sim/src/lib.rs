//! Deterministic discrete-event simulation engine for the `spamward` suite.
//!
//! The paper's experiments span wall-clock horizons from 30 minutes (the
//! per-sample malware runs) to 25 hours (the Kelihos long-run of Fig. 4) to
//! four months (the university deployment behind Fig. 5). Re-running those in
//! real time is obviously out of the question, so every `spamward` experiment
//! executes on a virtual clock driven by this engine.
//!
//! The engine is intentionally small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`Simulation`] — a priority-queue scheduler generic over the experiment
//!   state `S`; events are `FnOnce(&mut Ctx<S>)` closures and ties are broken
//!   FIFO by sequence number, so a run is a pure function of its inputs.
//! * [`Actor`] / [`ActorSim`] — a process/timer layer on top: named actors
//!   that schedule their own next wake-up ([`Wake`]), with [`EngineStats`]
//!   accounting for the episodes they run.
//! * [`DetRng`] — a seedable, fork-able xoshiro256++ random stream whose
//!   output is stable across platforms and `rand` versions; experiments fork
//!   one named substream per concern so adding a new consumer never perturbs
//!   existing draws.
//! * [`trace`] — an optional bounded event recorder used by tests and by the
//!   `repro` harness to explain *why* a run produced its numbers.
//! * [`shard`] — a fixed, stable-hash partition of one seeded world into
//!   independent shards ([`ShardPlan`]) plus the ordered worker-pool
//!   executor ([`shard::run_partitioned`] / [`shard::run_sharded`]) that
//!   makes `--shards N` byte-identical to a serial run.
//!
//! # Example
//!
//! ```
//! use spamward_sim::{Simulation, SimTime, SimDuration};
//!
//! let mut sim = Simulation::new(0u32);
//! sim.schedule_in(SimDuration::from_secs(5), |ctx| {
//!     *ctx.state += 1;
//!     ctx.schedule_in(SimDuration::from_secs(10), |ctx| *ctx.state += 10);
//! });
//! sim.run();
//! assert_eq!(sim.now(), SimTime::from_secs(15));
//! assert_eq!(*sim.state(), 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod event;
mod rng;
pub mod shard;
mod time;
pub mod trace;
pub mod wall;

pub use actor::{Actor, ActorSim, EngineStats, OutcomeTally, SampleClock, Wake};
pub use event::{repeat_every, Ctx, RunOutcome, Simulation};
pub use rng::DetRng;
pub use shard::ShardPlan;
pub use time::{SimDuration, SimTime};
pub use wall::{Clock, ManualClock, WallClock};
