//! Deterministic, fork-able random streams.
//!
//! Experiments need randomness (population synthesis, jittered retry delays,
//! connection latencies) but results must be exactly reproducible from a
//! single `u64` seed, across platforms and toolchain versions. We therefore
//! implement xoshiro256++ directly: no external RNG crate sits between a
//! seed and the numbers an experiment sees, and `spamward-lint` rule D2
//! enforces that every random draw in the workspace flows through this type.
//!
//! The key affordance is [`DetRng::fork`]: deriving an independent substream
//! from a *label*. Consumers fork one stream per concern ("population",
//! "latency", "kelihos-jitter", ...) so that adding a new consumer — or a new
//! draw inside one consumer — never shifts the values seen by the others.

/// A deterministic xoshiro256++ random stream.
///
/// # Example
///
/// ```
/// use spamward_sim::DetRng;
///
/// let mut a = DetRng::seed(42).fork("latency");
/// let mut b = DetRng::seed(42).fork("latency");
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Different labels give independent streams.
/// let mut c = DetRng::seed(42).fork("jitter");
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and label hashing (reference
/// initializer recommended by the xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a stream from a 64-bit seed.
    ///
    /// The four xoshiro words are expanded from the seed with SplitMix64, as
    /// recommended by the generator's authors; a zero seed is fine.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Derives an independent substream identified by `label`.
    ///
    /// Forking does not advance `self`; the child is a pure function of the
    /// parent's current state and the label.
    pub fn fork(&self, label: &str) -> DetRng {
        // FNV-1a over the label, mixed with the parent state via SplitMix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            *w = splitmix64(&mut sm) ^ self.s[i].rotate_left(i as u32 * 7 + 1);
        }
        // xoshiro must not be seeded with all zeros.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derives an independent substream identified by a numeric index.
    ///
    /// Convenient for per-entity streams (per-domain, per-bot, per-message).
    pub fn fork_idx(&self, label: &str, idx: u64) -> DetRng {
        let mut child = self.fork(label);
        let mut sm = idx ^ 0xA076_1D64_78BD_642F;
        for w in child.s.iter_mut() {
            *w ^= splitmix64(&mut sm);
        }
        if child.s == [0, 0, 0, 0] {
            child.s[0] = 1;
        }
        child
    }

    fn next(&mut self) -> u64 {
        // xoshiro256++ reference algorithm.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free-enough mapping is overkill here; the
        // simple widening multiply keeps determinism and near-uniformity.
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64: empty range {lo}..{hi}");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// The next 32 uniform bits (the high half of one 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_label_sensitive() {
        let root = DetRng::seed(1);
        assert_eq!(root.fork("x"), root.fork("x"));
        assert_ne!(root.fork("x"), root.fork("y"));
        assert_ne!(root.fork_idx("x", 0), root.fork_idx("x", 1));
        assert_eq!(root.fork_idx("x", 3), root.fork_idx("x", 3));
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut a = DetRng::seed(5);
        let mut b = DetRng::seed(5);
        let _ = b.fork("child");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_vector_is_stable() {
        // Regression pin: if the generator implementation changes, every
        // experiment in the suite silently changes. Keep this vector.
        let mut r = DetRng::seed(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = DetRng::seed(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
        assert!(got.iter().any(|&v| v != 0));
    }

    #[test]
    fn unit_f64_in_range_and_varied() {
        let mut r = DetRng::seed(3);
        let vals: Vec<f64> = (0..1_000).map(|_| r.unit_f64()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = DetRng::seed(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::seed(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..10_000) {
            let mut r = DetRng::seed(seed);
            for _ in 0..32 {
                prop_assert!(r.below(n) < n);
            }
        }

        #[test]
        fn prop_range_f64_in_range(seed in any::<u64>(), lo in -1e6f64..0.0, hi in 1.0f64..1e6) {
            let mut r = DetRng::seed(seed);
            let v = r.range_f64(lo, hi);
            prop_assert!(v >= lo && v < hi);
        }

        #[test]
        fn prop_fork_deterministic(seed in any::<u64>(), label in "[a-z]{1,12}") {
            let root = DetRng::seed(seed);
            let mut a = root.fork(&label);
            let mut b = root.fork(&label);
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
