//! A lightweight process/timer layer over the event engine.
//!
//! An [`Actor`] is a named process that owns its own retry/wake schedule:
//! on every wake-up it acts on the shared state and returns a [`Wake`]
//! telling the scheduler when to run it next. [`ActorSim`] turns a set of
//! actors into self-rescheduling timer events on a [`Simulation`], so the
//! engine's same-instant FIFO ordering applies unchanged — two actors due
//! at one instant run in the order their wake-ups were scheduled, which
//! makes an episode a pure function of its inputs.
//!
//! Alongside the run loop, [`EngineStats`] accumulates plain-data
//! accounting (events executed, queue high-water, per-actor event counts,
//! run outcomes) that higher layers export as metrics.

use crate::event::{Ctx, RunOutcome, Simulation};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// What an actor wants the scheduler to do after a wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Wake again at this absolute time (clamped to the current instant
    /// if it is already in the past — a late timer fires immediately).
    At(SimTime),
    /// Wake again after this delay.
    In(SimDuration),
    /// Nothing left to do; the actor receives no further wake-ups.
    Idle,
}

/// A named process driven by the engine.
///
/// Implementations hold whatever queue or cursor they need; the engine only
/// sees opaque wake-ups. The name is a dotted category ("mta.send",
/// "botnet.chain") under which per-actor event counts are accounted.
pub trait Actor<S> {
    /// The actor's dotted category name.
    fn name(&self) -> &str;

    /// Performs one wake-up at `now` against the shared state and returns
    /// when to run next.
    fn wake(&mut self, now: SimTime, state: &mut S) -> Wake;
}

/// A fixed-interval virtual-time tick schedule, bounded by a horizon.
///
/// This is the timing core of telemetry samplers: given the instant a tick
/// just ran, it answers when (and whether) the next one is due. Keeping it
/// here — beside [`Wake`], with no knowledge of what gets sampled — lets
/// any actor layer (the MTA world sampler, future front ends) share one
/// deterministic cadence rule: ticks land at `first + k·interval` and stop
/// strictly after the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleClock {
    interval: SimDuration,
    horizon: SimTime,
}

impl SampleClock {
    /// A clock ticking every `interval` (must be non-zero) up to and
    /// including `horizon`.
    pub fn new(interval: SimDuration, horizon: SimTime) -> Self {
        assert!(interval > SimDuration::ZERO, "sample interval must be non-zero");
        SampleClock { interval, horizon }
    }

    /// The tick interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The last instant a tick may land on.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The instant of the tick after one at `now`, or `None` once the next
    /// tick would pass the horizon.
    pub fn next_after(&self, now: SimTime) -> Option<SimTime> {
        let next = now + self.interval;
        (next <= self.horizon).then_some(next)
    }
}

/// Tally of [`RunOutcome`]s across engine episodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Episodes whose queue drained completely.
    pub drained: u64,
    /// Episodes cut at their horizon with events still pending.
    pub horizon_reached: u64,
    /// Episodes stopped by the event budget.
    pub budget_exhausted: u64,
    /// Episodes stopped from inside an event.
    pub stopped: u64,
}

impl OutcomeTally {
    /// Records one run outcome.
    pub fn record(&mut self, outcome: RunOutcome) {
        match outcome {
            RunOutcome::Drained => self.drained += 1,
            RunOutcome::HorizonReached => self.horizon_reached += 1,
            RunOutcome::BudgetExhausted => self.budget_exhausted += 1,
            RunOutcome::Stopped => self.stopped += 1,
        }
    }

    /// Total episodes recorded.
    pub fn total(&self) -> u64 {
        self.drained + self.horizon_reached + self.budget_exhausted + self.stopped
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.drained += other.drained;
        self.horizon_reached += other.horizon_reached;
        self.budget_exhausted += other.budget_exhausted;
        self.stopped += other.stopped;
    }
}

/// Plain-data accounting for one or more engine episodes.
///
/// The sim crate stays free of observability dependencies: this struct is
/// raw material that `metrics.rs` modules in higher crates turn into
/// counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events executed across all episodes.
    pub events: u64,
    /// Deepest event queue observed in any episode.
    pub queue_high_water: u64,
    /// Per-actor-name event-count samples: one entry per actor instance
    /// per episode (histogram raw material, keyed by [`Actor::name`]).
    pub actor_events: BTreeMap<String, Vec<u64>>,
    /// How the episodes ended.
    pub outcomes: OutcomeTally,
}

impl EngineStats {
    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.events += other.events;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        for (name, samples) in &other.actor_events {
            self.actor_events.entry(name.clone()).or_default().extend(samples.iter().copied());
        }
        self.outcomes.merge(&other.outcomes);
    }

    /// True when no episode has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0 && self.outcomes.total() == 0
    }
}

struct ActorWorld<S, A> {
    state: S,
    actors: Vec<A>,
    counts: Vec<u64>,
}

/// Boxed because the closure type recurs into itself; `Box<dyn FnOnce>`
/// still satisfies the engine's `impl FnOnce + 'static` bound.
type WakeEvent<S, A> = Box<dyn FnOnce(&mut Ctx<'_, ActorWorld<S, A>>)>;

/// The self-rescheduling timer event driving actor `id`.
fn wake_event<S: 'static, A: Actor<S> + 'static>(id: usize) -> WakeEvent<S, A> {
    Box::new(move |ctx| {
        let now = ctx.now();
        let wake = {
            let world = &mut *ctx.state;
            world.counts[id] += 1;
            world.actors[id].wake(now, &mut world.state)
        };
        match wake {
            Wake::At(at) => ctx.schedule_at(at.max(now), wake_event::<S, A>(id)),
            Wake::In(delay) => ctx.schedule_in(delay, wake_event::<S, A>(id)),
            Wake::Idle => {}
        }
    })
}

/// Runs a set of [`Actor`]s over shared state `S` on the event engine.
///
/// `add_actor` schedules the first wake-up; every wake-up's returned
/// [`Wake`] schedules the next. One generic actor type per episode keeps
/// dispatch static; heterogeneous casts can wrap an enum.
///
/// # Example
///
/// ```
/// use spamward_sim::{Actor, ActorSim, SimDuration, SimTime, Wake};
///
/// struct Ticker(u32);
/// impl Actor<Vec<u64>> for Ticker {
///     fn name(&self) -> &str {
///         "ticker"
///     }
///     fn wake(&mut self, now: SimTime, log: &mut Vec<u64>) -> Wake {
///         log.push(now.as_secs());
///         self.0 -= 1;
///         if self.0 == 0 { Wake::Idle } else { Wake::In(SimDuration::from_secs(10)) }
///     }
/// }
///
/// let mut sim = ActorSim::new(Vec::new());
/// sim.add_actor(Ticker(3), SimTime::ZERO);
/// sim.run();
/// assert_eq!(sim.state(), &vec![0, 10, 20]);
/// ```
pub struct ActorSim<S: 'static, A: Actor<S> + 'static> {
    sim: Simulation<ActorWorld<S, A>>,
    outcome: Option<RunOutcome>,
}

impl<S: 'static, A: Actor<S> + 'static> ActorSim<S, A> {
    /// Creates an actor simulation at `t=0` over `state`.
    pub fn new(state: S) -> Self {
        ActorSim {
            sim: Simulation::new(ActorWorld { state, actors: Vec::new(), counts: Vec::new() }),
            outcome: None,
        }
    }

    /// Stops the run once the clock would pass `horizon` (wake-ups exactly
    /// at the horizon still fire; later ones stay queued).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.sim = self.sim.with_horizon(horizon);
        self
    }

    /// Caps the total number of processed events (runaway protection).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.sim = self.sim.with_event_budget(budget);
        self
    }

    /// Registers `actor` and schedules its first wake-up at `first_wake`
    /// (clamped to the current clock). Returns the actor's id.
    pub fn add_actor(&mut self, actor: A, first_wake: SimTime) -> usize {
        let id = {
            let world = self.sim.state_mut();
            world.actors.push(actor);
            world.counts.push(0);
            world.actors.len() - 1
        };
        let at = first_wake.max(self.sim.now());
        self.sim.schedule_at(at, wake_event::<S, A>(id));
        id
    }

    /// Runs wake-ups until every actor is idle, the horizon passes, or
    /// the event budget runs out.
    pub fn run(&mut self) -> RunOutcome {
        let outcome = self.sim.run();
        self.outcome = Some(outcome);
        outcome
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Shared access to the wrapped state.
    pub fn state(&self) -> &S {
        &self.sim.state().state
    }

    /// Exclusive access to the wrapped state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.sim.state_mut().state
    }

    /// Shared access to actor `id` (as returned by
    /// [`ActorSim::add_actor`]).
    pub fn actor(&self, id: usize) -> &A {
        &self.sim.state().actors[id]
    }

    /// Events executed so far.
    pub fn processed(&self) -> u64 {
        self.sim.processed()
    }

    /// Accounting for this episode: events, queue high-water, per-actor
    /// event counts, and — after [`ActorSim::run`] — the outcome.
    pub fn stats(&self) -> EngineStats {
        let world = self.sim.state();
        let mut actor_events: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (actor, count) in world.actors.iter().zip(&world.counts) {
            actor_events.entry(actor.name().to_owned()).or_default().push(*count);
        }
        let mut outcomes = OutcomeTally::default();
        if let Some(outcome) = self.outcome {
            outcomes.record(outcome);
        }
        EngineStats {
            events: self.sim.processed(),
            queue_high_water: self.sim.queue_high_water() as u64,
            actor_events,
            outcomes,
        }
    }

    /// Consumes the simulation, returning the state and the actors in
    /// registration order.
    pub fn into_parts(self) -> (S, Vec<A>) {
        let world = self.sim.into_state();
        (world.state, world.actors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    /// Logs `(time, id)` on every wake and reschedules after a jittered
    /// delay drawn from its own RNG stream.
    struct Jitter {
        id: u64,
        rng: DetRng,
        remaining: u32,
    }

    impl Actor<Vec<(u64, u64)>> for Jitter {
        fn name(&self) -> &str {
            "jitter"
        }
        fn wake(&mut self, now: SimTime, log: &mut Vec<(u64, u64)>) -> Wake {
            log.push((now.as_secs(), self.id));
            self.remaining -= 1;
            if self.remaining == 0 {
                return Wake::Idle;
            }
            Wake::In(SimDuration::from_secs(self.rng.below(50)))
        }
    }

    fn jitter_trace(seed: u64) -> (Vec<(u64, u64)>, EngineStats) {
        let mut sim = ActorSim::new(Vec::new());
        for id in 0..8u64 {
            let actor = Jitter { id, rng: DetRng::seed(seed).fork_idx("actor", id), remaining: 20 };
            sim.add_actor(actor, SimTime::from_secs(id % 3));
        }
        assert_eq!(sim.run(), RunOutcome::Drained);
        let stats = sim.stats();
        let (log, _) = sim.into_parts();
        (log, stats)
    }

    #[test]
    fn self_rescheduling_timers_are_deterministic_across_seeds() {
        // Property: for every seed, two runs produce byte-identical traces,
        // the trace is time-ordered, and every actor fires exactly its
        // scheduled number of wake-ups.
        for seed in [0u64, 1, 7, 42, 0xDEAD, 991, 123_456] {
            let (a, stats_a) = jitter_trace(seed);
            let (b, stats_b) = jitter_trace(seed);
            assert_eq!(a, b, "seed {seed}: trace must be reproducible");
            assert_eq!(stats_a, stats_b);
            assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "seed {seed}: time-ordered");
            assert_eq!(a.len(), 8 * 20);
            assert_eq!(stats_a.events, 8 * 20);
            assert_eq!(stats_a.actor_events["jitter"], vec![20u64; 8]);
            assert_eq!(stats_a.outcomes.drained, 1);
        }
    }

    #[test]
    fn same_instant_wakeups_run_in_schedule_order() {
        // Property: actors woken at one instant fire FIFO by the order
        // their wake-ups entered the queue, for any registration count.
        for seed in [3u64, 11, 29] {
            let mut rng = DetRng::seed(seed).fork("fifo");
            let n = 4 + rng.below(12);
            let mut sim = ActorSim::new(Vec::new());
            for id in 0..n {
                // All actors due at the same instant.
                sim.add_actor(
                    Jitter { id, rng: DetRng::seed(seed).fork_idx("a", id), remaining: 1 },
                    SimTime::from_secs(5),
                );
            }
            sim.run();
            let (log, _) = sim.into_parts();
            let expect: Vec<(u64, u64)> = (0..n).map(|id| (5, id)).collect();
            assert_eq!(log, expect, "seed {seed}: same-instant FIFO violated");
        }
    }

    #[test]
    fn wake_at_in_the_past_is_clamped_to_now() {
        struct Backwards(bool);
        impl Actor<Vec<u64>> for Backwards {
            fn name(&self) -> &str {
                "backwards"
            }
            fn wake(&mut self, now: SimTime, log: &mut Vec<u64>) -> Wake {
                log.push(now.as_secs());
                if self.0 {
                    return Wake::Idle;
                }
                self.0 = true;
                // Asks for t=1 while the clock reads t=10.
                Wake::At(SimTime::from_secs(1))
            }
        }
        let mut sim = ActorSim::new(Vec::new());
        sim.add_actor(Backwards(false), SimTime::from_secs(10));
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.state(), &vec![10, 10], "late timer fires immediately, not in the past");
    }

    #[test]
    fn horizon_cuts_pending_wakeups() {
        let mut sim = ActorSim::new(Vec::new()).with_horizon(SimTime::from_secs(25));
        sim.add_actor(
            Jitter { id: 0, rng: DetRng::seed(1).fork("h"), remaining: 100 },
            SimTime::ZERO,
        );
        assert_eq!(sim.run(), RunOutcome::HorizonReached);
        assert!(sim.now() == SimTime::from_secs(25));
        assert!(sim.state().iter().all(|&(t, _)| t <= 25));
        assert_eq!(sim.stats().outcomes.horizon_reached, 1);
    }

    #[test]
    fn budget_cuts_runaway_actor() {
        struct Forever;
        impl Actor<u64> for Forever {
            fn name(&self) -> &str {
                "forever"
            }
            fn wake(&mut self, _now: SimTime, count: &mut u64) -> Wake {
                *count += 1;
                Wake::In(SimDuration::from_secs(1))
            }
        }
        let mut sim = ActorSim::new(0u64).with_event_budget(17);
        sim.add_actor(Forever, SimTime::ZERO);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
        assert_eq!(*sim.state(), 17);
        assert_eq!(sim.stats().outcomes.budget_exhausted, 1);
    }

    #[test]
    fn stats_merge_accumulates_across_episodes() {
        let (_, mut total) = jitter_trace(5);
        let (_, second) = jitter_trace(6);
        let events_before = total.events;
        total.merge(&second);
        assert_eq!(total.events, events_before + second.events);
        assert_eq!(total.actor_events["jitter"].len(), 16);
        assert_eq!(total.outcomes.drained, 2);
        assert!(total.queue_high_water >= second.queue_high_water);
        assert!(!total.is_empty());
        assert!(EngineStats::default().is_empty());
    }

    #[test]
    fn sample_clock_ticks_to_the_horizon_and_stops() {
        let clock = SampleClock::new(
            SimDuration::from_secs(60),
            SimTime::ZERO + SimDuration::from_secs(150),
        );
        let t0 = SimTime::ZERO;
        let t1 = clock.next_after(t0).expect("first tick");
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_secs(60));
        let t2 = clock.next_after(t1).expect("second tick");
        assert_eq!(t2, SimTime::ZERO + SimDuration::from_secs(120));
        // 180s would pass the 150s horizon.
        assert_eq!(clock.next_after(t2), None);
        // A tick landing exactly on the horizon is still due.
        let exact = SampleClock::new(
            SimDuration::from_secs(60),
            SimTime::ZERO + SimDuration::from_secs(120),
        );
        assert_eq!(exact.next_after(t1), Some(SimTime::ZERO + SimDuration::from_secs(120)));
    }

    #[test]
    #[should_panic(expected = "sample interval must be non-zero")]
    fn sample_clock_rejects_a_zero_interval() {
        let _ = SampleClock::new(SimDuration::ZERO, SimTime::ZERO);
    }
}
