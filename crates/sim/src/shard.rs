//! Deterministic sharding of one seeded world across worker threads.
//!
//! A [`ShardPlan`] splits a seed's population into a *fixed* number of
//! shards by a stable hash of each entity's name. The shard count is part
//! of the experiment's definition (like its seed), **not** a runtime
//! tuning knob: every shard is computed identically no matter how many
//! worker threads execute the plan, and results merge in shard order. The
//! `--shards N` flag on the `repro` CLI therefore only picks the worker
//! pool width — serial (`--shards 1`) and parallel (`--shards 4`) runs of
//! the same experiment produce byte-identical reports and metrics.
//!
//! Determinism argument, in three parts:
//!
//! 1. *Partition* — [`ShardPlan::shard_of`] is a pure function of the
//!    entity name and the plan width, so every entity lands in exactly one
//!    shard and the assignment never depends on thread scheduling.
//! 2. *Run* — each shard derives its own [`DetRng`] via
//!    [`ShardPlan::rng`] (an indexed fork of the plan seed) and simulates
//!    an independent world; no state is shared across shards while they
//!    run.
//! 3. *Merge* — [`run_sharded`] returns shard outputs indexed by shard id,
//!    so the caller folds them in the one canonical order regardless of
//!    which worker finished first.
//!
//! [`run_partitioned`] is the underlying executor: a generic "run `f` over
//! every item on a bounded crossbeam pool, return outputs in input order"
//! primitive that also serves `spamward_core::runner::run_seeds` (parallel
//! seeds are just shards of a sweep) and the scanner's MX re-resolver.

use crate::DetRng;
use crossbeam::channel;

/// Label under which each shard forks its RNG from the plan seed.
const SHARD_FORK_LABEL: &str = "shard";

/// Stable 64-bit FNV-1a over a name — the partition hash.
///
/// Exposed so tests (and DESIGN.md readers) can check the assignment of a
/// concrete name; everything else should go through
/// [`ShardPlan::shard_of`].
#[must_use]
pub fn stable_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A fixed partition of one seeded world into independent shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    seed: u64,
    shards: u32,
}

impl ShardPlan {
    /// Builds a plan for `shards` shards of the world seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(seed: u64, shards: u32) -> Self {
        assert!(shards > 0, "a shard plan needs at least one shard");
        ShardPlan { seed, shards }
    }

    /// The world seed the plan partitions.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fixed shard count.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard that owns `name`: `stable_hash(name) % shards`.
    #[must_use]
    pub fn shard_of(&self, name: &str) -> u32 {
        // The modulo of a 64-bit hash by a u32 always fits in u32.
        #[allow(clippy::cast_possible_truncation)]
        let shard = (stable_hash(name) % u64::from(self.shards)) as u32;
        shard
    }

    /// Whether `shard` owns `name` under this plan.
    #[must_use]
    pub fn owns(&self, shard: u32, name: &str) -> bool {
        self.shard_of(name) == shard
    }

    /// The RNG root for one shard: an indexed fork of the plan seed.
    ///
    /// Shards fork further per concern (exactly like experiments fork per
    /// concern off their seed), so adding a consumer inside one shard
    /// never perturbs another shard's draws.
    #[must_use]
    pub fn rng(&self, shard: u32) -> DetRng {
        assert!(shard < self.shards, "shard index out of range");
        DetRng::seed(self.seed).fork_idx(SHARD_FORK_LABEL, u64::from(shard))
    }
}

/// Runs `f` over every item on a pool of `workers` threads and returns
/// the outputs **in input order**, independent of scheduling.
///
/// Items are tagged with their index before they enter the job channel
/// and outputs are slotted back by that index, so the result is
/// byte-for-byte the same as a serial `items.map(f)` no matter how the
/// workers interleave. `f` must be pure per item for that equivalence to
/// mean anything — which is exactly the contract shard and seed runs
/// satisfy.
///
/// # Panics
///
/// Panics if `workers == 0` or a worker panics.
pub fn run_partitioned<I, T, F>(items: Vec<I>, workers: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let (job_tx, job_rx) = channel::unbounded::<(usize, I)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, T)>();
    for job in items.into_iter().enumerate() {
        job_tx.send(job).expect("queue jobs");
    }
    drop(job_tx);

    crossbeam::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move |_| {
                while let Ok((idx, item)) = job_rx.recv() {
                    let output = f(item);
                    res_tx.send((idx, output)).expect("report result");
                }
            });
        }
        drop(res_tx);
    })
    .expect("partition workers never panic");

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (idx, output) in res_rx.iter() {
        slots[idx] = Some(output);
    }
    slots.into_iter().map(|s| s.expect("every job reports exactly once")).collect()
}

/// Runs `f(shard)` for every shard of `plan` across `workers` threads and
/// returns the outputs indexed by shard id — the canonical merge order.
///
/// # Panics
///
/// Panics if `workers == 0` or a shard worker panics.
pub fn run_sharded<T, F>(plan: &ShardPlan, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let shards: Vec<u32> = (0..plan.shards()).collect();
    run_partitioned(shards, workers, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn every_name_lands_in_exactly_one_shard() {
        let plan = ShardPlan::new(42, 8);
        for i in 0..1000 {
            let name = format!("d{i}.example");
            let owner = plan.shard_of(&name);
            assert!(owner < plan.shards());
            let owners: u32 = (0..plan.shards()).map(|s| u32::from(plan.owns(s, &name))).sum();
            assert_eq!(owners, 1, "{name} must have exactly one owner");
        }
    }

    #[test]
    fn assignment_is_stable_across_plan_instances_and_seeds() {
        // The partition depends only on (name, shard count): re-building
        // the plan — even under a different seed — never moves an entity.
        let a = ShardPlan::new(1, 8);
        let b = ShardPlan::new(999, 8);
        for i in 0..200 {
            let name = format!("host{i}.net");
            assert_eq!(a.shard_of(&name), b.shard_of(&name));
        }
    }

    #[test]
    fn shard_rngs_are_distinct_but_reproducible() {
        let plan = ShardPlan::new(7, 4);
        let firsts: Vec<u64> = (0..4).map(|s| plan.rng(s).next_u64()).collect();
        for (i, a) in firsts.iter().enumerate() {
            for b in &firsts[i + 1..] {
                assert_ne!(a, b, "shard RNG streams must not collide");
            }
        }
        assert_eq!(plan.rng(2).next_u64(), firsts[2]);
    }

    #[test]
    fn partitioned_outputs_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).rev().collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let parallel = run_partitioned(items, 8, |x| x * 3);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn sharded_runs_cover_every_shard_once() {
        let plan = ShardPlan::new(3, 6);
        let out = run_sharded(&plan, 3, |s| s);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = run_partitioned(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_partitioned(vec![1u64], 0, |x| x);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardPlan::new(1, 0);
    }

    proptest! {
        #[test]
        fn prop_partition_is_total_and_stable(
            names in proptest::collection::vec("[a-z0-9.]{1,24}", 1..64),
            shards in 1u32..32,
        ) {
            let plan = ShardPlan::new(0, shards);
            for name in &names {
                let owner = plan.shard_of(name);
                prop_assert!(owner < shards);
                // Stable under re-evaluation and exclusive ownership.
                prop_assert_eq!(owner, plan.shard_of(name));
                let owners: u32 =
                    (0..shards).map(|s| u32::from(plan.owns(s, name))).sum();
                prop_assert_eq!(owners, 1);
            }
        }

        #[test]
        fn prop_run_partitioned_matches_serial_map(
            items in proptest::collection::vec(0u64..1_000_000, 0..64),
            workers in 1usize..9,
        ) {
            let serial: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31)).collect();
            let parallel = run_partitioned(items, workers, |x| x.wrapping_mul(31));
            prop_assert_eq!(parallel, serial);
        }
    }
}
