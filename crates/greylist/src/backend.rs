//! Pluggable greylist store backends.
//!
//! The paper's deployment ran one store — an in-process Postgrey BTree —
//! but real fleets differ: Postfix instances share a qdgrey/redis-style
//! network store, and large MTAs shard the triplet database. The
//! [`GreylistStore`] trait makes the storage substrate an experiment axis
//! while keeping the decision engine in `policy.rs` byte-identical under
//! the default [`StoreBackend::InMemory`] configuration:
//!
//! * [`StoreBackend::InMemory`] — today's [`TripletStore`], unchanged.
//! * [`StoreBackend::Partitioned`] — per-shard [`TripletStore`]s routed by
//!   the `spamward_sim::shard` stable hash; reads merge byte-stably
//!   (sorted by key) so snapshots and gauges are order-independent.
//! * [`StoreBackend::Remote`] — a network store spoken to over a
//!   request–reply protocol with virtual-time lookup latency. Fault
//!   windows make lookups fail, which surfaces as
//!   [`StoreUnavailable`] and flows into the MTA's FailOpen/FailClosed
//!   degradation path — `FaultSpec::GreylistStoreDown` applies per-backend
//!   for free.

use crate::store::{EntryState, TripletEntry, TripletStore};
use crate::triplet::TripletKey;
use serde::{Deserialize, Serialize};
use spamward_sim::shard::stable_hash;
use spamward_sim::{SimDuration, SimTime};
use std::fmt;

/// The store could not answer (remote backend inside a fault window).
///
/// The decision engine propagates this to the MTA, whose
/// FailOpen/FailClosed degradation mode decides what the client sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreUnavailable;

impl fmt::Display for StoreUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "greylist store unavailable")
    }
}

impl std::error::Error for StoreUnavailable {}

/// The store-level outcome of touching a key: what happened to the entry,
/// before any policy bookkeeping.
///
/// This is the unit of the store contract — every backend must produce the
/// same `Touch` sequence for the same `(key, now, delay)` sequence, which
/// is what keeps decisions backend-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Touch {
    /// No live entry existed; a fresh pending entry now tracks the key.
    New {
        /// A stale (expired) entry was present and its clock restarted.
        restarted: bool,
    },
    /// A pending entry exists but the delay has not elapsed yet.
    Early {
        /// Time still to wait before a retry would mature the entry.
        remaining: SimDuration,
    },
    /// A pending entry just out-waited the delay and flipped to passed.
    Matured,
    /// The entry had already passed before.
    Known,
}

/// Touches `key` in a plain [`TripletStore`].
///
/// This is the *only* implementation of the pending/passed state machine —
/// every backend routes here — and it performs exactly the operation
/// sequence the pre-refactor decision engine did (contains, `get_live_mut`,
/// `insert_pending`, attempt/last-seen bumps, state flip), so the default
/// backend stays byte-identical.
fn touch_store(
    store: &mut TripletStore,
    key: TripletKey,
    now: SimTime,
    delay: SimDuration,
) -> Touch {
    let existed = store.contains(&key);
    match store.get_live_mut(&key, now) {
        None => {
            // Either genuinely unseen, or a stale entry that
            // `get_live_mut` just removed — both restart the clock.
            let entry = store.insert_pending(key, now);
            entry.attempts += 1;
            entry.last_seen = now;
            debug_assert_eq!(entry.first_seen, now);
            Touch::New { restarted: existed }
        }
        Some(entry) => {
            entry.attempts += 1;
            entry.last_seen = now;
            match entry.state {
                EntryState::Passed => Touch::Known,
                EntryState::Pending => {
                    // Sessions carry per-connection latency offsets, so
                    // two logically-concurrent checks can arrive with
                    // slightly out-of-order clocks; saturate to zero.
                    let waited =
                        now.checked_elapsed_since(entry.first_seen).unwrap_or(SimDuration::ZERO);
                    if waited >= delay {
                        entry.state = EntryState::Passed;
                        Touch::Matured
                    } else {
                        Touch::Early { remaining: delay - waited }
                    }
                }
            }
        }
    }
}

/// Storage substrate for the greylist decision engine.
///
/// The contract: for the same sequence of `touch` calls, every backend
/// returns the same sequence of [`Touch`] outcomes (fault windows aside).
/// A shared contract test in this module pins that property across all
/// three backends.
pub trait GreylistStore {
    /// Applies one check to `key` at `now`, advancing the entry's state
    /// machine under the configured `delay`.
    ///
    /// # Errors
    ///
    /// [`StoreUnavailable`] when the backend cannot answer (remote store
    /// inside a fault window).
    fn touch(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<Touch, StoreUnavailable>;

    /// Removes every expired entry; returns how many were dropped.
    fn purge_expired(&mut self, now: SimTime) -> usize;

    /// Number of stored entries (including not-yet-swept stale ones).
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts entries currently in `state`.
    fn count_state(&self, state: EntryState) -> usize;

    /// Total LRU evictions so far.
    fn evictions(&self) -> u64;

    /// Approximate resident bytes of key+entry data (the
    /// `greylist.store.bytes` gauge), comparable across backends.
    fn approx_bytes(&self) -> usize;

    /// Inserts an entry verbatim (snapshot restore), bypassing capacity
    /// checks — restores happen at startup before any load.
    fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry);

    /// Drops every entry, as a crash losing the database would. Shape
    /// (shard layout, capacity bounds, lifetimes, remote latency/fault
    /// windows) and cumulative counters survive — they model the
    /// deployment, not its RAM.
    fn clear(&mut self);

    /// All (possibly stale) entries, sorted by key — a byte-stable merged
    /// view regardless of how the backend partitions them.
    fn entries(&self) -> Vec<(TripletKey, TripletEntry)>;

    /// Stable backend slug for tables and metric labels.
    fn backend_name(&self) -> &'static str;
}

impl GreylistStore for TripletStore {
    fn touch(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<Touch, StoreUnavailable> {
        Ok(touch_store(self, key, now, delay))
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        TripletStore::purge_expired(self, now)
    }

    fn len(&self) -> usize {
        TripletStore::len(self)
    }

    fn count_state(&self, state: EntryState) -> usize {
        TripletStore::count_state(self, state)
    }

    fn evictions(&self) -> u64 {
        TripletStore::evictions(self)
    }

    fn approx_bytes(&self) -> usize {
        TripletStore::approx_bytes(self)
    }

    fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry) {
        TripletStore::insert_raw(self, key, entry);
    }

    fn clear(&mut self) {
        TripletStore::clear(self);
    }

    fn entries(&self) -> Vec<(TripletKey, TripletEntry)> {
        self.iter().map(|(k, e)| (*k, e.clone())).collect()
    }

    fn backend_name(&self) -> &'static str {
        "in_memory"
    }
}

/// A store split into per-shard [`TripletStore`]s, routed by the stable
/// shard hash over the key's routing label.
///
/// Mirrors a large MTA sharding its triplet database: each shard owns a
/// disjoint key range, capacity bounds apply per shard, and aggregate
/// views (`len`, `entries`, gauges) merge deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedStore {
    shards: Vec<TripletStore>,
}

impl PartitionedStore {
    /// A store with `shards` empty default shards (at least one).
    pub fn new(shards: usize) -> Self {
        Self::with_template(shards, TripletStore::new())
    }

    /// A store whose shards all share `template`'s lifetimes and capacity
    /// bound (the bound applies *per shard*).
    pub fn with_template(shards: usize, template: TripletStore) -> Self {
        debug_assert!(template.is_empty(), "shard template must be empty");
        PartitionedStore { shards: vec![template; shards.max(1)] }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry count per shard (occupancy skew diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(TripletStore::len).collect()
    }

    fn route(&self, key: &TripletKey) -> usize {
        (stable_hash(&key.route_label()) % self.shards.len() as u64) as usize
    }
}

impl GreylistStore for PartitionedStore {
    fn touch(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<Touch, StoreUnavailable> {
        let shard = self.route(&key);
        Ok(touch_store(&mut self.shards[shard], key, now, delay))
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        self.shards.iter_mut().map(|s| TripletStore::purge_expired(s, now)).sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(TripletStore::len).sum()
    }

    fn count_state(&self, state: EntryState) -> usize {
        self.shards.iter().map(|s| TripletStore::count_state(s, state)).sum()
    }

    fn evictions(&self) -> u64 {
        self.shards.iter().map(TripletStore::evictions).sum()
    }

    fn approx_bytes(&self) -> usize {
        self.shards.iter().map(TripletStore::approx_bytes).sum()
    }

    fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry) {
        let shard = self.route(&key);
        TripletStore::insert_raw(&mut self.shards[shard], key, entry);
    }

    fn clear(&mut self) {
        for shard in &mut self.shards {
            TripletStore::clear(shard);
        }
    }

    fn entries(&self) -> Vec<(TripletKey, TripletEntry)> {
        let mut all: Vec<(TripletKey, TripletEntry)> =
            self.shards.iter().flat_map(|s| s.iter().map(|(k, e)| (*k, e.clone()))).collect();
        // Shards hold disjoint keys, so a sort is a full deterministic
        // merge regardless of shard count.
        all.sort_by_key(|&(k, _)| k);
        all
    }

    fn backend_name(&self) -> &'static str {
        "partitioned"
    }
}

/// One request to a remote greylist store (qdgrey/redis-style verbs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreRequest {
    /// Advance the state machine for a key (the hot-path verb).
    Touch {
        /// Key under test.
        key: TripletKey,
        /// Greylist delay the entry must out-wait.
        delay: SimDuration,
    },
    /// Sweep expired entries.
    Purge,
    /// Report entry count.
    Size,
}

/// The store's reply to one [`StoreRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreReply {
    /// Outcome of a `Touch`.
    Verdict(Touch),
    /// Entries dropped by a `Purge`.
    Purged(usize),
    /// Current entry count.
    Size(usize),
    /// The store is inside a fault window; no answer.
    Unavailable,
}

/// One completed request–reply exchange, with virtual-time bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreExchange {
    /// When the MTA sent the request.
    pub sent: SimTime,
    /// When the reply arrived back (send time + lookup latency).
    pub replied: SimTime,
    /// The store's answer.
    pub reply: StoreReply,
}

/// A network greylist store (qdgrey, redis) spoken to over
/// [`StoreRequest`]/[`StoreReply`] with virtual-time lookup latency.
///
/// Requests carry the MTA's send-time clock and the store evaluates state
/// against it, so lookup latency delays *replies*, never observations —
/// decisions stay identical to the in-process backends (the store
/// contract). Latency is accounted in the `greylist.backend.latency_us`
/// gauge; fault windows make exchanges return
/// [`StoreReply::Unavailable`], which the engine surfaces as
/// [`StoreUnavailable`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteStore {
    inner: TripletStore,
    rtt: SimDuration,
    #[serde(default)]
    outages: Vec<(SimTime, SimTime)>,
    #[serde(default)]
    slowdowns: Vec<(SimDuration, SimTime, SimTime)>,
    ops: u64,
    unavailable: u64,
    latency_us: u64,
}

impl RemoteStore {
    /// A remote store answering after `rtt` of round-trip lookup latency.
    pub fn new(rtt: SimDuration) -> Self {
        RemoteStore {
            inner: TripletStore::new(),
            rtt,
            outages: Vec::new(),
            slowdowns: Vec::new(),
            ops: 0,
            unavailable: 0,
            latency_us: 0,
        }
    }

    /// Replaces the backing [`TripletStore`] (e.g. a capacity-bounded one).
    pub fn with_store(mut self, store: TripletStore) -> Self {
        self.inner = store;
        self
    }

    /// Configured round-trip lookup latency.
    pub fn rtt(&self) -> SimDuration {
        self.rtt
    }

    /// Installs fault windows: `outages` are half-open `[from, until)`
    /// spans where every exchange fails; `slowdowns` add
    /// `(extra_latency, from, until)` spans where lookups answer late.
    pub fn set_fault_windows(
        &mut self,
        outages: Vec<(SimTime, SimTime)>,
        slowdowns: Vec<(SimDuration, SimTime, SimTime)>,
    ) {
        self.outages = outages;
        self.slowdowns = slowdowns;
    }

    /// Requests answered so far (excluding failed ones).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Requests that fell into an outage window.
    pub fn unavailable(&self) -> u64 {
        self.unavailable
    }

    /// Total virtual-time lookup latency paid, in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.latency_us
    }

    fn down_at(&self, now: SimTime) -> bool {
        self.outages.iter().any(|&(from, until)| now >= from && now < until)
    }

    fn latency_at(&self, now: SimTime) -> SimDuration {
        let mut lat = self.rtt;
        for &(extra, from, until) in &self.slowdowns {
            if now >= from && now < until {
                lat += extra;
            }
        }
        lat
    }

    /// Performs one request–reply exchange, `sent` being the MTA's clock
    /// when the request left. The reply lands at `sent + lookup latency`.
    pub fn exchange(&mut self, request: StoreRequest, sent: SimTime) -> StoreExchange {
        let latency = self.latency_at(sent);
        let replied = sent + latency;
        if self.down_at(sent) {
            self.unavailable += 1;
            return StoreExchange { sent, replied, reply: StoreReply::Unavailable };
        }
        self.ops += 1;
        self.latency_us += latency.as_micros();
        let reply = match request {
            StoreRequest::Touch { key, delay } => {
                StoreReply::Verdict(touch_store(&mut self.inner, key, sent, delay))
            }
            StoreRequest::Purge => {
                StoreReply::Purged(TripletStore::purge_expired(&mut self.inner, sent))
            }
            StoreRequest::Size => StoreReply::Size(self.inner.len()),
        };
        StoreExchange { sent, replied, reply }
    }
}

impl GreylistStore for RemoteStore {
    fn touch(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<Touch, StoreUnavailable> {
        match self.exchange(StoreRequest::Touch { key, delay }, now).reply {
            StoreReply::Verdict(touch) => Ok(touch),
            _ => Err(StoreUnavailable),
        }
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        match self.exchange(StoreRequest::Purge, now).reply {
            StoreReply::Purged(n) => n,
            _ => 0,
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn count_state(&self, state: EntryState) -> usize {
        TripletStore::count_state(&self.inner, state)
    }

    fn evictions(&self) -> u64 {
        TripletStore::evictions(&self.inner)
    }

    fn approx_bytes(&self) -> usize {
        TripletStore::approx_bytes(&self.inner)
    }

    fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry) {
        TripletStore::insert_raw(&mut self.inner, key, entry);
    }

    fn clear(&mut self) {
        TripletStore::clear(&mut self.inner);
    }

    fn entries(&self) -> Vec<(TripletKey, TripletEntry)> {
        self.inner.iter().map(|(k, e)| (*k, e.clone())).collect()
    }

    fn backend_name(&self) -> &'static str {
        "remote"
    }
}

/// The concrete backend behind a `Greylist` engine.
///
/// An enum (rather than a generic parameter) so `Greylist` stays a plain
/// serde-snapshottable value and existing call sites compile unchanged;
/// the [`GreylistStore`] impl dispatches to the active variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum StoreBackend {
    /// In-process BTree store (the paper's configuration; the default).
    InMemory(TripletStore),
    /// Stable-hash partitioned shards.
    Partitioned(PartitionedStore),
    /// Network store with lookup latency and fault windows.
    Remote(RemoteStore),
}

impl Default for StoreBackend {
    fn default() -> Self {
        StoreBackend::InMemory(TripletStore::default())
    }
}

macro_rules! each_backend {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            StoreBackend::InMemory($s) => $body,
            StoreBackend::Partitioned($s) => $body,
            StoreBackend::Remote($s) => $body,
        }
    };
}

impl StoreBackend {
    /// Number of stored entries (including not-yet-swept stale ones).
    pub fn len(&self) -> usize {
        each_backend!(self, s => GreylistStore::len(s))
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        each_backend!(self, s => GreylistStore::evictions(s))
    }

    /// Counts entries currently in `state`.
    pub fn count_state(&self, state: EntryState) -> usize {
        each_backend!(self, s => GreylistStore::count_state(s, state))
    }

    /// Approximate resident bytes of key+entry data.
    pub fn approx_bytes(&self) -> usize {
        each_backend!(self, s => GreylistStore::approx_bytes(s))
    }

    /// All (possibly stale) entries, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (TripletKey, TripletEntry)> {
        self.entries().into_iter()
    }

    /// Stable backend slug for tables and metric labels.
    pub fn name(&self) -> &'static str {
        each_backend!(self, s => GreylistStore::backend_name(s))
    }

    /// The remote store, if that is the active backend.
    pub fn as_remote(&self) -> Option<&RemoteStore> {
        match self {
            StoreBackend::Remote(r) => Some(r),
            _ => None,
        }
    }

    /// Number of partitions (1 for unpartitioned backends).
    pub fn shard_count(&self) -> usize {
        match self {
            StoreBackend::Partitioned(p) => p.shard_count(),
            _ => 1,
        }
    }

    /// Touches `key` bypassing the remote exchange protocol (no fault
    /// windows, no latency/ops accounting). WAL replay reconstructs local
    /// durable state at restart and must not be subject to network
    /// weather; the state mutation is identical to the live path because
    /// [`touch_store`] is the only state machine.
    pub(crate) fn touch_direct(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Touch {
        match self {
            StoreBackend::InMemory(s) => touch_store(s, key, now, delay),
            StoreBackend::Partitioned(p) => {
                let shard = p.route(&key);
                touch_store(&mut p.shards[shard], key, now, delay)
            }
            StoreBackend::Remote(r) => touch_store(&mut r.inner, key, now, delay),
        }
    }

    /// Sweeps expired entries bypassing the remote exchange protocol (WAL
    /// replay of a maintenance record).
    pub(crate) fn purge_direct(&mut self, now: SimTime) -> usize {
        match self {
            StoreBackend::InMemory(s) => TripletStore::purge_expired(s, now),
            StoreBackend::Partitioned(p) => {
                p.shards.iter_mut().map(|s| TripletStore::purge_expired(s, now)).sum()
            }
            StoreBackend::Remote(r) => TripletStore::purge_expired(&mut r.inner, now),
        }
    }
}

impl GreylistStore for StoreBackend {
    fn touch(
        &mut self,
        key: TripletKey,
        now: SimTime,
        delay: SimDuration,
    ) -> Result<Touch, StoreUnavailable> {
        each_backend!(self, s => s.touch(key, now, delay))
    }

    fn purge_expired(&mut self, now: SimTime) -> usize {
        each_backend!(self, s => GreylistStore::purge_expired(s, now))
    }

    fn len(&self) -> usize {
        StoreBackend::len(self)
    }

    fn count_state(&self, state: EntryState) -> usize {
        StoreBackend::count_state(self, state)
    }

    fn evictions(&self) -> u64 {
        StoreBackend::evictions(self)
    }

    fn approx_bytes(&self) -> usize {
        StoreBackend::approx_bytes(self)
    }

    fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry) {
        each_backend!(self, s => GreylistStore::insert_raw(s, key, entry));
    }

    fn clear(&mut self) {
        each_backend!(self, s => GreylistStore::clear(s));
    }

    fn entries(&self) -> Vec<(TripletKey, TripletEntry)> {
        each_backend!(self, s => GreylistStore::entries(s))
    }

    fn backend_name(&self) -> &'static str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    fn key(d: u8) -> TripletKey {
        TripletKey::new(
            Ipv4Addr::new(10, 0, d, 1),
            &ReversePath::Null,
            &format!("u{d}@foo.net").parse().unwrap(),
            24,
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn backends() -> Vec<StoreBackend> {
        vec![
            StoreBackend::InMemory(TripletStore::new()),
            StoreBackend::Partitioned(PartitionedStore::new(4)),
            StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))),
        ]
    }

    /// The store contract: the same decision sequence produces the same
    /// decisions on every backend, and aggregate views agree.
    #[test]
    fn contract_same_sequence_same_decisions() {
        let delay = SimDuration::from_secs(300);
        // A sequence exercising every Touch variant: new, early retry,
        // matured, known, plus an expiry restart.
        let script: Vec<(u8, u64)> = vec![
            (1, 0),                // New
            (1, 100),              // Early
            (2, 150),              // New
            (1, 301),              // Matured
            (1, 400),              // Known
            (2, 500),              // Matured
            (3, 600),              // New
            (3, 600 + 3 * 86_400), // stale pending → New{restarted}
        ];
        let mut outcomes: Vec<Vec<Touch>> = Vec::new();
        let mut summaries: Vec<(usize, usize, usize)> = Vec::new();
        for mut backend in backends() {
            let got: Vec<Touch> = script
                .iter()
                .map(|&(k, at)| backend.touch(key(k), t(at), delay).expect("no faults installed"))
                .collect();
            outcomes.push(got);
            summaries.push((
                backend.len(),
                backend.count_state(EntryState::Pending),
                backend.count_state(EntryState::Passed),
            ));
        }
        assert_eq!(outcomes[0], outcomes[1], "partitioned diverged from in-memory");
        assert_eq!(outcomes[0], outcomes[2], "remote diverged from in-memory");
        assert_eq!(summaries[0], summaries[1]);
        assert_eq!(summaries[0], summaries[2]);
        assert_eq!(
            outcomes[0],
            vec![
                Touch::New { restarted: false },
                Touch::Early { remaining: SimDuration::from_secs(200) },
                Touch::New { restarted: false },
                Touch::Matured,
                Touch::Known,
                Touch::Matured,
                Touch::New { restarted: false },
                Touch::New { restarted: true },
            ]
        );
    }

    #[test]
    fn contract_purge_and_entries_agree() {
        let delay = SimDuration::from_secs(300);
        let mut views: Vec<Vec<(TripletKey, TripletEntry)>> = Vec::new();
        for mut backend in backends() {
            for k in 1..=8u8 {
                let _ = backend.touch(key(k), t(u64::from(k) * 10), delay);
            }
            let swept =
                GreylistStore::purge_expired(&mut backend, t(10) + SimDuration::from_days(30));
            assert_eq!(swept, 8, "{}: all pending entries were stale", backend.name());
            for k in 1..=4u8 {
                let _ = backend.touch(key(k), t(1_000_000 + u64::from(k)), delay);
            }
            views.push(backend.entries());
        }
        assert_eq!(views[0], views[1], "partitioned merged view diverged");
        assert_eq!(views[0], views[2], "remote view diverged");
        assert!(views[0].windows(2).all(|w| w[0].0 < w[1].0), "entries must be key-sorted");
    }

    proptest! {
        /// Contract under arbitrary (time-ordered) decision sequences.
        #[test]
        fn prop_backends_agree(ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..40)) {
            let delay = SimDuration::from_secs(300);
            let mut times: Vec<u64> = ops.iter().map(|&(_, at)| at).collect();
            times.sort_unstable();
            let script: Vec<(u8, u64)> =
                ops.iter().zip(times).map(|(&(k, _), at)| (k, at)).collect();
            let mut all: Vec<Vec<Touch>> = Vec::new();
            for mut backend in backends() {
                all.push(
                    script
                        .iter()
                        .map(|&(k, at)| backend.touch(key(k), t(at), delay).unwrap())
                        .collect(),
                );
            }
            prop_assert_eq!(&all[0], &all[1]);
            prop_assert_eq!(&all[0], &all[2]);
        }
    }

    #[test]
    fn partitioned_routes_keys_across_shards() {
        let mut p = PartitionedStore::new(4);
        for k in 0..32u8 {
            let _ = p.touch(key(k), t(0), SimDuration::from_secs(300));
        }
        assert_eq!(GreylistStore::len(&p), 32);
        let populated = p.shard_lens().into_iter().filter(|&n| n > 0).count();
        assert!(populated > 1, "32 keys should spread over >1 of 4 shards: {:?}", p.shard_lens());
    }

    #[test]
    fn partitioned_zero_shards_clamps_to_one() {
        let p = PartitionedStore::new(0);
        assert_eq!(p.shard_count(), 1);
    }

    #[test]
    fn remote_outage_window_fails_lookups() {
        let mut r = RemoteStore::new(SimDuration::from_millis(2));
        r.set_fault_windows(vec![(t(100), t(200))], Vec::new());
        let delay = SimDuration::from_secs(300);
        assert!(r.touch(key(1), t(50), delay).is_ok());
        assert_eq!(r.touch(key(1), t(150), delay), Err(StoreUnavailable));
        // Half-open window: the upper bound is back in service.
        assert!(r.touch(key(1), t(200), delay).is_ok());
        assert_eq!(r.unavailable(), 1);
        assert_eq!(r.ops(), 2);
    }

    #[test]
    fn remote_latency_is_accounted_not_observed() {
        let rtt = SimDuration::from_millis(4);
        let mut r = RemoteStore::new(rtt);
        let x = r.exchange(
            StoreRequest::Touch { key: key(1), delay: SimDuration::from_secs(300) },
            t(10),
        );
        assert_eq!(x.replied, t(10) + rtt, "reply lands one rtt after send");
        assert_eq!(r.latency_us(), rtt.as_micros());
        // Slowdown windows stretch the reply, not the decision clock.
        r.set_fault_windows(Vec::new(), vec![(SimDuration::from_millis(20), t(0), t(1_000))]);
        let x = r.exchange(StoreRequest::Size, t(20));
        assert_eq!(x.replied, t(20) + rtt + SimDuration::from_millis(20));
        assert_eq!(x.reply, StoreReply::Size(1));
    }

    #[test]
    fn remote_purge_and_size_verbs() {
        let mut r = RemoteStore::new(SimDuration::from_millis(2));
        let delay = SimDuration::from_secs(300);
        let _ = r.touch(key(1), t(0), delay);
        let _ = r.touch(key(2), t(0), delay);
        assert_eq!(r.exchange(StoreRequest::Size, t(1)).reply, StoreReply::Size(2));
        let late = t(0) + SimDuration::from_days(30);
        assert_eq!(r.exchange(StoreRequest::Purge, late).reply, StoreReply::Purged(2));
        assert_eq!(r.exchange(StoreRequest::Size, late).reply, StoreReply::Size(0));
    }

    #[test]
    fn clear_drops_entries_but_keeps_shape() {
        let delay = SimDuration::from_secs(300);
        for mut backend in backends() {
            for k in 1..=6u8 {
                let _ = backend.touch(key(k), t(0), delay);
            }
            assert_eq!(GreylistStore::len(&backend), 6, "{}", backend.name());
            let shards_before = backend.shard_count();
            GreylistStore::clear(&mut backend);
            assert!(backend.is_empty(), "{}: clear must drop everything", backend.name());
            assert_eq!(backend.shard_count(), shards_before, "shard layout must survive");
            // The cleared store works again from scratch.
            assert_eq!(backend.touch(key(1), t(500), delay), Ok(Touch::New { restarted: false }));
        }
        // A remote store's fault windows and counters survive the clear.
        let mut r = RemoteStore::new(SimDuration::from_millis(2));
        r.set_fault_windows(vec![(t(100), t(200))], Vec::new());
        let _ = r.touch(key(1), t(150), delay);
        assert_eq!(r.unavailable(), 1);
        GreylistStore::clear(&mut r);
        assert_eq!(r.unavailable(), 1, "counters are cumulative across restarts");
        assert_eq!(r.touch(key(1), t(150), delay), Err(StoreUnavailable), "windows survive");
    }

    #[test]
    fn touch_direct_matches_live_path_and_ignores_outages() {
        let delay = SimDuration::from_secs(300);
        for backend in backends() {
            let mut live = backend.clone();
            let mut direct = backend;
            let script = [(1u8, 0u64), (1, 100), (2, 150), (1, 301), (1, 400)];
            for &(k, at) in &script {
                let a = live.touch(key(k), t(at), delay).unwrap();
                let b = direct.touch_direct(key(k), t(at), delay);
                assert_eq!(a, b, "{}: direct path diverged", direct.name());
            }
            assert_eq!(live.entries(), direct.entries());
        }
        // Inside an outage window the exchange path fails but the direct
        // (replay) path still applies — and pays no protocol accounting.
        let mut r = RemoteStore::new(SimDuration::from_millis(2));
        r.set_fault_windows(vec![(t(0), t(1_000))], Vec::new());
        let mut b = StoreBackend::Remote(r);
        assert_eq!(GreylistStore::touch(&mut b, key(1), t(10), delay), Err(StoreUnavailable));
        assert_eq!(b.touch_direct(key(1), t(10), delay), Touch::New { restarted: false });
        let r = b.as_remote().unwrap();
        assert_eq!(r.ops(), 0, "replay must not count as protocol traffic");
        assert_eq!(r.latency_us(), 0);
    }

    #[test]
    fn backend_names_and_bytes_gauge() {
        for backend in backends() {
            assert!(backend.is_empty());
            assert_eq!(backend.approx_bytes(), 0);
        }
        let mut b = StoreBackend::default();
        assert_eq!(b.name(), "in_memory");
        let _ = b.touch(key(1), t(0), SimDuration::from_secs(300));
        assert!(b.approx_bytes() > 0, "occupied store must report bytes");
    }
}
