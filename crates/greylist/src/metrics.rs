//! Metric name constants and collectors for the greylist crate.
//!
//! All `greylist.*` registry names live here (the O1 lint rule); the
//! decision path only bumps the plain fields of [`GreylistStats`].

use crate::policy::Greylist;
use crate::stats::GreylistStats;
use spamward_obs::Registry;

/// New triplets deferred on first contact.
pub const DEFERRED_NEW: &str = "greylist.deferred.new";
/// Retries deferred again because they arrived before the delay elapsed.
pub const DEFERRED_EARLY: &str = "greylist.deferred.early";
/// Expired pending triplets re-deferred from scratch.
pub const DEFERRED_RESTARTED: &str = "greylist.deferred.restarted";
/// All checks that ended in a 450.
pub const DEFERRED_TOTAL: &str = "greylist.deferred.total";
/// Retries that passed after out-waiting the delay.
pub const PASSED_AFTER_DELAY: &str = "greylist.passed.after_delay";
/// Hits on already-passed triplets.
pub const PASSED_KNOWN: &str = "greylist.passed.known";
/// Passes due to the client whitelist.
pub const PASSED_CLIENT_WHITELIST: &str = "greylist.passed.client_whitelist";
/// Passes due to the recipient whitelist.
pub const PASSED_RECIPIENT_WHITELIST: &str = "greylist.passed.recipient_whitelist";
/// Passes due to the client auto-whitelist.
pub const PASSED_AUTO_WHITELIST: &str = "greylist.passed.auto_whitelist";
/// All checks that passed.
pub const PASSED_TOTAL: &str = "greylist.passed.total";
/// Live triplet-store entries at collection time.
pub const STORE_SIZE: &str = "greylist.store.size";

/// Exports decision counters under the canonical `greylist.*` names.
pub fn collect_stats(stats: &GreylistStats, reg: &mut Registry) {
    reg.record_counter(DEFERRED_NEW, stats.greylisted_new);
    reg.record_counter(DEFERRED_EARLY, stats.greylisted_early);
    reg.record_counter(DEFERRED_RESTARTED, stats.greylisted_restarted);
    reg.record_counter(DEFERRED_TOTAL, stats.total_greylisted());
    reg.record_counter(PASSED_AFTER_DELAY, stats.passed_after_delay);
    reg.record_counter(PASSED_KNOWN, stats.passed_known);
    reg.record_counter(PASSED_CLIENT_WHITELIST, stats.passed_client_whitelist);
    reg.record_counter(PASSED_RECIPIENT_WHITELIST, stats.passed_recipient_whitelist);
    reg.record_counter(PASSED_AUTO_WHITELIST, stats.passed_auto_whitelist);
    reg.record_counter(PASSED_TOTAL, stats.total_passed());
}

/// Exports the full greylist snapshot: decision counters plus the store
/// size gauge.
pub fn collect(gl: &Greylist, reg: &mut Registry) {
    collect_stats(&gl.stats(), reg);
    reg.record_gauge(STORE_SIZE, gl.store().len() as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GreylistConfig;
    use spamward_sim::{SimDuration, SimTime};
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    #[test]
    fn collect_mirrors_stats_and_store() {
        let mut gl = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let sender = ReversePath::Null;
        let rcpt = "u@victim.example".parse().unwrap();
        let _ = gl.check(SimTime::ZERO, client, &sender, &rcpt);
        let _ = gl.check(SimTime::from_secs(10), client, &sender, &rcpt);
        let _ = gl.check(SimTime::from_secs(600), client, &sender, &rcpt);

        let mut reg = Registry::new();
        collect(&gl, &mut reg);
        let stats = gl.stats();
        assert_eq!(reg.counter(DEFERRED_NEW), Some(stats.greylisted_new));
        assert_eq!(reg.counter(DEFERRED_TOTAL), Some(stats.total_greylisted()));
        assert_eq!(reg.counter(PASSED_AFTER_DELAY), Some(stats.passed_after_delay));
        assert_eq!(reg.counter(PASSED_TOTAL), Some(stats.total_passed()));
        assert_eq!(reg.gauge(STORE_SIZE), Some(gl.store().len() as i64));
        assert_eq!(
            reg.counter(DEFERRED_TOTAL).unwrap() + reg.counter(PASSED_TOTAL).unwrap(),
            stats.total()
        );
    }
}
