//! Metric name constants and collectors for the greylist crate.
//!
//! All `greylist.*` registry names live here (the O1 lint rule); the
//! decision path only bumps the plain fields of [`GreylistStats`].

use crate::policy::Greylist;
use crate::stats::GreylistStats;
use spamward_obs::Registry;

/// New triplets deferred on first contact.
pub const DEFERRED_NEW: &str = "greylist.deferred.new";
/// Retries deferred again because they arrived before the delay elapsed.
pub const DEFERRED_EARLY: &str = "greylist.deferred.early";
/// Expired pending triplets re-deferred from scratch.
pub const DEFERRED_RESTARTED: &str = "greylist.deferred.restarted";
/// All checks that ended in a 450.
pub const DEFERRED_TOTAL: &str = "greylist.deferred.total";
/// Retries that passed after out-waiting the delay.
pub const PASSED_AFTER_DELAY: &str = "greylist.passed.after_delay";
/// Hits on already-passed triplets.
pub const PASSED_KNOWN: &str = "greylist.passed.known";
/// Passes due to the client whitelist.
pub const PASSED_CLIENT_WHITELIST: &str = "greylist.passed.client_whitelist";
/// Passes due to the recipient whitelist.
pub const PASSED_RECIPIENT_WHITELIST: &str = "greylist.passed.recipient_whitelist";
/// Passes due to the client auto-whitelist.
pub const PASSED_AUTO_WHITELIST: &str = "greylist.passed.auto_whitelist";
/// All checks that passed.
pub const PASSED_TOTAL: &str = "greylist.passed.total";
/// Live triplet-store entries at collection time.
pub const STORE_SIZE: &str = "greylist.store.size";
/// Approximate resident bytes of key+entry data, comparable across
/// backends (compact-key satellite of the store refactor).
pub const STORE_BYTES: &str = "greylist.store.bytes";
/// Store requests the backend answered (remote backends; 0 in-process).
pub const BACKEND_OPS: &str = "greylist.backend.ops";
/// Store requests lost to an outage window (remote backends).
pub const BACKEND_UNAVAILABLE: &str = "greylist.backend.unavailable";
/// Total virtual-time lookup latency paid, in microseconds (remote
/// backends).
pub const BACKEND_LATENCY_US: &str = "greylist.backend.latency_us";
/// Partition count of the active backend (1 when unpartitioned).
pub const BACKEND_SHARDS: &str = "greylist.backend.shards";
/// Distinct client networks among tracked keys — how coarse the active
/// key policy's view of the world is.
pub const POLICY_CLIENT_NETS: &str = "greylist.policy.client_nets";

/// Exports decision counters under the canonical `greylist.*` names.
pub fn collect_stats(stats: &GreylistStats, reg: &mut Registry) {
    reg.record_counter(DEFERRED_NEW, stats.greylisted_new);
    reg.record_counter(DEFERRED_EARLY, stats.greylisted_early);
    reg.record_counter(DEFERRED_RESTARTED, stats.greylisted_restarted);
    reg.record_counter(DEFERRED_TOTAL, stats.total_greylisted());
    reg.record_counter(PASSED_AFTER_DELAY, stats.passed_after_delay);
    reg.record_counter(PASSED_KNOWN, stats.passed_known);
    reg.record_counter(PASSED_CLIENT_WHITELIST, stats.passed_client_whitelist);
    reg.record_counter(PASSED_RECIPIENT_WHITELIST, stats.passed_recipient_whitelist);
    reg.record_counter(PASSED_AUTO_WHITELIST, stats.passed_auto_whitelist);
    reg.record_counter(PASSED_TOTAL, stats.total_passed());
}

/// Exports the full greylist snapshot: decision counters plus the store
/// size gauge.
pub fn collect(gl: &Greylist, reg: &mut Registry) {
    collect_stats(&gl.stats(), reg);
    reg.record_gauge(STORE_SIZE, gl.store().len() as i64);
}

/// Exports the backend/key-policy view: store bytes, partition count,
/// remote-store traffic and the key-policy network granularity.
///
/// Deliberately separate from [`collect`]: only backend-aware experiments
/// call this, so default worlds export byte-identical metric sets.
pub fn collect_backend(gl: &Greylist, reg: &mut Registry) {
    let store = gl.store();
    reg.record_gauge(STORE_BYTES, store.approx_bytes() as i64);
    reg.record_gauge(BACKEND_SHARDS, store.shard_count() as i64);
    let (ops, unavailable, latency_us) = match store.as_remote() {
        Some(r) => (r.ops(), r.unavailable(), r.latency_us()),
        None => (0, 0, 0),
    };
    reg.record_counter(BACKEND_OPS, ops);
    reg.record_counter(BACKEND_UNAVAILABLE, unavailable);
    reg.record_counter(BACKEND_LATENCY_US, latency_us);
    let nets: std::collections::BTreeSet<u32> = store.iter().map(|(k, _)| k.client_net).collect();
    reg.record_gauge(POLICY_CLIENT_NETS, nets.len() as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GreylistConfig;
    use spamward_sim::{SimDuration, SimTime};
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    #[test]
    fn collect_mirrors_stats_and_store() {
        let mut gl = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let sender = ReversePath::Null;
        let rcpt = "u@victim.example".parse().unwrap();
        let _ = gl.check(SimTime::ZERO, client, &sender, &rcpt);
        let _ = gl.check(SimTime::from_secs(10), client, &sender, &rcpt);
        let _ = gl.check(SimTime::from_secs(600), client, &sender, &rcpt);

        let mut reg = Registry::new();
        collect(&gl, &mut reg);
        let stats = gl.stats();
        assert_eq!(reg.counter(DEFERRED_NEW), Some(stats.greylisted_new));
        assert_eq!(reg.counter(DEFERRED_TOTAL), Some(stats.total_greylisted()));
        assert_eq!(reg.counter(PASSED_AFTER_DELAY), Some(stats.passed_after_delay));
        assert_eq!(reg.counter(PASSED_TOTAL), Some(stats.total_passed()));
        assert_eq!(reg.gauge(STORE_SIZE), Some(gl.store().len() as i64));
        assert_eq!(
            reg.counter(DEFERRED_TOTAL).unwrap() + reg.counter(PASSED_TOTAL).unwrap(),
            stats.total()
        );
    }

    #[test]
    fn collect_backend_reports_bytes_and_remote_traffic() {
        use crate::backend::{RemoteStore, StoreBackend};
        let mut gl = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        )
        .with_backend(StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))));
        let sender = ReversePath::Null;
        let rcpt = "u@victim.example".parse().unwrap();
        let _ = gl.check(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), &sender, &rcpt);
        let _ = gl.check(SimTime::from_secs(301), Ipv4Addr::new(10, 0, 0, 1), &sender, &rcpt);

        let mut reg = Registry::new();
        collect_backend(&gl, &mut reg);
        assert!(reg.gauge(STORE_BYTES).unwrap() > 0);
        assert_eq!(reg.gauge(BACKEND_SHARDS), Some(1));
        assert_eq!(reg.counter(BACKEND_OPS), Some(2));
        assert_eq!(reg.counter(BACKEND_UNAVAILABLE), Some(0));
        assert_eq!(reg.counter(BACKEND_LATENCY_US), Some(4_000));
        assert_eq!(reg.gauge(POLICY_CLIENT_NETS), Some(1));
    }

    #[test]
    fn collect_backend_counts_partitions() {
        use crate::backend::{PartitionedStore, StoreBackend};
        let gl = Greylist::new(GreylistConfig::default())
            .with_backend(StoreBackend::Partitioned(PartitionedStore::new(4)));
        let mut reg = Registry::new();
        collect_backend(&gl, &mut reg);
        assert_eq!(reg.gauge(BACKEND_SHARDS), Some(4));
        assert_eq!(reg.gauge(STORE_BYTES), Some(0));
    }
}
