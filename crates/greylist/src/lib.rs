//! A Postgrey-compatible greylisting engine.
//!
//! Greylisting (paper §II) temporarily rejects mail from *unknown* senders,
//! identified by the triplet *(client address, envelope sender, envelope
//! recipient)*. RFC-compliant clients retry after a delay and pass; most
//! fire-and-forget spam software never retries — or retries from a different
//! address — and is dropped without ever looking at the message.
//!
//! The engine mirrors the knobs of Postgrey (the implementation the paper's
//! university deployment and lab Mail Server VM ran):
//!
//! * [`GreylistConfig::delay`] — the threshold studied throughout §V (5 s,
//!   300 s and 21 600 s in the paper's sweeps).
//! * [`GreylistConfig::netmask`] — triplets key on the client's /24 by
//!   default, which is what lets webmail providers with *small* outbound
//!   pools still pass (Table III's "same IP" column).
//! * client/recipient [`Whitelist`]s — the paper stresses whitelisting
//!   webmail providers is "fundamental".
//! * auto-whitelisting of clients after
//!   [`GreylistConfig::auto_whitelist_after`] successful retries.
//!
//! The core API is one call: [`Greylist::check`] returns
//! [`Decision::Pass`] or [`Decision::Greylisted`] and updates the triplet
//! store. The store is plain data (serde-serializable) so experiments can
//! snapshot and diff it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod keying;
pub mod metrics;
mod persist;
mod policy;
mod stats;
mod store;
mod triplet;
mod whitelist;

pub use backend::{
    GreylistStore, PartitionedStore, RemoteStore, StoreBackend, StoreExchange, StoreReply,
    StoreRequest, StoreUnavailable, Touch,
};
pub use keying::KeyPolicy;
pub use persist::{DurabilityMode, GreylistWal, SnapshotError, WalReplay};
pub use policy::{Decision, Greylist, GreylistConfig, PassReason};
pub use stats::GreylistStats;
pub use store::{EntryState, TripletEntry, TripletStore};
pub use triplet::{KeyAtom, TripletKey};
pub use whitelist::Whitelist;
