//! The greylisting triplet key.

use serde::{Deserialize, Serialize};
use spamward_smtp::{EmailAddress, ReversePath};
use std::fmt;
use std::net::Ipv4Addr;

/// The `(client, sender, recipient)` key a greylist tracks.
///
/// Following Postgrey, the client part is the address masked to a
/// configurable prefix (default /24) so that retries from a neighbouring
/// machine in the same provider pool still match, and the sender local part
/// is lowercased with any `+extension` stripped (VERP-style bounce addresses
/// would otherwise never match their retry).
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::TripletKey;
/// use spamward_smtp::ReversePath;
///
/// let rcpt = "user@foo.net".parse()?;
/// let s1 = ReversePath::Address("Bob+tag@Example.com".parse()?);
/// let s2 = ReversePath::Address("bob@example.com".parse()?);
/// let a = TripletKey::new(Ipv4Addr::new(198, 51, 100, 7), &s1, &rcpt, 24);
/// let b = TripletKey::new(Ipv4Addr::new(198, 51, 100, 99), &s2, &rcpt, 24);
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TripletKey {
    /// The masked client network (host bits zeroed).
    pub client_net: u32,
    /// Normalized sender (`""` for the null reverse path).
    pub sender: String,
    /// Normalized recipient.
    pub recipient: String,
}

impl TripletKey {
    /// Builds a key from raw envelope data.
    ///
    /// # Panics
    ///
    /// Panics if `netmask > 32`.
    pub fn new(
        client: Ipv4Addr,
        sender: &ReversePath,
        recipient: &EmailAddress,
        netmask: u8,
    ) -> Self {
        assert!(netmask <= 32, "IPv4 netmask {netmask} out of range");
        let mask: u32 = if netmask == 0 { 0 } else { u32::MAX << (32 - u32::from(netmask)) };
        TripletKey {
            client_net: u32::from(client) & mask,
            sender: normalize_sender(sender),
            recipient: recipient.normalized(),
        }
    }

    /// The masked network as a dotted quad (for logs).
    pub fn client_net_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.client_net)
    }
}

/// Lowercases and strips a `+extension` from the sender local part.
fn normalize_sender(sender: &ReversePath) -> String {
    match sender.address() {
        None => String::new(),
        Some(addr) => {
            let local = addr.local_part().to_ascii_lowercase();
            let local = local.split('+').next().unwrap_or(&local).to_owned();
            format!("{local}@{}", addr.domain())
        }
    }
}

impl fmt::Display for TripletKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.client_net_addr(), self.sender, self.recipient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rcpt() -> EmailAddress {
        "user@foo.net".parse().unwrap()
    }

    fn sender(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    #[test]
    fn netmask_24_groups_neighbours() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::new(10, 1, 2, 250), &sender("a@b.cc"), &rcpt(), 24);
        let c = TripletKey::new(Ipv4Addr::new(10, 1, 3, 3), &sender("a@b.cc"), &rcpt(), 24);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn netmask_32_is_exact() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 32);
        let b = TripletKey::new(Ipv4Addr::new(10, 1, 2, 4), &sender("a@b.cc"), &rcpt(), 32);
        assert_ne!(a, b);
    }

    #[test]
    fn netmask_zero_matches_everyone() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 0);
        let b = TripletKey::new(Ipv4Addr::new(203, 9, 9, 9), &sender("a@b.cc"), &rcpt(), 0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_netmask_panics() {
        let _ = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &rcpt(), 33);
    }

    #[test]
    fn sender_extension_stripped_and_lowercased() {
        let a =
            TripletKey::new(Ipv4Addr::LOCALHOST, &sender("Bounce+123@Lists.Example"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("bounce@lists.example"), &rcpt(), 24);
        assert_eq!(a, b);
    }

    #[test]
    fn null_sender_has_empty_key_part() {
        let k = TripletKey::new(Ipv4Addr::LOCALHOST, &ReversePath::Null, &rcpt(), 24);
        assert_eq!(k.sender, "");
    }

    #[test]
    fn different_recipients_differ() {
        let r2: EmailAddress = "other@foo.net".parse().unwrap();
        let a = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &r2, 24);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let k = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 24);
        assert_eq!(k.to_string(), "(10.1.2.0, a@b.cc, user@foo.net)");
    }

    proptest! {
        #[test]
        fn prop_mask_idempotent(ip in any::<u32>(), mask in 0u8..=32) {
            let addr = Ipv4Addr::from(ip);
            let k1 = TripletKey::new(addr, &ReversePath::Null, &rcpt(), mask);
            let k2 = TripletKey::new(k1.client_net_addr(), &ReversePath::Null, &rcpt(), mask);
            prop_assert_eq!(k1, k2);
        }
    }
}
