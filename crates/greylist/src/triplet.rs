//! The greylisting triplet key.

use serde::{Deserialize, Serialize};
use spamward_smtp::{EmailAddress, ReversePath};
use std::fmt;
use std::net::Ipv4Addr;

/// A compact, normalized key atom: the 64-bit FNV-1a digest of a
/// normalized address string.
///
/// Triplet stores used to carry the sender/recipient text per entry; at
/// deployment scale (the paper's campus server tracked hundreds of
/// thousands of triplets) the strings dominate store memory while the
/// engine only ever compares keys for equality. The digest keeps entries
/// at a fixed 20 bytes of key material and makes `greylist.store.bytes`
/// a meaningful, backend-comparable gauge.
///
/// The digest is one-way: snapshots and logs carry the hex digest, never
/// the address (the same property the anonymized MTA log relies on).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct KeyAtom(u64);

impl KeyAtom {
    /// The digest of the empty string — the null reverse path `<>`.
    pub const EMPTY: KeyAtom = KeyAtom(FNV_OFFSET);

    /// Digests a normalized address string.
    #[must_use]
    pub fn of(text: &str) -> Self {
        let mut h: u64 = FNV_OFFSET;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        KeyAtom(h)
    }

    /// Whether this atom is the empty-string digest (the null sender).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::EMPTY
    }

    /// The raw digest value (snapshot encoding).
    #[must_use]
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuilds an atom from its raw digest (snapshot decoding).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        KeyAtom(raw)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl fmt::Display for KeyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The `(client, sender, recipient)` key a greylist tracks.
///
/// Following Postgrey, the client part is the address masked to a
/// configurable prefix (default /24) so that retries from a neighbouring
/// machine in the same provider pool still match, and the sender local part
/// is lowercased with any `+extension` stripped (VERP-style bounce addresses
/// would otherwise never match their retry). Sender and recipient are
/// stored as normalized-text digests ([`KeyAtom`]), not strings.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::TripletKey;
/// use spamward_smtp::ReversePath;
///
/// let rcpt = "user@foo.net".parse()?;
/// let s1 = ReversePath::Address("Bob+tag@Example.com".parse()?);
/// let s2 = ReversePath::Address("bob@example.com".parse()?);
/// let a = TripletKey::new(Ipv4Addr::new(198, 51, 100, 7), &s1, &rcpt, 24);
/// let b = TripletKey::new(Ipv4Addr::new(198, 51, 100, 99), &s2, &rcpt, 24);
/// assert_eq!(a, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TripletKey {
    /// The masked client network (host bits zeroed).
    pub client_net: u32,
    /// Digest of the normalized sender ([`KeyAtom::EMPTY`] for the null
    /// reverse path).
    pub sender: KeyAtom,
    /// Digest of the normalized recipient.
    pub recipient: KeyAtom,
}

impl TripletKey {
    /// Builds a key from raw envelope data (Postgrey full-triplet keying).
    ///
    /// # Panics
    ///
    /// Panics if `netmask > 32`.
    pub fn new(
        client: Ipv4Addr,
        sender: &ReversePath,
        recipient: &EmailAddress,
        netmask: u8,
    ) -> Self {
        TripletKey {
            client_net: mask_client(client, netmask),
            sender: KeyAtom::of(&normalize_sender(sender)),
            recipient: KeyAtom::of(&recipient.normalized()),
        }
    }

    /// The masked network as a dotted quad (for logs).
    pub fn client_net_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.client_net)
    }

    /// A stable routing label for shard partitioning: every field in fixed
    /// hex, so the partition hash is a pure function of the key.
    #[must_use]
    pub fn route_label(&self) -> String {
        format!("{:08x}/{}/{}", self.client_net, self.sender, self.recipient)
    }
}

/// Masks `client` to `netmask` leading bits.
///
/// # Panics
///
/// Panics if `netmask > 32`.
pub(crate) fn mask_client(client: Ipv4Addr, netmask: u8) -> u32 {
    assert!(netmask <= 32, "IPv4 netmask {netmask} out of range");
    let mask: u32 = if netmask == 0 { 0 } else { u32::MAX << (32 - u32::from(netmask)) };
    u32::from(client) & mask
}

/// Lowercases and strips a `+extension` from the sender local part.
pub(crate) fn normalize_sender(sender: &ReversePath) -> String {
    match sender.address() {
        None => String::new(),
        Some(addr) => {
            let local = addr.local_part().to_ascii_lowercase();
            let local = local.split('+').next().unwrap_or(&local).to_owned();
            format!("{local}@{}", addr.domain())
        }
    }
}

impl fmt::Display for TripletKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, s:{}, r:{})", self.client_net_addr(), self.sender, self.recipient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rcpt() -> EmailAddress {
        "user@foo.net".parse().unwrap()
    }

    fn sender(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    #[test]
    fn netmask_24_groups_neighbours() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::new(10, 1, 2, 250), &sender("a@b.cc"), &rcpt(), 24);
        let c = TripletKey::new(Ipv4Addr::new(10, 1, 3, 3), &sender("a@b.cc"), &rcpt(), 24);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn netmask_32_is_exact() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 32);
        let b = TripletKey::new(Ipv4Addr::new(10, 1, 2, 4), &sender("a@b.cc"), &rcpt(), 32);
        assert_ne!(a, b);
    }

    #[test]
    fn netmask_zero_matches_everyone() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 0);
        let b = TripletKey::new(Ipv4Addr::new(203, 9, 9, 9), &sender("a@b.cc"), &rcpt(), 0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_netmask_panics() {
        let _ = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &rcpt(), 33);
    }

    #[test]
    fn sender_extension_stripped_and_lowercased() {
        let a =
            TripletKey::new(Ipv4Addr::LOCALHOST, &sender("Bounce+123@Lists.Example"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("bounce@lists.example"), &rcpt(), 24);
        assert_eq!(a, b);
    }

    #[test]
    fn null_sender_has_empty_key_part() {
        let k = TripletKey::new(Ipv4Addr::LOCALHOST, &ReversePath::Null, &rcpt(), 24);
        assert_eq!(k.sender, KeyAtom::EMPTY);
        assert!(k.sender.is_empty());
    }

    #[test]
    fn different_recipients_differ() {
        let r2: EmailAddress = "other@foo.net".parse().unwrap();
        let a = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::LOCALHOST, &sender("a@b.cc"), &r2, 24);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_readable_and_anonymized() {
        let k = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 24);
        let text = k.to_string();
        assert!(text.starts_with("(10.1.2.0, s:"), "{text}");
        assert!(!text.contains("a@b.cc"), "addresses must not leak: {text}");
        assert!(!text.contains("user@foo.net"), "addresses must not leak: {text}");
    }

    #[test]
    fn atom_digest_is_stable_and_roundtrips() {
        let a = KeyAtom::of("bob@example.com");
        assert_eq!(a, KeyAtom::of("bob@example.com"));
        assert_ne!(a, KeyAtom::of("rob@example.com"));
        assert_eq!(KeyAtom::from_raw(a.raw()), a);
        assert_eq!(KeyAtom::of(""), KeyAtom::EMPTY);
    }

    #[test]
    fn route_label_distinguishes_fields() {
        let a = TripletKey::new(Ipv4Addr::new(10, 1, 2, 3), &sender("a@b.cc"), &rcpt(), 24);
        let b = TripletKey::new(Ipv4Addr::new(10, 1, 3, 3), &sender("a@b.cc"), &rcpt(), 24);
        assert_ne!(a.route_label(), b.route_label());
        assert_eq!(a.route_label(), a.route_label());
    }

    proptest! {
        #[test]
        fn prop_mask_idempotent(ip in any::<u32>(), mask in 0u8..=32) {
            let addr = Ipv4Addr::from(ip);
            let k1 = TripletKey::new(addr, &ReversePath::Null, &rcpt(), mask);
            let k2 = TripletKey::new(k1.client_net_addr(), &ReversePath::Null, &rcpt(), mask);
            prop_assert_eq!(k1, k2);
        }
    }
}
