//! Greylist state persistence.
//!
//! Postgrey keeps its triplet database on disk so that a mail-server
//! restart does not re-greylist the world (which would re-delay every
//! correspondent — the §VI cost argument squared). This module provides a
//! versioned, line-oriented text snapshot of the full engine state:
//! triplets, their clocks and the auto-whitelist counters.
//!
//! Format (one record per line, whitespace-separated):
//!
//! ```text
//! spamward-greylist-v2
//! T <client_net_hex> <sender_atom_hex|<>> <recipient_atom_hex> <first_us> <last_us> <attempts> <P|A>
//! W <client_net_hex> <passes>
//! ```
//!
//! v2 stores the compact [`crate::KeyAtom`] digests. v1 snapshots — which
//! carried the normalized sender/recipient text — restore transparently:
//! the text is digested on load, which reproduces the identical key
//! because v1 always stored the already-normalized form.

use crate::policy::Greylist;
use crate::store::{EntryState, TripletEntry};
use crate::triplet::{KeyAtom, TripletKey};
use spamward_sim::SimTime;
use std::fmt;

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or unknown header line.
    BadHeader,
    /// A record line did not parse (1-based line number included).
    BadRecord(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "missing or unsupported snapshot header"),
            SnapshotError::BadRecord(n) => write!(f, "malformed snapshot record on line {n}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const HEADER_V1: &str = "spamward-greylist-v1";
const HEADER: &str = "spamward-greylist-v2";

/// The empty-sender placeholder (the null reverse path `<>`).
const NULL_SENDER: &str = "<>";

/// How a snapshot encodes sender/recipient fields.
#[derive(Clone, Copy, PartialEq)]
enum SnapshotVersion {
    /// Normalized address text.
    V1,
    /// [`KeyAtom`] digests in fixed hex.
    V2,
}

impl SnapshotVersion {
    fn parse_atom(self, raw: &str) -> Option<KeyAtom> {
        if raw == NULL_SENDER {
            return Some(KeyAtom::EMPTY);
        }
        match self {
            // v1 stored the already-normalized text; digesting it yields
            // the same atom `TripletKey::new` would have produced.
            SnapshotVersion::V1 => Some(KeyAtom::of(raw)),
            SnapshotVersion::V2 => u64::from_str_radix(raw, 16).ok().map(KeyAtom::from_raw),
        }
    }
}

impl Greylist {
    /// Serializes the engine state (triplets + auto-whitelist counters) to
    /// the versioned text format. Configuration is *not* included — it
    /// lives in the server's config file, not its state database.
    pub fn snapshot(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        // `entries()` is already a key-sorted, backend-independent merged
        // view, so snapshots diff cleanly whatever the backend.
        for (key, entry) in self.store().iter() {
            let sender =
                if key.sender.is_empty() { NULL_SENDER.to_owned() } else { key.sender.to_string() };
            let state = match entry.state {
                EntryState::Pending => 'P',
                EntryState::Passed => 'A',
            };
            out.push_str(&format!(
                "T {:08x} {} {} {} {} {} {}\n",
                key.client_net,
                sender,
                key.recipient,
                entry.first_seen.as_micros(),
                entry.last_seen.as_micros(),
                entry.attempts,
                state,
            ));
        }
        let mut awl: Vec<(u32, u32)> = self.awl_counts_snapshot();
        awl.sort_unstable();
        for (net, passes) in awl {
            out.push_str(&format!("W {net:08x} {passes}\n"));
        }
        out
    }

    /// Restores engine state from [`Greylist::snapshot`] text into an
    /// engine configured by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a bad header or malformed record.
    pub fn restore(&mut self, text: &str) -> Result<(), SnapshotError> {
        let mut lines = text.lines().enumerate();
        let version = match lines.next() {
            Some((_, line)) if line.trim() == HEADER => SnapshotVersion::V2,
            Some((_, line)) if line.trim() == HEADER_V1 => SnapshotVersion::V1,
            _ => return Err(SnapshotError::BadHeader),
        };
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().ok_or(SnapshotError::BadRecord(idx + 1))?;
            let bad = || SnapshotError::BadRecord(idx + 1);
            match tag {
                "T" => {
                    let client_net = u32::from_str_radix(parts.next().ok_or_else(bad)?, 16)
                        .map_err(|_| bad())?;
                    let sender =
                        version.parse_atom(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                    let recipient =
                        version.parse_atom(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                    let first: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let last: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let attempts: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let state = match parts.next().ok_or_else(bad)? {
                        "P" => EntryState::Pending,
                        "A" => EntryState::Passed,
                        _ => return Err(bad()),
                    };
                    if last < first {
                        return Err(bad());
                    }
                    let key = TripletKey { client_net, sender, recipient };
                    let entry = TripletEntry {
                        first_seen: SimTime::from_micros(first),
                        last_seen: SimTime::from_micros(last),
                        attempts,
                        state,
                    };
                    self.insert_restored(key, entry);
                }
                "W" => {
                    let net = u32::from_str_radix(parts.next().ok_or_else(bad)?, 16)
                        .map_err(|_| bad())?;
                    let passes: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    self.set_awl_count(net, passes);
                }
                _ => return Err(bad()),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Decision, GreylistConfig, PassReason};
    use spamward_sim::SimDuration;
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    fn sender(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    fn populated() -> Greylist {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
        cfg.auto_whitelist_after = Some(2);
        let mut g = Greylist::new(cfg);
        let rcpt = "u@foo.net".parse().unwrap();
        // A passed triplet (two checks), a pending one, and a null-sender
        // one.
        g.check(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(400), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(500), Ipv4Addr::new(10, 0, 1, 1), &sender("c@d.ee"), &rcpt);
        g.check(SimTime::from_secs(600), Ipv4Addr::new(10, 0, 2, 1), &ReversePath::Null, &rcpt);
        g
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let original = populated();
        let text = original.snapshot();
        assert!(text.starts_with("spamward-greylist-v2\n"));

        let mut restored = Greylist::new(original.config().clone());
        restored.restore(&text).unwrap();
        assert_eq!(restored.store().len(), original.store().len());

        // The passed triplet still passes immediately after restore.
        let rcpt = "u@foo.net".parse().unwrap();
        let d = restored.check(
            SimTime::from_secs(700),
            Ipv4Addr::new(10, 0, 0, 1),
            &sender("a@b.cc"),
            &rcpt,
        );
        assert_eq!(d, Decision::Pass(PassReason::TripletKnown));

        // The pending triplet keeps its original clock: a retry past the
        // delay (relative to the pre-snapshot first_seen) passes.
        let d = restored.check(
            SimTime::from_secs(801),
            Ipv4Addr::new(10, 0, 1, 1),
            &sender("c@d.ee"),
            &rcpt,
        );
        assert!(d.is_pass(), "restored pending triplet lost its clock: {d:?}");
    }

    #[test]
    fn snapshot_is_stable_and_deterministic() {
        let a = populated().snapshot();
        let b = populated().snapshot();
        assert_eq!(a, b);
        // Round-trip through restore+snapshot is a fixed point.
        let mut g = Greylist::new(populated().config().clone());
        g.restore(&a).unwrap();
        assert_eq!(g.snapshot(), a);
    }

    #[test]
    fn null_sender_encoded_as_angle_brackets() {
        let text = populated().snapshot();
        assert!(text.lines().any(|l| l.contains(" <> ")), "{text}");
    }

    #[test]
    fn snapshot_carries_digests_not_addresses() {
        let text = populated().snapshot();
        assert!(!text.contains("a@b.cc"), "addresses must not leak: {text}");
        assert!(!text.contains("u@foo.net"), "addresses must not leak: {text}");
    }

    #[test]
    fn v1_snapshots_restore_transparently() {
        // A hand-written v1 snapshot with literal (normalized) addresses,
        // as the pre-v2 format emitted them.
        let v1 = "spamward-greylist-v1\n\
                  T 0a000000 a@b.cc u@foo.net 0 400000000 2 A\n\
                  T 0a000100 <> u@foo.net 600000000 600000000 1 P\n\
                  W 0a000000 1\n";
        let mut g = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        g.restore(v1).unwrap();
        assert_eq!(g.store().len(), 2);
        let rcpt = "u@foo.net".parse().unwrap();
        // The passed triplet matches a live check: the digested v1 text
        // lines up with the key `TripletKey::new` computes today.
        let d =
            g.check(SimTime::from_secs(700), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        assert_eq!(d, Decision::Pass(PassReason::TripletKnown));
        // And so does the pending null-sender one (clock preserved).
        let d =
            g.check(SimTime::from_secs(901), Ipv4Addr::new(10, 0, 1, 1), &ReversePath::Null, &rcpt);
        assert!(d.is_pass(), "v1 pending triplet lost its identity or clock: {d:?}");
        // Re-snapshotting upgrades the header.
        assert!(g.snapshot().starts_with("spamward-greylist-v2\n"));
    }

    #[test]
    fn snapshot_restores_across_backends() {
        use crate::backend::{PartitionedStore, StoreBackend};
        let original = populated();
        let text = original.snapshot();
        let mut sharded = Greylist::new(original.config().clone())
            .with_backend(StoreBackend::Partitioned(PartitionedStore::new(4)));
        sharded.restore(&text).unwrap();
        assert_eq!(sharded.store().len(), original.store().len());
        // The sharded engine re-emits the identical bytes: the merged
        // entries() view is backend-independent.
        assert_eq!(sharded.snapshot(), text);
    }

    #[test]
    fn awl_counters_survive() {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(10));
        cfg.auto_whitelist_after = Some(1);
        let mut g = Greylist::new(cfg.clone());
        let rcpt = "u@foo.net".parse().unwrap();
        g.check(SimTime::ZERO, Ipv4Addr::new(10, 9, 9, 9), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(10), Ipv4Addr::new(10, 9, 9, 9), &sender("a@b.cc"), &rcpt);

        let mut restored = Greylist::new(cfg);
        restored.restore(&g.snapshot()).unwrap();
        // The client network earned the auto-whitelist before the restart;
        // a brand-new triplet from it must pass straight away.
        let d = restored.check(
            SimTime::from_secs(20),
            Ipv4Addr::new(10, 9, 9, 99),
            &sender("other@b.cc"),
            &rcpt,
        );
        assert_eq!(d, Decision::Pass(PassReason::AutoWhitelisted));
    }

    proptest::proptest! {
        /// Behavioural equivalence: after any interaction history, a
        /// snapshot-restored engine makes the same decision on the next
        /// check as the original would.
        #[test]
        fn prop_snapshot_preserves_next_decision(
            ops in proptest::collection::vec((0u8..8, 0u64..100_000), 1..30),
            probe_ip in 0u8..8,
            probe_at in 100_000u64..200_000,
        ) {
            let cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
            let mut original = Greylist::new(cfg.clone());
            let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
            let mut times: Vec<u64> = ops.iter().map(|&(_, t)| t).collect();
            times.sort_unstable();
            for (&(ip_octet, _), &t) in ops.iter().zip(times.iter()) {
                let ip = Ipv4Addr::new(10, 0, ip_octet, 1);
                let _ = original.check(SimTime::from_secs(t), ip, &sender("a@b.cc"), &rcpt);
            }
            let mut restored = Greylist::new(cfg);
            restored.restore(&original.snapshot()).unwrap();

            let ip = Ipv4Addr::new(10, 0, probe_ip, 1);
            let a = original.check(SimTime::from_secs(probe_at), ip, &sender("a@b.cc"), &rcpt);
            let b = restored.check(SimTime::from_secs(probe_at), ip, &sender("a@b.cc"), &rcpt);
            proptest::prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut g = Greylist::new(GreylistConfig::default());
        assert_eq!(g.restore(""), Err(SnapshotError::BadHeader));
        assert_eq!(g.restore("wrong-header\n"), Err(SnapshotError::BadHeader));
        assert_eq!(
            g.restore("spamward-greylist-v1\nT nothexa a@b.cc u@foo.net 0 0 1 P\n"),
            Err(SnapshotError::BadRecord(2))
        );
        assert_eq!(
            g.restore("spamward-greylist-v1\nT 0a000000 a@b.cc u@foo.net 5 1 1 P\n"),
            Err(SnapshotError::BadRecord(2)),
            "last_seen before first_seen must be rejected"
        );
        assert_eq!(
            g.restore("spamward-greylist-v1\nX unknown record\n"),
            Err(SnapshotError::BadRecord(2))
        );
        // Comments and blank lines are fine.
        assert_eq!(g.restore("spamward-greylist-v1\n# comment\n\n"), Ok(()));
    }
}
