//! Greylist state persistence.
//!
//! Postgrey keeps its triplet database on disk so that a mail-server
//! restart does not re-greylist the world (which would re-delay every
//! correspondent — the §VI cost argument squared). This module provides a
//! versioned, line-oriented text snapshot of the full engine state:
//! triplets, their clocks and the auto-whitelist counters.
//!
//! Format (one record per line, whitespace-separated):
//!
//! ```text
//! spamward-greylist-v2
//! T <client_net_hex> <sender_atom_hex|<>> <recipient_atom_hex> <first_us> <last_us> <attempts> <P|A>
//! W <client_net_hex> <passes>
//! ```
//!
//! v2 stores the compact [`crate::KeyAtom`] digests. v1 snapshots — which
//! carried the normalized sender/recipient text — restore transparently:
//! the text is digested on load, which reproduces the identical key
//! because v1 always stored the already-normalized form.
//!
//! Alongside the snapshot lives a write-ahead log ([`GreylistWal`]): an
//! append-only record of store mutations since the last checkpoint.
//! Snapshot-restore plus WAL-replay ([`Greylist::replay_wal`])
//! reconstructs the pre-crash engine exactly — the `SnapshotPlusWal`
//! durability mode of [`DurabilityMode`].

use crate::policy::Greylist;
use crate::store::{EntryState, TripletEntry};
use crate::triplet::{KeyAtom, TripletKey};
use serde::{Deserialize, Serialize};
use spamward_sim::SimTime;
use std::fmt;

/// Error restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or unknown header line.
    BadHeader,
    /// A record line did not parse (1-based line number included).
    BadRecord(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "missing or unsupported snapshot header"),
            SnapshotError::BadRecord(n) => write!(f, "malformed snapshot record on line {n}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const HEADER_V1: &str = "spamward-greylist-v1";
const HEADER: &str = "spamward-greylist-v2";
const HEADER_WAL: &str = "spamward-greylist-wal-v1";

/// The empty-sender placeholder (the null reverse path `<>`).
const NULL_SENDER: &str = "<>";

/// How greylist state survives a crash–restart of the hosting MTA.
///
/// The paper's §VI cost argument says greylisting taxes every *new*
/// correspondent; what a restart forgets, it re-taxes. This knob is the
/// `recovery` experiment's principal axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityMode {
    /// Nothing persists: a restart re-greylists the world.
    Volatile,
    /// Restore the last periodic checkpoint, losing the tail since it.
    Snapshot,
    /// Replay the write-ahead log over the checkpoint, losing nothing.
    SnapshotPlusWal,
}

impl Default for DurabilityMode {
    /// In-memory stores persist nothing unless told to.
    fn default() -> Self {
        DurabilityMode::Volatile
    }
}

impl DurabilityMode {
    /// Stable slug for report rows and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            DurabilityMode::Volatile => "volatile",
            DurabilityMode::Snapshot => "snapshot",
            DurabilityMode::SnapshotPlusWal => "snapshot_wal",
        }
    }

    /// All modes, weakest durability first (sweep order).
    pub fn all() -> [DurabilityMode; 3] {
        [DurabilityMode::Volatile, DurabilityMode::Snapshot, DurabilityMode::SnapshotPlusWal]
    }

    /// Whether restarts restore the last checkpoint.
    pub fn restores_checkpoint(self) -> bool {
        !matches!(self, DurabilityMode::Volatile)
    }

    /// Whether a write-ahead log is kept and replayed.
    pub fn keeps_wal(self) -> bool {
        matches!(self, DurabilityMode::SnapshotPlusWal)
    }
}

/// An append-only write-ahead log of store mutations since the last
/// checkpoint.
///
/// Format (one record per line, whitespace-separated):
///
/// ```text
/// spamward-greylist-wal-v1
/// C <now_us> <client_net_hex> <sender_atom_hex|<>> <recipient_atom_hex> <awl_net_hex>
/// M <now_us>
/// ```
///
/// `C` is one store touch (plus the auto-whitelist network a maturing
/// pass credits — recorded explicitly because the key policy may mask the
/// key's client part differently), `M` one maintenance sweep. Replaying
/// the records over a restored checkpoint re-runs the same state machine
/// the live engine ran, so `SnapshotPlusWal` recovery is exact. A
/// truncated *final* record — the torn write a crash mid-append leaves —
/// is skipped deterministically and counted; corruption anywhere else is
/// a [`SnapshotError::BadRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreylistWal {
    buf: String,
    records: u64,
}

impl Default for GreylistWal {
    fn default() -> Self {
        GreylistWal::new()
    }
}

impl GreylistWal {
    /// An empty log (header only).
    pub fn new() -> Self {
        GreylistWal { buf: format!("{HEADER_WAL}\n"), records: 0 }
    }

    /// The log text, replayable via [`Greylist::replay_wal`].
    pub fn text(&self) -> &str {
        &self.buf
    }

    /// Records appended since the last [`GreylistWal::clear`].
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Resident bytes of log text (growth between checkpoints).
    pub fn approx_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Truncates back to the header (after a checkpoint).
    pub fn clear(&mut self) {
        self.buf.truncate(HEADER_WAL.len() + 1);
        self.records = 0;
    }

    /// Appends one store touch.
    pub(crate) fn append_touch(&mut self, now: SimTime, key: &TripletKey, awl_net: u32) {
        let sender =
            if key.sender.is_empty() { NULL_SENDER.to_owned() } else { key.sender.to_string() };
        self.buf.push_str(&format!(
            "C {} {:08x} {} {} {:08x}\n",
            now.as_micros(),
            key.client_net,
            sender,
            key.recipient,
            awl_net,
        ));
        self.records += 1;
    }

    /// Appends one maintenance sweep.
    pub(crate) fn append_maintain(&mut self, now: SimTime) {
        self.buf.push_str(&format!("M {}\n", now.as_micros()));
        self.records += 1;
    }
}

/// What a [`Greylist::replay_wal`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Records re-applied to the store.
    pub applied: u64,
    /// Torn final records skipped (0 or 1).
    pub torn_skipped: u64,
}

/// One parsed WAL record.
enum WalRecord {
    /// A store touch.
    Touch {
        /// Virtual time of the original check.
        now: SimTime,
        /// The touched key.
        key: TripletKey,
        /// Auto-whitelist network a maturing pass credits.
        awl_net: u32,
    },
    /// A maintenance sweep.
    Maintain {
        /// Virtual time of the sweep.
        now: SimTime,
    },
}

fn parse_wal_record(line: &str) -> Option<WalRecord> {
    let mut parts = line.split_whitespace();
    let tag = parts.next()?;
    let now = SimTime::from_micros(parts.next()?.parse().ok()?);
    let record = match tag {
        "C" => {
            let client_net = u32::from_str_radix(parts.next()?, 16).ok()?;
            let sender = SnapshotVersion::V2.parse_atom(parts.next()?)?;
            let recipient = SnapshotVersion::V2.parse_atom(parts.next()?)?;
            let awl_net = u32::from_str_radix(parts.next()?, 16).ok()?;
            WalRecord::Touch { now, key: TripletKey { client_net, sender, recipient }, awl_net }
        }
        "M" => WalRecord::Maintain { now },
        _ => return None,
    };
    // Trailing fields mean the line is not a record of this version.
    if parts.next().is_some() {
        return None;
    }
    Some(record)
}

/// How a snapshot encodes sender/recipient fields.
#[derive(Clone, Copy, PartialEq)]
enum SnapshotVersion {
    /// Normalized address text.
    V1,
    /// [`KeyAtom`] digests in fixed hex.
    V2,
}

impl SnapshotVersion {
    fn parse_atom(self, raw: &str) -> Option<KeyAtom> {
        if raw == NULL_SENDER {
            return Some(KeyAtom::EMPTY);
        }
        match self {
            // v1 stored the already-normalized text; digesting it yields
            // the same atom `TripletKey::new` would have produced.
            SnapshotVersion::V1 => Some(KeyAtom::of(raw)),
            SnapshotVersion::V2 => u64::from_str_radix(raw, 16).ok().map(KeyAtom::from_raw),
        }
    }
}

impl Greylist {
    /// Serializes the engine state (triplets + auto-whitelist counters) to
    /// the versioned text format. Configuration is *not* included — it
    /// lives in the server's config file, not its state database.
    pub fn snapshot(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        // `entries()` is already a key-sorted, backend-independent merged
        // view, so snapshots diff cleanly whatever the backend.
        for (key, entry) in self.store().iter() {
            let sender =
                if key.sender.is_empty() { NULL_SENDER.to_owned() } else { key.sender.to_string() };
            let state = match entry.state {
                EntryState::Pending => 'P',
                EntryState::Passed => 'A',
            };
            out.push_str(&format!(
                "T {:08x} {} {} {} {} {} {}\n",
                key.client_net,
                sender,
                key.recipient,
                entry.first_seen.as_micros(),
                entry.last_seen.as_micros(),
                entry.attempts,
                state,
            ));
        }
        let mut awl: Vec<(u32, u32)> = self.awl_counts_snapshot();
        awl.sort_unstable();
        for (net, passes) in awl {
            out.push_str(&format!("W {net:08x} {passes}\n"));
        }
        out
    }

    /// Restores engine state from [`Greylist::snapshot`] text into an
    /// engine configured by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a bad header or malformed record.
    pub fn restore(&mut self, text: &str) -> Result<(), SnapshotError> {
        let mut lines = text.lines().enumerate();
        let version = match lines.next() {
            Some((_, line)) if line.trim() == HEADER => SnapshotVersion::V2,
            Some((_, line)) if line.trim() == HEADER_V1 => SnapshotVersion::V1,
            _ => return Err(SnapshotError::BadHeader),
        };
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().ok_or(SnapshotError::BadRecord(idx + 1))?;
            let bad = || SnapshotError::BadRecord(idx + 1);
            match tag {
                "T" => {
                    let client_net = u32::from_str_radix(parts.next().ok_or_else(bad)?, 16)
                        .map_err(|_| bad())?;
                    let sender =
                        version.parse_atom(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                    let recipient =
                        version.parse_atom(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
                    let first: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let last: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let attempts: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    let state = match parts.next().ok_or_else(bad)? {
                        "P" => EntryState::Pending,
                        "A" => EntryState::Passed,
                        _ => return Err(bad()),
                    };
                    if last < first {
                        return Err(bad());
                    }
                    let key = TripletKey { client_net, sender, recipient };
                    let entry = TripletEntry {
                        first_seen: SimTime::from_micros(first),
                        last_seen: SimTime::from_micros(last),
                        attempts,
                        state,
                    };
                    self.insert_restored(key, entry);
                }
                "W" => {
                    let net = u32::from_str_radix(parts.next().ok_or_else(bad)?, 16)
                        .map_err(|_| bad())?;
                    let passes: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                    self.set_awl_count(net, passes);
                }
                _ => return Err(bad()),
            }
        }
        Ok(())
    }

    /// Replays a [`GreylistWal`] over the current state (normally a
    /// just-restored checkpoint), re-running every logged mutation.
    ///
    /// A truncated final record is skipped deterministically and counted
    /// in [`WalReplay::torn_skipped`] — the torn write a crash mid-append
    /// leaves behind.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadHeader`] on a missing or unknown header;
    /// [`SnapshotError::BadRecord`] on a malformed record anywhere but the
    /// final line.
    pub fn replay_wal(&mut self, text: &str) -> Result<WalReplay, SnapshotError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, line)) if line.trim() == HEADER_WAL => {}
            _ => return Err(SnapshotError::BadHeader),
        }
        let rest: Vec<(usize, &str)> = lines.collect();
        let last_record = rest.iter().rposition(|&(_, l)| {
            let l = l.trim();
            !l.is_empty() && !l.starts_with('#')
        });
        let mut outcome = WalReplay::default();
        for (pos, &(idx, raw)) in rest.iter().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_wal_record(line) {
                Some(WalRecord::Touch { now, key, awl_net }) => {
                    self.apply_wal_touch(now, key, awl_net);
                    outcome.applied += 1;
                }
                Some(WalRecord::Maintain { now }) => {
                    self.apply_wal_maintain(now);
                    outcome.applied += 1;
                }
                None if Some(pos) == last_record => outcome.torn_skipped += 1,
                None => return Err(SnapshotError::BadRecord(idx + 1)),
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Decision, GreylistConfig, PassReason};
    use spamward_sim::SimDuration;
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    fn sender(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    fn populated() -> Greylist {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
        cfg.auto_whitelist_after = Some(2);
        let mut g = Greylist::new(cfg);
        let rcpt = "u@foo.net".parse().unwrap();
        // A passed triplet (two checks), a pending one, and a null-sender
        // one.
        g.check(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(400), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(500), Ipv4Addr::new(10, 0, 1, 1), &sender("c@d.ee"), &rcpt);
        g.check(SimTime::from_secs(600), Ipv4Addr::new(10, 0, 2, 1), &ReversePath::Null, &rcpt);
        g
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let original = populated();
        let text = original.snapshot();
        assert!(text.starts_with("spamward-greylist-v2\n"));

        let mut restored = Greylist::new(original.config().clone());
        restored.restore(&text).unwrap();
        assert_eq!(restored.store().len(), original.store().len());

        // The passed triplet still passes immediately after restore.
        let rcpt = "u@foo.net".parse().unwrap();
        let d = restored.check(
            SimTime::from_secs(700),
            Ipv4Addr::new(10, 0, 0, 1),
            &sender("a@b.cc"),
            &rcpt,
        );
        assert_eq!(d, Decision::Pass(PassReason::TripletKnown));

        // The pending triplet keeps its original clock: a retry past the
        // delay (relative to the pre-snapshot first_seen) passes.
        let d = restored.check(
            SimTime::from_secs(801),
            Ipv4Addr::new(10, 0, 1, 1),
            &sender("c@d.ee"),
            &rcpt,
        );
        assert!(d.is_pass(), "restored pending triplet lost its clock: {d:?}");
    }

    #[test]
    fn snapshot_is_stable_and_deterministic() {
        let a = populated().snapshot();
        let b = populated().snapshot();
        assert_eq!(a, b);
        // Round-trip through restore+snapshot is a fixed point.
        let mut g = Greylist::new(populated().config().clone());
        g.restore(&a).unwrap();
        assert_eq!(g.snapshot(), a);
    }

    #[test]
    fn null_sender_encoded_as_angle_brackets() {
        let text = populated().snapshot();
        assert!(text.lines().any(|l| l.contains(" <> ")), "{text}");
    }

    #[test]
    fn snapshot_carries_digests_not_addresses() {
        let text = populated().snapshot();
        assert!(!text.contains("a@b.cc"), "addresses must not leak: {text}");
        assert!(!text.contains("u@foo.net"), "addresses must not leak: {text}");
    }

    #[test]
    fn v1_snapshots_restore_transparently() {
        // A hand-written v1 snapshot with literal (normalized) addresses,
        // as the pre-v2 format emitted them.
        let v1 = "spamward-greylist-v1\n\
                  T 0a000000 a@b.cc u@foo.net 0 400000000 2 A\n\
                  T 0a000100 <> u@foo.net 600000000 600000000 1 P\n\
                  W 0a000000 1\n";
        let mut g = Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist(),
        );
        g.restore(v1).unwrap();
        assert_eq!(g.store().len(), 2);
        let rcpt = "u@foo.net".parse().unwrap();
        // The passed triplet matches a live check: the digested v1 text
        // lines up with the key `TripletKey::new` computes today.
        let d =
            g.check(SimTime::from_secs(700), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        assert_eq!(d, Decision::Pass(PassReason::TripletKnown));
        // And so does the pending null-sender one (clock preserved).
        let d =
            g.check(SimTime::from_secs(901), Ipv4Addr::new(10, 0, 1, 1), &ReversePath::Null, &rcpt);
        assert!(d.is_pass(), "v1 pending triplet lost its identity or clock: {d:?}");
        // Re-snapshotting upgrades the header.
        assert!(g.snapshot().starts_with("spamward-greylist-v2\n"));
    }

    #[test]
    fn snapshot_restores_across_backends() {
        use crate::backend::{PartitionedStore, StoreBackend};
        let original = populated();
        let text = original.snapshot();
        let mut sharded = Greylist::new(original.config().clone())
            .with_backend(StoreBackend::Partitioned(PartitionedStore::new(4)));
        sharded.restore(&text).unwrap();
        assert_eq!(sharded.store().len(), original.store().len());
        // The sharded engine re-emits the identical bytes: the merged
        // entries() view is backend-independent.
        assert_eq!(sharded.snapshot(), text);
    }

    #[test]
    fn awl_counters_survive() {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(10));
        cfg.auto_whitelist_after = Some(1);
        let mut g = Greylist::new(cfg.clone());
        let rcpt = "u@foo.net".parse().unwrap();
        g.check(SimTime::ZERO, Ipv4Addr::new(10, 9, 9, 9), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(10), Ipv4Addr::new(10, 9, 9, 9), &sender("a@b.cc"), &rcpt);

        let mut restored = Greylist::new(cfg);
        restored.restore(&g.snapshot()).unwrap();
        // The client network earned the auto-whitelist before the restart;
        // a brand-new triplet from it must pass straight away.
        let d = restored.check(
            SimTime::from_secs(20),
            Ipv4Addr::new(10, 9, 9, 99),
            &sender("other@b.cc"),
            &rcpt,
        );
        assert_eq!(d, Decision::Pass(PassReason::AutoWhitelisted));
    }

    proptest::proptest! {
        /// Behavioural equivalence: after any interaction history, a
        /// snapshot-restored engine makes the same decision on the next
        /// check as the original would.
        #[test]
        fn prop_snapshot_preserves_next_decision(
            ops in proptest::collection::vec((0u8..8, 0u64..100_000), 1..30),
            probe_ip in 0u8..8,
            probe_at in 100_000u64..200_000,
        ) {
            let cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
            let mut original = Greylist::new(cfg.clone());
            let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
            let mut times: Vec<u64> = ops.iter().map(|&(_, t)| t).collect();
            times.sort_unstable();
            for (&(ip_octet, _), &t) in ops.iter().zip(times.iter()) {
                let ip = Ipv4Addr::new(10, 0, ip_octet, 1);
                let _ = original.check(SimTime::from_secs(t), ip, &sender("a@b.cc"), &rcpt);
            }
            let mut restored = Greylist::new(cfg);
            restored.restore(&original.snapshot()).unwrap();

            let ip = Ipv4Addr::new(10, 0, probe_ip, 1);
            let a = original.check(SimTime::from_secs(probe_at), ip, &sender("a@b.cc"), &rcpt);
            let b = restored.check(SimTime::from_secs(probe_at), ip, &sender("a@b.cc"), &rcpt);
            proptest::prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut g = Greylist::new(GreylistConfig::default());
        assert_eq!(g.restore(""), Err(SnapshotError::BadHeader));
        assert_eq!(g.restore("wrong-header\n"), Err(SnapshotError::BadHeader));
        assert_eq!(
            g.restore("spamward-greylist-v1\nT nothexa a@b.cc u@foo.net 0 0 1 P\n"),
            Err(SnapshotError::BadRecord(2))
        );
        assert_eq!(
            g.restore("spamward-greylist-v1\nT 0a000000 a@b.cc u@foo.net 5 1 1 P\n"),
            Err(SnapshotError::BadRecord(2)),
            "last_seen before first_seen must be rejected"
        );
        assert_eq!(
            g.restore("spamward-greylist-v1\nX unknown record\n"),
            Err(SnapshotError::BadRecord(2))
        );
        // Comments and blank lines are fine.
        assert_eq!(g.restore("spamward-greylist-v1\n# comment\n\n"), Ok(()));
    }

    #[test]
    fn unknown_future_headers_are_rejected_not_misparsed() {
        let mut g = Greylist::new(GreylistConfig::default());
        // A future snapshot version must fail loudly, even when its
        // records would happen to parse under today's grammar.
        let v3 = "spamward-greylist-v3\nT 0a000000 <> u@foo.net 0 0 1 P\n";
        assert_eq!(g.restore(v3), Err(SnapshotError::BadHeader));
        assert_eq!(g.store().len(), 0, "a rejected snapshot must restore nothing");
        // Snapshot and WAL headers are not interchangeable.
        assert_eq!(g.restore("spamward-greylist-wal-v1\n"), Err(SnapshotError::BadHeader));
        assert_eq!(g.replay_wal("spamward-greylist-v2\n"), Err(SnapshotError::BadHeader));
        // And a future WAL version is rejected too.
        assert_eq!(g.replay_wal("spamward-greylist-wal-v2\n"), Err(SnapshotError::BadHeader));
        assert_eq!(g.replay_wal(""), Err(SnapshotError::BadHeader));
    }

    proptest::proptest! {
        /// Restoring the same snapshot twice is a no-op the second time:
        /// identical state, identical re-serialized bytes.
        #[test]
        fn prop_restore_is_idempotent(
            ops in proptest::collection::vec((0u8..8, 0u64..100_000), 1..30),
        ) {
            let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
            cfg.auto_whitelist_after = Some(2);
            let mut original = Greylist::new(cfg.clone());
            let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
            let mut times: Vec<u64> = ops.iter().map(|&(_, t)| t).collect();
            times.sort_unstable();
            for (&(ip_octet, _), &t) in ops.iter().zip(times.iter()) {
                let ip = Ipv4Addr::new(10, 0, ip_octet, 1);
                let _ = original.check(SimTime::from_secs(t), ip, &sender("a@b.cc"), &rcpt);
            }
            let text = original.snapshot();
            let mut g = Greylist::new(cfg);
            g.restore(&text).unwrap();
            let once = g.snapshot();
            g.restore(&text).unwrap();
            proptest::prop_assert_eq!(&g.snapshot(), &once);
            proptest::prop_assert_eq!(&once, &text);
        }
    }

    /// Like [`populated`] but logging to a WAL from the start.
    fn populated_wal() -> Greylist {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
        cfg.auto_whitelist_after = Some(2);
        let mut g = Greylist::new(cfg).with_wal();
        let rcpt = "u@foo.net".parse().unwrap();
        g.check(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(400), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        g.check(SimTime::from_secs(500), Ipv4Addr::new(10, 0, 1, 1), &sender("c@d.ee"), &rcpt);
        g.check(SimTime::from_secs(600), Ipv4Addr::new(10, 0, 2, 1), &ReversePath::Null, &rcpt);
        g
    }

    #[test]
    fn wal_replay_over_empty_state_reconstructs_everything() {
        let live = populated_wal();
        let wal = live.wal().expect("wal enabled");
        assert_eq!(wal.records(), 4, "one C record per store touch:\n{}", wal.text());
        assert!(wal.text().starts_with("spamward-greylist-wal-v1\n"));
        assert!(!wal.text().contains("a@b.cc"), "addresses must not leak: {}", wal.text());

        let mut recovered = Greylist::new(live.config().clone());
        let outcome = recovered.replay_wal(wal.text()).unwrap();
        assert_eq!(outcome, WalReplay { applied: 4, torn_skipped: 0 });
        assert_eq!(recovered.snapshot(), live.snapshot(), "replay must rebuild exact state");
    }

    #[test]
    fn checkpoint_plus_wal_recovery_is_exact() {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
        cfg.auto_whitelist_after = Some(2);
        let mut live = Greylist::new(cfg.clone()).with_wal();
        let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
        // Phase 1: history covered by the checkpoint.
        live.check(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        live.check(SimTime::from_secs(400), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        let checkpoint = live.snapshot();
        live.clear_wal();
        // Phase 2: the tail only the WAL remembers, including a sweep.
        live.check(SimTime::from_secs(500), Ipv4Addr::new(10, 0, 1, 1), &sender("c@d.ee"), &rcpt);
        live.check(SimTime::from_secs(600), Ipv4Addr::new(10, 0, 2, 1), &ReversePath::Null, &rcpt);
        live.maintain(SimTime::from_secs(700));
        let wal_text = live.wal().unwrap().text().to_owned();

        // Crash: RAM gone; recover from checkpoint + WAL.
        let mut recovered = Greylist::new(cfg).with_wal();
        recovered.restore(&checkpoint).unwrap();
        let outcome = recovered.replay_wal(&wal_text).unwrap();
        assert_eq!(outcome, WalReplay { applied: 3, torn_skipped: 0 });
        assert_eq!(recovered.snapshot(), live.snapshot());

        // And the next decision agrees with the engine that never crashed.
        let probe = |g: &mut Greylist| {
            g.check(SimTime::from_secs(801), Ipv4Addr::new(10, 0, 1, 1), &sender("c@d.ee"), &rcpt)
        };
        assert_eq!(probe(&mut recovered), probe(&mut live.clone()));
    }

    #[test]
    fn torn_final_wal_record_is_skipped_and_counted() {
        let live = populated_wal();
        let full = live.wal().unwrap().text().to_owned();
        // A crash mid-append truncates the last record. Cut it down to
        // "C <digits-prefix>" so no field past the tag survives intact.
        let mut lines: Vec<&str> = full.lines().collect();
        let last = lines.pop().unwrap();
        let torn = format!("{}\n{}", lines.join("\n"), &last[..4]);

        let mut recovered = Greylist::new(live.config().clone());
        let outcome = recovered.replay_wal(&torn).unwrap();
        assert_eq!(outcome.torn_skipped, 1, "torn tail must be counted");
        assert_eq!(outcome.applied, live.wal().unwrap().records() - 1);

        // The recovered state equals a log that never held the last record.
        let mut expected = Greylist::new(live.config().clone());
        let clean = format!("{}\n", lines.join("\n"));
        expected.replay_wal(&clean).unwrap();
        assert_eq!(recovered.snapshot(), expected.snapshot());
    }

    #[test]
    fn torn_record_anywhere_else_is_an_error() {
        let live = populated_wal();
        let full = live.wal().unwrap().text().to_owned();
        let mut lines: Vec<String> = full.lines().map(str::to_owned).collect();
        assert!(lines.len() > 3, "need records after the corrupted one");
        lines[1] = lines[1][..4].to_owned();
        let text = format!("{}\n", lines.join("\n"));
        let mut g = Greylist::new(live.config().clone());
        assert_eq!(g.replay_wal(&text), Err(SnapshotError::BadRecord(2)));
        // So is trailing junk on a record line.
        let mut g = Greylist::new(live.config().clone());
        let junk = format!("{full}M 100 extra\nM 200\n");
        assert_eq!(g.replay_wal(&junk), Err(SnapshotError::BadRecord(6)));
    }

    #[test]
    fn wal_clear_truncates_to_header() {
        let mut live = populated_wal();
        assert!(live.wal().unwrap().approx_bytes() > 25);
        live.clear_wal();
        let wal = live.wal().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.text(), "spamward-greylist-wal-v1\n");
        // An empty log replays as a no-op.
        let mut g = Greylist::new(live.config().clone());
        assert_eq!(g.replay_wal(wal.text()), Ok(WalReplay::default()));
        assert_eq!(g.store().len(), 0);
    }

    #[test]
    fn reset_loses_everything_a_crash_would() {
        let mut g = populated_wal();
        let stats_before = g.stats();
        g.reset();
        assert_eq!(g.store().len(), 0);
        assert!(g.wal().unwrap().is_empty());
        assert_eq!(g.stats(), stats_before, "observer counters survive the crash");
        // AWL counters are RAM too: the maturing pass's credit is gone.
        let rcpt = "u@foo.net".parse().unwrap();
        let d =
            g.check(SimTime::from_secs(700), Ipv4Addr::new(10, 0, 0, 1), &sender("a@b.cc"), &rcpt);
        assert!(!d.is_pass(), "a volatile restart must re-greylist: {d:?}");
    }

    proptest::proptest! {
        /// The tentpole's correctness anchor: for arbitrary interaction
        /// histories, checkpoint instants and crash points, a
        /// `SnapshotPlusWal` recovery is decision-equivalent to an engine
        /// that never crashed — across all three store backends.
        #[test]
        fn prop_snapshot_plus_wal_recovery_is_decision_equivalent(
            ops in proptest::collection::vec((0u8..8, 0u64..100_000, proptest::bool::ANY), 1..30),
            cp_sel in 0usize..30,
            crash_sel in 0usize..30,
            backend_sel in 0usize..3,
            probe_ip in 0u8..8,
            probe_at in 100_000u64..200_000,
        ) {
            use crate::backend::{PartitionedStore, RemoteStore, StoreBackend};
            use crate::store::TripletStore;
            let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(300));
            cfg.auto_whitelist_after = Some(2);
            let backend = match backend_sel {
                0 => StoreBackend::InMemory(TripletStore::new()),
                1 => StoreBackend::Partitioned(PartitionedStore::new(4)),
                _ => StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))),
            };
            let rcpt: spamward_smtp::EmailAddress = "u@foo.net".parse().unwrap();
            let mut times: Vec<u64> = ops.iter().map(|&(_, t, _)| t).collect();
            times.sort_unstable();
            let script: Vec<(u8, u64, bool)> = ops
                .iter()
                .zip(times)
                .map(|(&(ip, _, maintain), t)| (ip, t, maintain))
                .collect();
            let crash_at = crash_sel % (script.len() + 1);
            let cp_at = cp_sel % (crash_at + 1);

            let mut uncrashed = Greylist::new(cfg.clone()).with_backend(backend).with_wal();
            let mut crashed = uncrashed.clone();
            let apply = |g: &mut Greylist, &(ip_octet, t, maintain): &(u8, u64, bool)| {
                let at = SimTime::from_secs(t);
                if maintain {
                    g.maintain(at);
                } else {
                    let ip = Ipv4Addr::new(10, 0, ip_octet, 1);
                    let _ = g.check(at, ip, &sender("a@b.cc"), &rcpt);
                }
            };
            for op in &script {
                apply(&mut uncrashed, op);
            }
            let mut checkpoint = crashed.snapshot();
            for (i, op) in script.iter().enumerate().take(crash_at) {
                apply(&mut crashed, op);
                if i + 1 == cp_at {
                    checkpoint = crashed.snapshot();
                    crashed.clear_wal();
                }
            }
            // Crash: RAM gone; recover from checkpoint + WAL; resume.
            let wal_text = crashed.wal().unwrap().text().to_owned();
            crashed.reset();
            crashed.restore(&checkpoint).unwrap();
            crashed.replay_wal(&wal_text).unwrap();
            for op in &script[crash_at..] {
                apply(&mut crashed, op);
            }

            let ip = Ipv4Addr::new(10, 0, probe_ip, 1);
            let at = SimTime::from_secs(probe_at);
            let a = uncrashed.check(at, ip, &sender("a@b.cc"), &rcpt);
            let b = crashed.check(at, ip, &sender("a@b.cc"), &rcpt);
            proptest::prop_assert_eq!(a, b);
            proptest::prop_assert_eq!(uncrashed.snapshot(), crashed.snapshot());
        }
    }
}
