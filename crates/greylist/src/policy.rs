//! The greylisting decision engine.

use crate::backend::{GreylistStore, StoreBackend, StoreUnavailable, Touch};
use crate::keying::KeyPolicy;
use crate::persist::GreylistWal;
use crate::stats::GreylistStats;
use crate::store::TripletStore;
use crate::triplet::TripletKey;
use crate::whitelist::Whitelist;
use serde::{Deserialize, Serialize};
use spamward_sim::{SimDuration, SimTime};
use spamward_smtp::{EmailAddress, ReversePath};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Why a check passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassReason {
    /// The client matched the static client whitelist.
    ClientWhitelisted,
    /// The recipient matched the recipient whitelist (e.g. `postmaster`).
    RecipientWhitelisted,
    /// The client earned the auto-whitelist.
    AutoWhitelisted,
    /// The triplet's delay elapsed and the retry arrived in time.
    DelayElapsed,
    /// The triplet had already passed before.
    TripletKnown,
}

/// The outcome of one greylist check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Accept the RCPT.
    Pass(PassReason),
    /// Defer with a 450.
    Greylisted {
        /// How long until a retry would pass (hint only; clients retry on
        /// their own schedule).
        retry_after: SimDuration,
    },
}

impl Decision {
    /// Whether the check passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, Decision::Pass(_))
    }
}

/// Configuration mirroring Postgrey's command-line knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreylistConfig {
    /// How long an unknown triplet must wait before a retry passes
    /// (`--delay`, default 300 s — the paper's default threshold).
    pub delay: SimDuration,
    /// Client-address prefix length used in the triplet key
    /// (Postgrey keys on /24 by default).
    pub netmask: u8,
    /// After this many *distinct successful* greylist passes, the client
    /// network skips greylisting entirely (`--auto-whitelist-clients`,
    /// default 5). `None` disables auto-whitelisting.
    pub auto_whitelist_after: Option<u32>,
    /// Static client whitelist.
    pub whitelist_clients: Whitelist,
    /// Static recipient whitelist.
    pub whitelist_recipients: Whitelist,
    /// How envelopes collapse into store keys. `None` (the default) means
    /// Postgrey full-triplet keying under [`GreylistConfig::netmask`] —
    /// exactly the pre-policy behaviour.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub key_policy: Option<KeyPolicy>,
}

impl Default for GreylistConfig {
    fn default() -> Self {
        GreylistConfig {
            delay: SimDuration::from_secs(300),
            netmask: 24,
            auto_whitelist_after: Some(5),
            whitelist_clients: Whitelist::new(),
            whitelist_recipients: Whitelist::new(),
            key_policy: None,
        }
    }
}

impl GreylistConfig {
    /// A config with the given delay and everything else at defaults.
    pub fn with_delay(delay: SimDuration) -> Self {
        GreylistConfig { delay, ..Default::default() }
    }

    /// Disables the auto-whitelist (for ablation experiments).
    pub fn without_auto_whitelist(mut self) -> Self {
        self.auto_whitelist_after = None;
        self
    }

    /// Selects a non-default [`KeyPolicy`].
    pub fn with_key_policy(mut self, policy: KeyPolicy) -> Self {
        self.key_policy = Some(policy);
        self
    }

    /// The effective keying policy (defaults to Postgrey full-triplet
    /// under [`GreylistConfig::netmask`]).
    pub fn effective_key_policy(&self) -> KeyPolicy {
        self.key_policy.unwrap_or(KeyPolicy::FullTriplet { netmask: self.netmask })
    }
}

/// The greylisting engine: configuration + triplet store + counters.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::{Greylist, GreylistConfig};
/// use spamward_sim::{SimDuration, SimTime};
/// use spamward_smtp::ReversePath;
///
/// let mut gl = Greylist::new(GreylistConfig::with_delay(SimDuration::from_secs(300)));
/// let ip = Ipv4Addr::new(203, 0, 113, 9);
/// let from = ReversePath::Address("sender@relay.example".parse()?);
/// let rcpt = "user@foo.net".parse()?;
///
/// // First contact: deferred.
/// let t0 = SimTime::ZERO;
/// assert!(!gl.check(t0, ip, &from, &rcpt).is_pass());
/// // Retry after the delay: passes.
/// let t1 = t0 + SimDuration::from_secs(301);
/// assert!(gl.check(t1, ip, &from, &rcpt).is_pass());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Greylist {
    config: GreylistConfig,
    store: StoreBackend,
    stats: GreylistStats,
    /// Successful greylist passes per client network (for auto-whitelist).
    awl_counts: BTreeMap<u32, u32>,
    /// Write-ahead log of store mutations since the last checkpoint
    /// (`SnapshotPlusWal` durability); `None` means no WAL is kept.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    wal: Option<GreylistWal>,
}

impl Greylist {
    /// Creates an engine with the given configuration (in-memory backend).
    pub fn new(config: GreylistConfig) -> Self {
        Greylist {
            config,
            store: StoreBackend::InMemory(TripletStore::new()),
            stats: GreylistStats::default(),
            awl_counts: BTreeMap::new(),
            wal: None,
        }
    }

    /// Replaces the triplet store (e.g. one with a capacity bound),
    /// keeping the in-memory backend.
    pub fn with_store(mut self, store: TripletStore) -> Self {
        self.store = StoreBackend::InMemory(store);
        self
    }

    /// Selects a non-default store backend.
    pub fn with_backend(mut self, backend: StoreBackend) -> Self {
        self.store = backend;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &GreylistConfig {
        &self.config
    }

    /// The store backend (for snapshots and assertions).
    pub fn store(&self) -> &StoreBackend {
        &self.store
    }

    /// Stable slug of the active backend.
    pub fn backend_name(&self) -> &'static str {
        self.store.name()
    }

    /// Decision counters so far.
    pub fn stats(&self) -> GreylistStats {
        self.stats
    }

    /// Collapses an envelope into the store key under the configured
    /// [`KeyPolicy`].
    pub fn key_for(
        &self,
        client_ip: Ipv4Addr,
        sender: &ReversePath,
        recipient: &EmailAddress,
    ) -> TripletKey {
        self.config.effective_key_policy().key_for(client_ip, sender, recipient)
    }

    /// Runs periodic maintenance (expiry sweep); returns entries dropped.
    pub fn maintain(&mut self, now: SimTime) -> usize {
        let dropped = self.store.purge_expired(now);
        if let Some(wal) = &mut self.wal {
            wal.append_maintain(now);
        }
        dropped
    }

    /// Starts keeping a write-ahead log of store mutations
    /// (`SnapshotPlusWal` durability). A no-op if one is already kept.
    pub fn enable_wal(&mut self) {
        if self.wal.is_none() {
            self.wal = Some(GreylistWal::new());
        }
    }

    /// Builder form of [`Greylist::enable_wal`].
    pub fn with_wal(mut self) -> Self {
        self.enable_wal();
        self
    }

    /// The write-ahead log, if one is kept.
    pub fn wal(&self) -> Option<&GreylistWal> {
        self.wal.as_ref()
    }

    /// Truncates the WAL back to its header — called right after a
    /// checkpoint, whose snapshot now covers everything the log held.
    pub fn clear_wal(&mut self) {
        if let Some(wal) = &mut self.wal {
            wal.clear();
        }
    }

    /// Drops all runtime state — triplets, auto-whitelist counters and any
    /// WAL tail — exactly as a crash losing RAM would. Configuration, the
    /// store's shape (shards, capacity, fault windows) and the cumulative
    /// decision counters survive: the counters model what an external
    /// observer tallied, not what the server remembered.
    pub fn reset(&mut self) {
        self.store.clear();
        self.awl_counts.clear();
        self.clear_wal();
    }

    /// Routes fault windows into a [`StoreBackend::Remote`] backend:
    /// `outages` make lookups fail ([`StoreUnavailable`]), `slowdowns` add
    /// lookup latency. Returns `false` (and installs nothing) when the
    /// active backend is not remote — in-process stores have no network
    /// path to fault, so callers fall back to MTA-level outage windows.
    pub fn install_remote_faults(
        &mut self,
        outages: Vec<(SimTime, SimTime)>,
        slowdowns: Vec<(SimDuration, SimTime, SimTime)>,
    ) -> bool {
        match &mut self.store {
            StoreBackend::Remote(r) => {
                r.set_fault_windows(outages, slowdowns);
                true
            }
            _ => false,
        }
    }

    /// The auto-whitelist counters as `(client_net, passes)` pairs (for
    /// snapshots).
    pub(crate) fn awl_counts_snapshot(&self) -> Vec<(u32, u32)> {
        self.awl_counts.iter().map(|(&n, &c)| (n, c)).collect()
    }

    /// Sets one auto-whitelist counter (snapshot restore).
    pub(crate) fn set_awl_count(&mut self, net: u32, passes: u32) {
        self.awl_counts.insert(net, passes);
    }

    /// Inserts a triplet entry verbatim (snapshot restore).
    pub(crate) fn insert_restored(
        &mut self,
        key: crate::triplet::TripletKey,
        entry: crate::store::TripletEntry,
    ) {
        self.store.insert_raw(key, entry);
    }

    /// Re-applies one logged touch (WAL replay). Runs the same state
    /// machine the live check did — including the auto-whitelist bump on
    /// maturing — but bypasses remote-protocol weather and accounting,
    /// and never re-logs.
    pub(crate) fn apply_wal_touch(&mut self, now: SimTime, key: TripletKey, awl_net: u32) {
        let delay = self.config.delay;
        if matches!(self.store.touch_direct(key, now, delay), Touch::Matured) {
            *self.awl_counts.entry(awl_net).or_insert(0) += 1;
        }
    }

    /// Re-applies one logged maintenance sweep (WAL replay).
    pub(crate) fn apply_wal_maintain(&mut self, now: SimTime) {
        let _ = self.store.purge_direct(now);
    }

    fn client_net(&self, ip: Ipv4Addr) -> u32 {
        let m = self.config.netmask;
        let mask = if m == 0 { 0 } else { u32::MAX << (32 - u32::from(m)) };
        u32::from(ip) & mask
    }

    /// Checks one RCPT against the greylist, updating state.
    ///
    /// Order of evaluation mirrors Postgrey: client whitelist, recipient
    /// whitelist, auto-whitelist, then the triplet state machine.
    pub fn check(
        &mut self,
        now: SimTime,
        client_ip: Ipv4Addr,
        sender: &ReversePath,
        recipient: &EmailAddress,
    ) -> Decision {
        self.check_with_rdns(now, client_ip, None, sender, recipient)
    }

    /// Like [`Greylist::check`] but with the client's reverse-DNS name, so
    /// name-based whitelist entries can match.
    ///
    /// A backend that cannot answer ([`StoreUnavailable`]) is treated as a
    /// plain deferral here; callers that distinguish degradation modes use
    /// [`Greylist::try_check_with_rdns`].
    pub fn check_with_rdns(
        &mut self,
        now: SimTime,
        client_ip: Ipv4Addr,
        client_rdns: Option<&str>,
        sender: &ReversePath,
        recipient: &EmailAddress,
    ) -> Decision {
        let delay = self.config.delay;
        self.try_check_with_rdns(now, client_ip, client_rdns, sender, recipient)
            .unwrap_or(Decision::Greylisted { retry_after: delay })
    }

    /// The full decision path, surfacing store unavailability to the
    /// caller instead of folding it into a deferral.
    ///
    /// # Errors
    ///
    /// [`StoreUnavailable`] when the backend cannot answer (remote store
    /// inside a fault window). Whitelist passes never touch the store and
    /// therefore never fail.
    pub fn try_check_with_rdns(
        &mut self,
        now: SimTime,
        client_ip: Ipv4Addr,
        client_rdns: Option<&str>,
        sender: &ReversePath,
        recipient: &EmailAddress,
    ) -> Result<Decision, StoreUnavailable> {
        if self.config.whitelist_clients.matches_client(client_ip, client_rdns) {
            self.stats.passed_client_whitelist += 1;
            return Ok(Decision::Pass(PassReason::ClientWhitelisted));
        }
        if self.config.whitelist_recipients.matches_recipient(&recipient.normalized()) {
            self.stats.passed_recipient_whitelist += 1;
            return Ok(Decision::Pass(PassReason::RecipientWhitelisted));
        }
        // The auto-whitelist is always keyed on the client network under
        // `config.netmask`, independent of the key policy: it models the
        // per-client reputation Postgrey keeps next to (not inside) the
        // triplet database.
        let net = self.client_net(client_ip);
        if let Some(threshold) = self.config.auto_whitelist_after {
            if self.awl_counts.get(&net).copied().unwrap_or(0) >= threshold {
                self.stats.passed_auto_whitelist += 1;
                return Ok(Decision::Pass(PassReason::AutoWhitelisted));
            }
        }

        let key = self.key_for(client_ip, sender, recipient);
        let delay = self.config.delay;
        let touch = self.store.touch(key, now, delay)?;
        // Log only after the store answered: an unavailable backend mutated
        // nothing, so there is nothing to replay. Whitelist passes above
        // never reach the store and are likewise absent from the log.
        if let Some(wal) = &mut self.wal {
            wal.append_touch(now, &key, net);
        }
        match touch {
            Touch::New { restarted } => {
                if restarted {
                    self.stats.greylisted_restarted += 1;
                } else {
                    self.stats.greylisted_new += 1;
                }
                Ok(Decision::Greylisted { retry_after: delay })
            }
            Touch::Early { remaining } => {
                self.stats.greylisted_early += 1;
                Ok(Decision::Greylisted { retry_after: remaining })
            }
            Touch::Matured => {
                self.stats.passed_after_delay += 1;
                *self.awl_counts.entry(net).or_insert(0) += 1;
                Ok(Decision::Pass(PassReason::DelayElapsed))
            }
            Touch::Known => {
                self.stats.passed_known += 1;
                Ok(Decision::Pass(PassReason::TripletKnown))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, d)
    }

    fn from(s: &str) -> ReversePath {
        ReversePath::Address(s.parse().unwrap())
    }

    fn rcpt(s: &str) -> EmailAddress {
        s.parse().unwrap()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn gl(delay_secs: u64) -> Greylist {
        Greylist::new(
            GreylistConfig::with_delay(SimDuration::from_secs(delay_secs)).without_auto_whitelist(),
        )
    }

    #[test]
    fn first_contact_deferred_retry_passes() {
        let mut g = gl(300);
        let d = g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Greylisted { retry_after: SimDuration::from_secs(300) });
        let d = g.check(t(300), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Pass(PassReason::DelayElapsed));
        // Third time: known triplet.
        let d = g.check(t(400), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Pass(PassReason::TripletKnown));
        assert_eq!(g.stats().total_greylisted(), 1);
        assert_eq!(g.stats().total_passed(), 2);
    }

    #[test]
    fn early_retry_redeferred_with_remaining_time() {
        let mut g = gl(300);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        let d = g.check(t(100), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Greylisted { retry_after: SimDuration::from_secs(200) });
        // The clock runs from first_seen, not last attempt: passing at
        // t=300 still works even after the early retry.
        assert!(g.check(t(300), ip(1), &from("a@b.cc"), &rcpt("u@foo.net")).is_pass());
        assert_eq!(g.stats().greylisted_early, 1);
    }

    #[test]
    fn different_triplets_are_independent() {
        let mut g = gl(300);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        // Different sender → fresh greylisting.
        let d = g.check(t(400), ip(1), &from("other@b.cc"), &rcpt("u@foo.net"));
        assert!(!d.is_pass());
        // Different recipient → fresh greylisting.
        let d = g.check(t(400), ip(1), &from("a@b.cc"), &rcpt("v@foo.net"));
        assert!(!d.is_pass());
    }

    #[test]
    fn netmask_24_lets_neighbour_retry_pass() {
        let mut g = gl(300);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        // Retry from another host in the same /24 (webmail pool behaviour).
        let d = g.check(t(301), ip(77), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert!(d.is_pass(), "same /24 must share the triplet");
    }

    #[test]
    fn exact_netmask_regreylists_pool_senders() {
        let mut cfg =
            GreylistConfig::with_delay(SimDuration::from_secs(300)).without_auto_whitelist();
        cfg.netmask = 32;
        let mut g = Greylist::new(cfg);
        g.check(t(0), Ipv4Addr::new(10, 0, 0, 1), &from("a@b.cc"), &rcpt("u@foo.net"));
        let d = g.check(t(301), Ipv4Addr::new(10, 0, 1, 1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert!(!d.is_pass(), "different IP with /32 keying must be re-greylisted");
    }

    #[test]
    fn client_whitelist_short_circuits() {
        let mut cfg = GreylistConfig::default();
        cfg.whitelist_clients.add_cidr(ip(0), 24);
        let mut g = Greylist::new(cfg);
        let d = g.check(t(0), ip(5), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Pass(PassReason::ClientWhitelisted));
        assert_eq!(g.store().len(), 0, "whitelisted checks must not create triplets");
    }

    #[test]
    fn recipient_whitelist_postmaster_control() {
        let mut cfg = GreylistConfig::default();
        cfg.whitelist_recipients.add_local_part("postmaster");
        let mut g = Greylist::new(cfg);
        let d = g.check(t(0), ip(5), &from("spam@bot.example"), &rcpt("postmaster@foo.net"));
        assert_eq!(d, Decision::Pass(PassReason::RecipientWhitelisted));
        let d = g.check(t(0), ip(5), &from("spam@bot.example"), &rcpt("alice@foo.net"));
        assert!(!d.is_pass());
    }

    #[test]
    fn auto_whitelist_after_n_passes() {
        let mut cfg = GreylistConfig::with_delay(SimDuration::from_secs(10));
        cfg.auto_whitelist_after = Some(2);
        let mut g = Greylist::new(cfg);
        // Two distinct triplets pass the delay from the same client net.
        for (i, sender) in ["s1@b.cc", "s2@b.cc"].iter().enumerate() {
            let base = t(i as u64 * 1_000);
            g.check(base, ip(9), &from(sender), &rcpt("u@foo.net"));
            assert!(g
                .check(base + SimDuration::from_secs(10), ip(9), &from(sender), &rcpt("u@foo.net"))
                .is_pass());
        }
        // Third, unseen triplet: auto-whitelisted on first contact.
        let d = g.check(t(5_000), ip(9), &from("s3@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Pass(PassReason::AutoWhitelisted));
    }

    #[test]
    fn zero_delay_passes_on_second_attempt_same_instant() {
        let mut g = gl(0);
        assert!(!g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net")).is_pass());
        assert!(g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net")).is_pass());
    }

    #[test]
    fn null_sender_triplets_work() {
        let mut g = gl(300);
        assert!(!g.check(t(0), ip(1), &ReversePath::Null, &rcpt("u@foo.net")).is_pass());
        assert!(g.check(t(300), ip(1), &ReversePath::Null, &rcpt("u@foo.net")).is_pass());
    }

    #[test]
    fn pending_expiry_restarts_greylisting() {
        let mut g = gl(300);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        // Wait far beyond the pending lifetime (2 days default).
        let late = t(0) + SimDuration::from_days(3);
        let d = g.check(late, ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert!(!d.is_pass(), "expired pending triplet must be re-greylisted");
        assert_eq!(g.stats().greylisted_new, 1);
        assert_eq!(g.stats().greylisted_restarted, 1, "restart must be accounted separately");
    }

    #[test]
    fn maintain_sweeps() {
        let mut g = gl(300);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(g.maintain(t(0) + SimDuration::from_days(3)), 1);
        assert_eq!(g.store().len(), 0);
    }

    #[test]
    fn attempts_counter_accumulates() {
        let mut g = gl(300);
        for i in 0..5 {
            g.check(t(i * 10), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        }
        let (_, entry) = g.store().iter().next().unwrap();
        assert_eq!(entry.attempts, 5);
    }

    #[test]
    fn decisions_are_backend_independent() {
        use crate::backend::{PartitionedStore, RemoteStore};
        let backends = [
            StoreBackend::InMemory(TripletStore::new()),
            StoreBackend::Partitioned(PartitionedStore::new(4)),
            StoreBackend::Remote(RemoteStore::new(SimDuration::from_millis(2))),
        ];
        let script = [
            (1u8, 0u64, "a@b.cc"),
            (1, 100, "a@b.cc"),
            (2, 200, "c@d.ee"),
            (1, 301, "a@b.cc"),
            (2, 501, "c@d.ee"),
            (1, 600, "a@b.cc"),
        ];
        let mut runs: Vec<Vec<Decision>> = Vec::new();
        for backend in backends {
            let mut g = gl(300).with_backend(backend);
            runs.push(
                script
                    .iter()
                    .map(|&(c, at, s)| g.check(t(at), ip(c), &from(s), &rcpt("u@foo.net")))
                    .collect(),
            );
        }
        assert_eq!(runs[0], runs[1], "partitioned backend changed decisions");
        assert_eq!(runs[0], runs[2], "remote backend changed decisions");
    }

    #[test]
    fn sender_recipient_policy_tolerates_pool_ip_fallback() {
        use crate::keying::KeyPolicy;
        let cfg = GreylistConfig::with_delay(SimDuration::from_secs(300))
            .without_auto_whitelist()
            .with_key_policy(KeyPolicy::SenderRecipient);
        let mut g = Greylist::new(cfg);
        // First attempt from one pool member, retry from an IP in a far
        // /24 — the Table III pain case full-triplet keying re-greylists.
        g.check(t(0), Ipv4Addr::new(64, 12, 0, 5), &from("a@b.cc"), &rcpt("u@foo.net"));
        let d = g.check(t(301), Ipv4Addr::new(205, 188, 9, 1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert!(d.is_pass(), "qdgrey keying must accept a pool-fallback retry: {d:?}");
    }

    #[test]
    fn client_net_policy_whitelists_whole_network() {
        use crate::keying::KeyPolicy;
        let cfg = GreylistConfig::with_delay(SimDuration::from_secs(300))
            .without_auto_whitelist()
            .with_key_policy(KeyPolicy::ClientNet { netmask: 24 });
        let mut g = Greylist::new(cfg);
        g.check(t(0), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        g.check(t(301), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        // Any envelope from the same /24 now passes: pure IP reputation.
        let d = g.check(t(400), ip(200), &from("other@z.yy"), &rcpt("v@foo.net"));
        assert!(d.is_pass(), "client-net keying must pass the whole network: {d:?}");
        assert_eq!(g.store().len(), 1, "one key per network");
    }

    #[test]
    fn unavailable_store_folds_to_deferral_in_check() {
        use crate::backend::RemoteStore;
        let mut remote = RemoteStore::new(SimDuration::from_millis(2));
        remote.set_fault_windows(vec![(t(0), t(1_000))], Vec::new());
        let mut g = gl(300).with_backend(StoreBackend::Remote(remote));
        let err = g.try_check_with_rdns(t(10), ip(1), None, &from("a@b.cc"), &rcpt("u@foo.net"));
        assert!(err.is_err(), "outage must surface through try_check");
        let d = g.check(t(10), ip(1), &from("a@b.cc"), &rcpt("u@foo.net"));
        assert_eq!(d, Decision::Greylisted { retry_after: SimDuration::from_secs(300) });
        assert_eq!(g.stats().total(), 0, "failed lookups are not greylist decisions");
    }
}
