//! The triplet store: state, expiry and (optional) capacity bounds.

use crate::triplet::TripletKey;
use serde::{Deserialize, Serialize};
use spamward_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Lifecycle state of a triplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryState {
    /// First seen; retries before the delay elapse keep it here.
    Pending,
    /// The delay elapsed and a retry arrived; mail flows freely.
    Passed,
}

/// One tracked triplet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripletEntry {
    /// When the triplet was first seen (the greylist clock starts here).
    pub first_seen: SimTime,
    /// Most recent activity (used for expiry and LRU eviction).
    pub last_seen: SimTime,
    /// Total connection attempts charged to this triplet.
    pub attempts: u32,
    /// Current lifecycle state.
    pub state: EntryState,
}

/// The in-memory (serde-snapshottable) triplet database.
///
/// Expiry is lazy — [`TripletStore::get_live`] treats stale entries as
/// absent — plus an explicit [`TripletStore::purge_expired`] sweep that a
/// deployment would run periodically. An optional capacity bound evicts the
/// least-recently-seen entries, the ablation knob for the "disk space and
/// computation resources" cost the paper's §VI mentions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TripletStore {
    entries: BTreeMap<TripletKey, TripletEntry>,
    /// Maximum live entries; `None` = unbounded.
    pub capacity: Option<usize>,
    /// Pending entries older than this are treated as new again.
    pub pending_lifetime: SimDuration,
    /// Passed entries idle longer than this are forgotten.
    pub passed_lifetime: SimDuration,
    evictions: u64,
}

impl Default for TripletStore {
    /// Same as [`TripletStore::new`]. (A derived default would zero the
    /// lifetimes, silently expiring every entry on arrival.)
    fn default() -> Self {
        TripletStore::new()
    }
}

impl TripletStore {
    /// Postgrey-like defaults: pending entries live 2 days, passed entries
    /// 35 days, unbounded capacity.
    pub fn new() -> Self {
        TripletStore {
            entries: BTreeMap::new(),
            capacity: None,
            pending_lifetime: SimDuration::from_days(2),
            passed_lifetime: SimDuration::from_days(35),
            evictions: 0,
        }
    }

    /// Caps the store at `capacity` live entries (LRU eviction).
    pub fn with_capacity_bound(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Number of stored entries (including not-yet-swept stale ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate resident bytes of key+entry data. Keys are compact
    /// digests ([`crate::KeyAtom`]), so this is a flat per-entry cost —
    /// the `greylist.store.bytes` gauge backends report.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len()
            * (std::mem::size_of::<TripletKey>() + std::mem::size_of::<TripletEntry>())
    }

    fn lifetime(&self, state: EntryState) -> SimDuration {
        match state {
            EntryState::Pending => self.pending_lifetime,
            EntryState::Passed => self.passed_lifetime,
        }
    }

    fn is_expired(&self, entry: &TripletEntry, now: SimTime) -> bool {
        now.checked_elapsed_since(entry.last_seen)
            .map(|idle| idle > self.lifetime(entry.state))
            .unwrap_or(false)
    }

    /// Whether an entry (live or stale) exists for `key`.
    pub fn contains(&self, key: &TripletKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The entry for `key` if present *and* not expired.
    pub fn get_live(&self, key: &TripletKey, now: SimTime) -> Option<&TripletEntry> {
        self.entries.get(key).filter(|e| !self.is_expired(e, now))
    }

    /// Mutable access; expired entries are removed and reported absent.
    pub fn get_live_mut(&mut self, key: &TripletKey, now: SimTime) -> Option<&mut TripletEntry> {
        if let Some(e) = self.entries.get(key) {
            if self.is_expired(e, now) {
                self.entries.remove(key);
                return None;
            }
        }
        self.entries.get_mut(key)
    }

    /// Inserts an entry verbatim (snapshot restore), bypassing the
    /// capacity check — restores happen at startup before any load.
    pub(crate) fn insert_raw(&mut self, key: TripletKey, entry: TripletEntry) {
        self.entries.insert(key, entry);
    }

    /// Drops every entry, as a crash losing the in-memory database would.
    /// Configuration (capacity, lifetimes) and the cumulative eviction
    /// counter survive — they belong to the deployment, not the data.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Inserts a fresh pending entry for `key`, evicting under pressure.
    pub fn insert_pending(&mut self, key: TripletKey, now: SimTime) -> &mut TripletEntry {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap && !self.entries.contains_key(&key) {
                self.evict_oldest(self.entries.len() + 1 - cap);
            }
        }
        self.entries.entry(key).or_insert(TripletEntry {
            first_seen: now,
            last_seen: now,
            attempts: 0,
            state: EntryState::Pending,
        })
    }

    fn evict_oldest(&mut self, n: usize) {
        let mut by_age: Vec<(TripletKey, SimTime)> =
            self.entries.iter().map(|(k, e)| (*k, e.last_seen)).collect();
        by_age.sort_by_key(|&(_, t)| t);
        for (key, _) in by_age.into_iter().take(n) {
            self.entries.remove(&key);
            self.evictions += 1;
        }
    }

    /// Removes every expired entry, returning how many were dropped.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let pending = self.pending_lifetime;
        let passed = self.passed_lifetime;
        self.entries.retain(|_, e| {
            let lifetime = match e.state {
                EntryState::Pending => pending,
                EntryState::Passed => passed,
            };
            now.checked_elapsed_since(e.last_seen).map(|idle| idle <= lifetime).unwrap_or(true)
        });
        before - self.entries.len()
    }

    /// Iterates over all (possibly stale) entries.
    pub fn iter(&self) -> impl Iterator<Item = (&TripletKey, &TripletEntry)> {
        self.entries.iter()
    }

    /// Counts entries currently in `state`.
    pub fn count_state(&self, state: EntryState) -> usize {
        self.entries.values().filter(|e| e.state == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spamward_smtp::ReversePath;
    use std::net::Ipv4Addr;

    fn key(d: u8) -> TripletKey {
        TripletKey::new(
            Ipv4Addr::new(10, 0, 0, d),
            &ReversePath::Null,
            &format!("u{d}@foo.net").parse().unwrap(),
            32,
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = TripletStore::new();
        s.insert_pending(key(1), t(100));
        let e = s.get_live(&key(1), t(100)).unwrap();
        assert_eq!(e.state, EntryState::Pending);
        assert_eq!(e.first_seen, t(100));
        assert!(s.get_live(&key(2), t(100)).is_none());
    }

    #[test]
    fn pending_expiry_is_lazy_and_swept() {
        let mut s = TripletStore::new();
        s.insert_pending(key(1), t(0));
        let idle_past = t(0) + s.pending_lifetime + SimDuration::from_secs(1);
        assert!(s.get_live(&key(1), idle_past).is_none(), "stale entry must read as absent");
        assert_eq!(s.len(), 1, "lazy expiry leaves the entry in place");
        assert_eq!(s.purge_expired(idle_past), 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn passed_entries_live_longer() {
        let mut s = TripletStore::new();
        let e = s.insert_pending(key(1), t(0));
        e.state = EntryState::Passed;
        let after_pending_lifetime = t(0) + SimDuration::from_days(3);
        assert!(s.get_live(&key(1), after_pending_lifetime).is_some());
        let after_passed_lifetime = t(0) + SimDuration::from_days(36);
        assert!(s.get_live(&key(1), after_passed_lifetime).is_none());
    }

    #[test]
    fn get_live_mut_removes_expired() {
        let mut s = TripletStore::new();
        s.insert_pending(key(1), t(0));
        let late = t(0) + SimDuration::from_days(30);
        assert!(s.get_live_mut(&key(1), late).is_none());
        assert_eq!(s.len(), 0, "get_live_mut must remove the stale entry");
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let mut s = TripletStore::new().with_capacity_bound(3);
        s.insert_pending(key(1), t(10));
        s.insert_pending(key(2), t(20));
        s.insert_pending(key(3), t(30));
        s.insert_pending(key(4), t(40)); // evicts key(1)
        assert_eq!(s.len(), 3);
        assert_eq!(s.evictions(), 1);
        assert!(s.get_live(&key(1), t(40)).is_none());
        assert!(s.get_live(&key(4), t(40)).is_some());
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let mut s = TripletStore::new().with_capacity_bound(2);
        s.insert_pending(key(1), t(10));
        s.insert_pending(key(2), t(20));
        s.insert_pending(key(1), t(30)); // already present
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_pending_is_idempotent_on_state() {
        let mut s = TripletStore::new();
        {
            let e = s.insert_pending(key(1), t(0));
            e.state = EntryState::Passed;
            e.attempts = 7;
        }
        let e = s.insert_pending(key(1), t(50));
        assert_eq!(e.state, EntryState::Passed, "existing entry must not be reset");
        assert_eq!(e.attempts, 7);
        assert_eq!(e.first_seen, t(0));
    }

    #[test]
    fn count_state_and_iter() {
        let mut s = TripletStore::new();
        s.insert_pending(key(1), t(0));
        s.insert_pending(key(2), t(0)).state = EntryState::Passed;
        assert_eq!(s.count_state(EntryState::Pending), 1);
        assert_eq!(s.count_state(EntryState::Passed), 1);
        assert_eq!(s.iter().count(), 2);
    }
}
