//! Client and recipient whitelists.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Patterns exempting clients or recipients from greylisting.
///
/// Postgrey ships `postgrey_whitelist_clients` (big providers that retry
/// from many addresses) and `postgrey_whitelist_recipients` (`postmaster@`,
/// `abuse@` — the addresses the paper deliberately left unprotected for its
/// one-spam-task control experiment).
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use spamward_greylist::Whitelist;
///
/// let mut wl = Whitelist::new();
/// wl.add_cidr(Ipv4Addr::new(64, 233, 160, 0), 19); // a provider block
/// wl.add_domain_suffix("google.com");
/// wl.add_local_part("postmaster");
///
/// assert!(wl.matches_client(Ipv4Addr::new(64, 233, 177, 9), Some("mail-ej1.google.com")));
/// assert!(wl.matches_recipient("postmaster@foo.net"));
/// assert!(!wl.matches_recipient("alice@foo.net"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Whitelist {
    cidrs: Vec<(u32, u8)>,
    domain_suffixes: Vec<String>,
    local_parts: Vec<String>,
    exact_recipients: Vec<String>,
}

impl Whitelist {
    /// Creates an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing is whitelisted.
    pub fn is_empty(&self) -> bool {
        self.cidrs.is_empty()
            && self.domain_suffixes.is_empty()
            && self.local_parts.is_empty()
            && self.exact_recipients.is_empty()
    }

    /// Exempts an address block.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn add_cidr(&mut self, network: Ipv4Addr, prefix_len: u8) -> &mut Self {
        assert!(prefix_len <= 32, "IPv4 prefix length {prefix_len} out of range");
        let mask = if prefix_len == 0 { 0 } else { u32::MAX << (32 - u32::from(prefix_len)) };
        self.cidrs.push((u32::from(network) & mask, prefix_len));
        self
    }

    /// Exempts clients whose reverse-DNS name ends in `suffix` (how
    /// Postgrey whitelists `google.com` & co.).
    pub fn add_domain_suffix(&mut self, suffix: &str) -> &mut Self {
        self.domain_suffixes.push(suffix.to_ascii_lowercase());
        self
    }

    /// Exempts recipients with this local part at any domain
    /// (e.g. `postmaster`).
    pub fn add_local_part(&mut self, local: &str) -> &mut Self {
        self.local_parts.push(local.to_ascii_lowercase());
        self
    }

    /// Exempts one exact recipient address.
    pub fn add_recipient(&mut self, address: &str) -> &mut Self {
        self.exact_recipients.push(address.to_ascii_lowercase());
        self
    }

    /// Whether a connecting client (address + optional rDNS name) is
    /// exempt.
    pub fn matches_client(&self, ip: Ipv4Addr, rdns: Option<&str>) -> bool {
        let ip_bits = u32::from(ip);
        for &(net, len) in &self.cidrs {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - u32::from(len)) };
            if ip_bits & mask == net {
                return true;
            }
        }
        if let Some(name) = rdns {
            let name = name.to_ascii_lowercase();
            for suffix in &self.domain_suffixes {
                if name == *suffix || name.ends_with(&format!(".{suffix}")) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether a (normalized `local@domain`) recipient is exempt.
    pub fn matches_recipient(&self, normalized: &str) -> bool {
        let normalized = normalized.to_ascii_lowercase();
        if self.exact_recipients.contains(&normalized) {
            return true;
        }
        match normalized.split_once('@') {
            Some((local, _)) => self.local_parts.iter().any(|l| *l == local),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_matching() {
        let mut wl = Whitelist::new();
        wl.add_cidr(Ipv4Addr::new(192, 0, 2, 0), 24);
        assert!(wl.matches_client(Ipv4Addr::new(192, 0, 2, 200), None));
        assert!(!wl.matches_client(Ipv4Addr::new(192, 0, 3, 1), None));
    }

    #[test]
    fn cidr_zero_matches_all() {
        let mut wl = Whitelist::new();
        wl.add_cidr(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(wl.matches_client(Ipv4Addr::new(8, 8, 8, 8), None));
    }

    #[test]
    fn domain_suffix_respects_label_boundary() {
        let mut wl = Whitelist::new();
        wl.add_domain_suffix("google.com");
        assert!(wl.matches_client(Ipv4Addr::LOCALHOST, Some("mail-a.google.com")));
        assert!(wl.matches_client(Ipv4Addr::LOCALHOST, Some("google.com")));
        assert!(!wl.matches_client(Ipv4Addr::LOCALHOST, Some("notgoogle.com")));
        assert!(!wl.matches_client(Ipv4Addr::LOCALHOST, None));
    }

    #[test]
    fn recipient_local_part_and_exact() {
        let mut wl = Whitelist::new();
        wl.add_local_part("postmaster");
        wl.add_recipient("ops@foo.net");
        assert!(wl.matches_recipient("postmaster@anywhere.example"));
        assert!(wl.matches_recipient("POSTMASTER@FOO.NET"));
        assert!(wl.matches_recipient("ops@foo.net"));
        assert!(!wl.matches_recipient("alice@foo.net"));
        assert!(!wl.matches_recipient("not-an-address"));
    }

    #[test]
    fn empty_whitelist_matches_nothing() {
        let wl = Whitelist::new();
        assert!(wl.is_empty());
        assert!(!wl.matches_client(Ipv4Addr::LOCALHOST, Some("x")));
        assert!(!wl.matches_recipient("a@b.cc"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_prefix_panics() {
        let mut wl = Whitelist::new();
        wl.add_cidr(Ipv4Addr::LOCALHOST, 40);
    }
}
