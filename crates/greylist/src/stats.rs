//! Greylist decision counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running counters over every [`check`](crate::Greylist::check) call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreylistStats {
    /// New triplets greylisted on first contact.
    pub greylisted_new: u64,
    /// Retries that arrived *before* the delay elapsed (re-greylisted).
    pub greylisted_early: u64,
    /// Retries of pending triplets that had expired and were re-greylisted
    /// from scratch.
    pub greylisted_restarted: u64,
    /// Retries that passed after the delay.
    pub passed_after_delay: u64,
    /// Hits on already-passed triplets.
    pub passed_known: u64,
    /// Passes due to the client whitelist.
    pub passed_client_whitelist: u64,
    /// Passes due to the recipient whitelist.
    pub passed_recipient_whitelist: u64,
    /// Passes due to the client auto-whitelist.
    pub passed_auto_whitelist: u64,
}

impl GreylistStats {
    /// All checks that ended in a 450.
    pub fn total_greylisted(&self) -> u64 {
        self.greylisted_new + self.greylisted_early + self.greylisted_restarted
    }

    /// All checks that passed.
    pub fn total_passed(&self) -> u64 {
        self.passed_after_delay
            + self.passed_known
            + self.passed_client_whitelist
            + self.passed_recipient_whitelist
            + self.passed_auto_whitelist
    }

    /// All checks.
    pub fn total(&self) -> u64 {
        self.total_greylisted() + self.total_passed()
    }
}

impl fmt::Display for GreylistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "greylisted {} (new {}, early {}, restarted {}), passed {} (delay {}, known {}, wl {}, awl {})",
            self.total_greylisted(),
            self.greylisted_new,
            self.greylisted_early,
            self.greylisted_restarted,
            self.total_passed(),
            self.passed_after_delay,
            self.passed_known,
            self.passed_client_whitelist + self.passed_recipient_whitelist,
            self.passed_auto_whitelist,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = GreylistStats {
            greylisted_new: 5,
            greylisted_early: 2,
            greylisted_restarted: 1,
            passed_after_delay: 3,
            passed_known: 10,
            passed_client_whitelist: 4,
            passed_recipient_whitelist: 1,
            passed_auto_whitelist: 2,
        };
        assert_eq!(s.total_greylisted(), 8);
        assert_eq!(s.total_passed(), 20);
        assert_eq!(s.total(), 28);
        let rendered = s.to_string();
        assert!(rendered.contains("greylisted 8"));
        assert!(rendered.contains("passed 20"));
    }
}
